"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures; the
rendered tables are printed (visible with ``pytest -s``) and written
under ``benchmarks/reports/`` so EXPERIMENTS.md can cite them.
"""

import pathlib

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def save_report(name: str, *tables) -> str:
    """Print and persist one experiment's tables."""
    REPORT_DIR.mkdir(exist_ok=True)
    texts = []
    for table in tables:
        text = table.render() if hasattr(table, "render") else str(table)
        print()
        print(text)
        texts.append(text)
    body = "\n\n".join(texts) + "\n"
    (REPORT_DIR / f"{name}.txt").write_text(body)
    return body
