"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures; the
rendered tables are printed (visible with ``pytest -s``) and written
under ``benchmarks/reports/`` so EXPERIMENTS.md can cite them.

Each report is persisted twice: ``<name>.txt`` holds the rendered
fixed-width tables (the human-readable, bit-stable artifact that the
cycle-exactness regression checks diff), and ``<name>.json`` holds
the same tables as machine-readable ``{title, headers, rows}`` records
so the perf/figure trajectory can be tracked across PRs alongside the
top-level ``BENCH_*.json`` files.
"""

import json
import pathlib

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def _table_payload(table) -> dict:
    if hasattr(table, "to_dict"):
        return table.to_dict()
    return {"text": str(table)}


def save_report(name: str, *tables) -> str:
    """Print and persist one experiment's tables (text + JSON)."""
    REPORT_DIR.mkdir(exist_ok=True)
    texts = []
    for table in tables:
        text = table.render() if hasattr(table, "render") else str(table)
        print()
        print(text)
        texts.append(text)
    body = "\n\n".join(texts) + "\n"
    (REPORT_DIR / f"{name}.txt").write_text(body)
    payload = {"report": name, "tables": [_table_payload(t) for t in tables]}
    # sort_keys keeps the byte stream independent of dict build order,
    # so serial and parallel sweep runs emit identical report files.
    (REPORT_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return body
