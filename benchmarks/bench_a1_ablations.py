"""A1 (ablations) — the design choices DESIGN.md calls out, priced.

Each ablation removes one of the paper's mechanisms and measures what
it bought:

* **dual banks**: a single bank supplies one operand per cycle, so
  two-input forms would run at half rate — the banks double SAXPY
  throughput;
* **row port**: without it, vectors reach the registers through the
  word port at 10 MB/s instead of 2560 MB/s, and memory becomes the
  bottleneck the paper says it is not;
* **streaming (double buffering)**: overlapping row transfers with
  arithmetic recovers the last ~7% between naive sequencing and pure
  pipe speed;
* **DMA startup**: the 5 µs setup dominates small messages, which is
  why the runtime routes whole rows, not elements.
"""

import numpy as np
import pytest

from repro.analysis import Table
from repro.core import PAPER_SPECS, ProcessorNode, VectorStreamer
from repro.events import Engine
from repro.links.frame import FrameSpec

from _util import save_report


def _streamed_vs_naive(count=48):
    def run(streamed):
        node = ProcessorNode(Engine(), PAPER_SPECS)
        rng = np.random.default_rng(0)
        triples = []
        for i in range(count):
            node.write_row_floats(i % 256, rng.standard_normal(128))
            node.write_row_floats(256 + i % 256, rng.standard_normal(128))
            triples.append((i % 256, 256 + i % 256, 600 + i % 250))
        streamer = VectorStreamer(node)
        eng = node.engine
        runner = streamer.run if streamed else streamer.naive_run
        eng.run(until=eng.process(runner("VADD", triples)))
        return eng.now / count

    return run(True), run(False)


def test_a1_dual_bank_ablation(benchmark):
    streamed_ns, naive_ns = benchmark.pedantic(
        _streamed_vs_naive, rounds=1, iterations=1
    )
    # Arithmetic-only per-row cost (the lower bound both approach).
    pure_ns = (6 + 127) * 125

    # Single-bank machine: one operand fetch per cycle halves the
    # effective rate of two-input forms — equivalent to a 250 ns cycle.
    single_bank = PAPER_SPECS.replace(cycle_ns=250)
    dual_rate = 2e9 / PAPER_SPECS.cycle_ns / 1e6
    single_rate = 2e9 / single_bank.cycle_ns / 1e6

    # Word-port-fed registers: 1024 bytes at 10 MB/s vs 400 ns.
    word_port_row_ns = 1024 / 4 * PAPER_SPECS.word_access_ns
    row_port_row_ns = PAPER_SPECS.row_access_ns

    table = Table(
        "A1 — Ablations: what each mechanism buys",
        ["mechanism", "with", "without", "factor"],
    )
    table.add("dual banks (peak MFLOPS, 2-input forms)",
              dual_rate, single_rate, dual_rate / single_rate)
    table.add("row port (ns to fill one register)",
              row_port_row_ns, word_port_row_ns,
              word_port_row_ns / row_port_row_ns)
    table.add("streaming (ns per row-pair, VADD)",
              streamed_ns, naive_ns, naive_ns / streamed_ns)
    table.add("streaming vs pure arithmetic (overhead %)",
              100 * (streamed_ns / pure_ns - 1),
              100 * (naive_ns / pure_ns - 1), "-")
    save_report("a1_ablations", table)

    assert dual_rate / single_rate == 2.0
    assert word_port_row_ns / row_port_row_ns == 256  # 2560 vs 10 MB/s
    assert streamed_ns < naive_ns
    assert streamed_ns / pure_ns < 1.10
    assert naive_ns / pure_ns > 1.06


def test_a1_dma_startup_ablation(benchmark):
    frame = FrameSpec.from_specs(PAPER_SPECS)

    def rows():
        out = []
        for nbytes in (8, 64, 1024, 8192):
            wire = frame.transfer_ns(nbytes)
            with_dma = PAPER_SPECS.dma_startup_ns + wire
            out.append((nbytes, wire, with_dma,
                        PAPER_SPECS.dma_startup_ns / with_dma))
        return out

    data = benchmark.pedantic(rows, rounds=1, iterations=1)
    table = Table(
        "A1b — DMA startup share by message size",
        ["message bytes", "wire ns", "with DMA ns", "startup share"],
    )
    for row in data:
        table.add(*row)
    save_report("a1_dma", table)

    shares = {nbytes: share for nbytes, _w, _d, share in data}
    assert shares[8] > 0.25          # single words: startup-dominated
    assert shares[8192] < 0.001      # whole rows: negligible


def test_a1_flush_to_zero_ablation(benchmark):
    """Numerics ablation: how far FTZ strays from full IEEE on a
    subnormal-straddling workload — and that it is exact elsewhere."""
    from repro.fpu.ieee import BINARY64
    from repro.fpu.softfloat import fp_mul

    def count_divergence():
        rng = np.random.default_rng(0)
        diverged = 0
        total = 200
        for _ in range(total):
            # Products landing near the subnormal boundary.
            x = float(rng.uniform(0.5, 2.0)) * 10.0 ** rng.integers(
                -160, -140
            )
            y = float(rng.uniform(0.5, 2.0)) * 10.0 ** rng.integers(
                -170, -150
            )
            machine_bits = fp_mul(
                BINARY64.from_float(x), BINARY64.from_float(y), BINARY64
            )
            ieee = x * y     # host keeps subnormals
            machine = BINARY64.to_float(machine_bits)
            if machine != ieee:
                diverged += 1
        return diverged, total

    diverged, total = benchmark.pedantic(
        count_divergence, rounds=1, iterations=1
    )
    table = Table(
        "A1c — Flush-to-zero vs IEEE gradual underflow",
        ["quantity", "value"],
    )
    table.add("subnormal-boundary products sampled", total)
    table.add("results differing from IEEE (flushed)", diverged)
    table.add("divergence anywhere in the normal range", 0)
    save_report("a1_ftz", table)
    # FTZ visibly flushes in the subnormal band...
    assert diverged > 0
    # ...and the softfloat tests (hypothesis, tests/test_fpu_softfloat)
    # prove bit-exactness in the normal range.
