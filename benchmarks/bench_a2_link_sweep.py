"""A2 (ablation) — what faster links would have bought.

History's verdict on the T Series was that its 0.5 MB/s links starved
the 16 MFLOPS pipes (the 1:130 balance).  This ablation sweeps the
link bit rate across two orders of magnitude and recomputes the
balance ratio and the matmul crossover, quantifying how the machine's
useful regime widens — the fix its successors actually shipped.

Each sweep cell builds everything from its link-speed factor, so the
sweep runs through :func:`repro.parallel.run_cells` — serial by
default, fanned out over worker processes under ``REPRO_SWEEP_JOBS``
(or ``benchmarks/bench_sweep.py --jobs N``) with a byte-identical
merged result.
"""

import pytest

from repro.algorithms.matmul import matmul_time_model
from repro.analysis import Table, ops_to_hide_link
from repro.core import PAPER_SPECS
from repro.parallel import run_cells

from _util import save_report

FACTORS = (1, 4, 16, 64)


def sweep_cell(factor):
    """One sweep cell: derive every figure from the link-speed factor."""
    specs = PAPER_SPECS.replace(
        link_bit_rate=PAPER_SPECS.link_bit_rate * factor
    )
    threshold = ops_to_hide_link(specs)

    def speedup_2node(m, k):
        return (matmul_time_model(m, k, 16, 1, specs)
                / matmul_time_model(m, k, 16, 2, specs))

    # Smallest M (power of two) where a K=64 matmul wins on 2 nodes.
    crossover = None
    for m in (8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384):
        if speedup_2node(m, 64) > 1.0:
            crossover = m
            break
    return (factor, specs.link_bw_mb_s, threshold, crossover,
            speedup_2node(4096, 64))


def _sweep(jobs=None):
    return run_cells(sweep_cell, FACTORS, jobs=jobs).values()


def test_a2_link_speed_ablation(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = Table(
        "A2 — Balance vs link speed (matmul K=64, N=16, 2 nodes)",
        ["link speedup", "link MB/s", "flops/word to hide",
         "crossover M (K=64)", "speedup at M=4096"],
    )
    for factor, mb_s, threshold, crossover, speedup in rows:
        table.add(f"x{factor}", mb_s, threshold,
                  crossover if crossover else "never", speedup)
    save_report("a2_link_sweep", table)

    base = rows[0]
    fastest = rows[-1]
    # The paper-spec machine needs ~111 flops/word; 64x faster links
    # drop that to under 2.
    assert base[2] > 100
    assert fastest[2] < 2.5
    # The crossover problem size shrinks monotonically as links speed
    # up (where it exists), and large-matrix speedup improves.
    crossovers = [r[3] for r in rows if r[3] is not None]
    assert crossovers == sorted(crossovers, reverse=True)
    assert fastest[4] > base[4]
    assert fastest[4] > 1.8      # near-ideal on 2 nodes
