"""E10 — The architecture argument (paper §I / §IV), measured.

* Distributed n-cube vs shared-memory bus on streaming SAXPY: the bus
  machine saturates at a handful of processors while the cube scales
  linearly — who wins and where the crossover falls;
* vector node vs scalar node: the payoff of pipelined vector
  arithmetic on one node;
* interconnect wiring cost: crossbar O(P²) vs cube O(P·log P).
"""

import numpy as np
import pytest

from repro.algorithms import distributed_saxpy
from repro.analysis import Table, mflops
from repro.baselines import ScalarNode, SharedBusMachine
from repro.core import PAPER_SPECS, TSeriesMachine
from repro.topology import wiring_cost_hypercube, wiring_cost_shared

from _util import save_report

ELEMENTS = 128 * 64


def _cube_curve():
    points = []
    for dim in (0, 1, 2, 3):
        machine = TSeriesMachine(dim, with_system=False)
        _r, elapsed, rate = distributed_saxpy(
            machine, 1.0, np.ones(ELEMENTS), np.ones(ELEMENTS)
        )
        points.append((1 << dim, elapsed, rate))
    return points


def _bus_curve():
    points = []
    for p in (1, 2, 4, 8):
        machine = SharedBusMachine(p, PAPER_SPECS)
        elapsed = machine.saxpy(ELEMENTS)
        points.append((p, elapsed, mflops(2 * ELEMENTS, elapsed)))
    return points


def test_e10_cube_vs_shared_bus(benchmark):
    cube, bus = benchmark.pedantic(
        lambda: (_cube_curve(), _bus_curve()), rounds=1, iterations=1
    )
    table = Table(
        "E10 — SAXPY scaling: distributed n-cube vs shared bus",
        ["P", "cube ns", "cube MFLOPS", "bus ns", "bus MFLOPS",
         "winner"],
    )
    for (p, cns, crate), (_p, bns, brate) in zip(cube, bus):
        table.add(p, cns, crate, bns, brate,
                  "cube" if cns < bns else "bus")
    save_report("e10_cube_vs_bus", table)

    cube_by_p = {p: ns for p, ns, _r in cube}
    bus_by_p = {p: ns for p, ns, _r in bus}
    # The cube scales ~linearly...
    assert cube_by_p[8] == pytest.approx(cube_by_p[1] / 8, rel=0.02)
    # ...the bus saturates (8 processors barely beat 2).
    assert bus_by_p[8] > 0.6 * bus_by_p[2]
    # The cube wins everywhere here (its operands are node-local), and
    # the margin *grows* with P — the paper's scaling argument.
    margin_1 = bus_by_p[1] / cube_by_p[1]
    margin_8 = bus_by_p[8] / cube_by_p[8]
    assert margin_8 > 2 * margin_1
    assert margin_8 > 8


def test_e10_vector_vs_scalar_node(benchmark):
    def measure():
        scalar = ScalarNode(PAPER_SPECS)
        scalar_ns = scalar.saxpy(ELEMENTS // 8)
        machine = TSeriesMachine(0, with_system=False)
        n = ELEMENTS // 8
        _r, vector_ns, _rate = distributed_saxpy(
            machine, 1.0, np.ones(n), np.ones(n)
        )
        return scalar_ns, vector_ns

    scalar_ns, vector_ns = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    ratio = scalar_ns / vector_ns
    table = Table(
        "E10b — One node, SAXPY: vector pipes vs scalar loop",
        ["node", "elapsed ns", "speedup"],
    )
    table.add("scalar (CP only)", scalar_ns, 1.0)
    table.add("vector (dual pipes + banks)", vector_ns, ratio)
    save_report("e10_vector_vs_scalar", table)
    assert ratio > 20


def test_e10_wiring_costs(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            (p, wiring_cost_shared(p), wiring_cost_hypercube(p))
            for p in (8, 16, 64, 256, 1024, 4096)
        ],
        rounds=1, iterations=1,
    )
    table = Table(
        "E10c — Interconnect cost growth (crossbar vs n-cube links)",
        ["P", "crossbar O(P^2)", "n-cube links", "ratio"],
    )
    for p, shared, cube in rows:
        table.add(p, shared, cube, shared / cube)
    save_report("e10_wiring_costs", table)
    ratios = [shared / cube for _p, shared, cube in rows]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))  # diverges
    assert ratios[-1] > 500
