"""E11 — Vector/memory organisation (paper §II, Memory).

* vectors are 256 elements (32-bit) or 128 elements (64-bit), one row;
* the dual banks feed two operands per cycle, so SAXPY "proceeds at
  the full speed of the arithmetic components, without being limited
  by available memory bandwidth" — measured: sustained rate within a
  few percent of peak, with the row port nearly idle;
* same-bank operand placement is rejected (the rule the banks impose).
"""

import numpy as np
import pytest

from repro.analysis import Table
from repro.core import BankConflictError, PAPER_SPECS, ProcessorNode
from repro.events import Engine

from _util import save_report


def _sustained_saxpy(rows=64):
    """Stream SAXPY over `rows` row-pairs through the full datapath."""
    eng = Engine()
    node = ProcessorNode(eng, PAPER_SPECS)
    for r in range(rows):
        node.write_row_floats(r % 256, np.ones(128))
        node.write_row_floats(256 + r % 256, np.ones(128))

    def program():
        for r in range(rows):
            yield from node.load_vector(r % 256, reg=0)
            yield from node.load_vector(256 + r % 256, reg=1)
            yield from node.vector_op("SAXPY", [0, 1], scalars=(1.0,),
                                      dst_reg=0)
            yield from node.store_vector(0, 512 + r % 256)

    eng.run(until=eng.process(program()))
    rate = node.measured_mflops()
    row_port_util = node.memory.row_port.utilization()
    return rate, row_port_util


def test_e11_vector_memory_organisation(benchmark):
    rate, row_util = benchmark.pedantic(
        _sustained_saxpy, rounds=1, iterations=1
    )
    table = Table(
        "E11 — Vector/memory organisation (paper vs machine)",
        ["quantity", "paper", "measured/model"],
    )
    table.add("vector length, 32-bit", 256, PAPER_SPECS.vector_length_32)
    table.add("vector length, 64-bit", 128, PAPER_SPECS.vector_length_64)
    table.add("bank A rows", 256, PAPER_SPECS.bank_a_rows)
    table.add("bank B rows", 768, PAPER_SPECS.bank_b_rows)
    table.add("parity bits per byte", 1, PAPER_SPECS.parity_bits_per_byte)
    table.add("SAXPY sustained MFLOPS (of 16 peak)", "full speed", rate)
    table.add("row-port utilisation during SAXPY", "not limiting",
              row_util)
    save_report("e11_vector_memory", table)

    # "Full speed": within ~15% of peak even with *unoverlapped* row
    # traffic and pipeline fill (1.2 µs of row moves + 1.6 µs of fill
    # against 16 µs of streaming per row pair); the row port itself is
    # nowhere near limiting.
    assert rate > 0.85 * 16.0
    assert row_util < 0.10     # memory is nowhere near the bottleneck

    # The dual-bank rule is enforced.
    node = ProcessorNode(Engine(), PAPER_SPECS)
    with pytest.raises(BankConflictError):
        node.check_banks(3, 7)          # both bank A
    node.check_banks(3, 400)            # A + B is the supported shape


def test_e11_no_cache_needed(benchmark):
    """The organisational claim: the register/banks structure needs no
    cache because row loads amortise to ~3 ns/element against the
    125 ns/element pipes."""
    def amortised():
        loads_ns = 3 * PAPER_SPECS.row_access_ns      # 2 in + 1 out
        per_element = loads_ns / PAPER_SPECS.vector_length_64
        return per_element

    per_element = benchmark.pedantic(amortised, rounds=1, iterations=1)
    assert per_element < 0.1 * PAPER_SPECS.cycle_ns
