"""E12 — End-to-end applications, validating the paper's balance rule.

The paper's own provision (§II): "roughly 130 operations should result
from every 64-bit word that must be moved between nodes over a link" —
otherwise communication, not the 16 MFLOPS pipes, sets the pace.

This bench runs the kernels the paper's introduction motivates across
machine sizes and checks that *the balance rule predicts which ones
scale*:

* SAXPY moves no inter-node words → near-perfect speedup;
* FFT, matmul, stencil and bitonic sort at laboratory problem sizes
  sit far below 130 flops/word → they are communication-bound on this
  machine, exactly as the rule says (a documented characteristic of
  the real T Series, whose links were its weak point).

Every kernel's output is verified against NumPy regardless.
"""

import numpy as np
import pytest

from repro.algorithms import (
    bitonic_sort,
    distributed_fft,
    distributed_jacobi,
    distributed_matmul,
    distributed_saxpy,
    fft_reference,
    jacobi_reference,
    matmul_reference,
    saxpy_reference,
    sort_reference,
)
from repro.analysis import Table, ops_to_hide_link, speedup
from repro.core import PAPER_SPECS, TSeriesMachine

from _util import save_report

DIMS = (0, 1, 2, 3)


def _scaling(run_kernel, verify):
    rows = []
    for dim in DIMS:
        machine = TSeriesMachine(dim, with_system=False)
        result, elapsed = run_kernel(machine)
        verify(result)
        rows.append((1 << dim, elapsed))
    return rows


def _intensity(flops, words_moved_per_node):
    """Flops per 64-bit word each node moves (∞ if it moves none)."""
    if words_moved_per_node == 0:
        return float("inf")
    return flops / words_moved_per_node


def _report(name, rows, intensity):
    serial_ns = rows[0][1]
    threshold = ops_to_hide_link(PAPER_SPECS)
    table = Table(
        f"E12 — {name} (intensity {intensity:.1f} flops/word vs "
        f"threshold {threshold:.0f})",
        ["nodes", "elapsed ns", "speedup"],
    )
    for p, elapsed in rows:
        table.add(p, elapsed, speedup(serial_ns, elapsed))
    return table


def test_e12_saxpy_scales_nearly_perfectly(benchmark):
    """Zero inter-node traffic → the machine's scalable regime."""
    n = 128 * 64
    x = np.ones(n)
    y = np.full(n, 2.0)
    expected = saxpy_reference(3.0, x, y)

    rows = benchmark.pedantic(
        lambda: _scaling(
            lambda m: distributed_saxpy(m, 3.0, x, y)[:2],
            lambda r: np.testing.assert_array_equal(r, expected),
        ),
        rounds=1, iterations=1,
    )
    save_report("e12_saxpy",
                _report("SAXPY, 8192 elements", rows, float("inf")))
    times = dict(rows)
    assert speedup(times[1], times[8]) == pytest.approx(8.0, rel=0.02)


def test_e12_fft_is_communication_bound(benchmark):
    rng = np.random.default_rng(0)
    n = 256
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    expected = fft_reference(x)

    rows = benchmark.pedantic(
        lambda: _scaling(
            lambda m: distributed_fft(m, x),
            lambda r: np.testing.assert_allclose(r, expected, atol=1e-8),
        ),
        rounds=1, iterations=1,
    )
    # Per cross stage a node computes ~10·m flops and ships 2·m words:
    # ~5 flops/word — two orders below the 111-130 threshold.
    intensity = 5.0
    save_report("e12_fft",
                _report("256-point FFT", rows, intensity))
    times = dict(rows)
    # The balance rule's verdict, measured: no speedup at this size.
    assert intensity < ops_to_hide_link(PAPER_SPECS) / 10
    assert times[8] > 0.8 * times[1]


def test_e12_matmul_crossover_follows_balance_rule(benchmark):
    """Matmul's intensity caps at ~2K flops per returned C word, so the
    balance rule predicts: small-K matmul can never outrun the links,
    large-K matmul crosses over at some M.  We validate the cost model
    against simulation at tractable sizes, then use it to locate the
    crossover."""
    from repro.algorithms.matmul import matmul_time_model

    rng = np.random.default_rng(1)

    def run_case(m_rows, k, n, dim):
        a = rng.standard_normal((m_rows, k))
        b = rng.standard_normal((k, n))
        machine = TSeriesMachine(dim, with_system=False)
        c, elapsed, _ = distributed_matmul(machine, a, b)
        np.testing.assert_allclose(c, matmul_reference(a, b), rtol=1e-9)
        model = matmul_time_model(m_rows, k, n, 1 << dim, PAPER_SPECS)
        return elapsed, model

    cases = benchmark.pedantic(
        lambda: {
            (8, 16, 16, 0): run_case(8, 16, 16, 0),
            (8, 16, 16, 1): run_case(8, 16, 16, 1),
            (64, 64, 16, 0): run_case(64, 64, 16, 0),
            (64, 64, 16, 1): run_case(64, 64, 16, 1),
        },
        rounds=1, iterations=1,
    )
    table = Table(
        "E12 — matmul: simulated vs cost model",
        ["M", "K", "N", "P", "simulated ns", "model ns", "error %"],
    )
    for (m, k, n, dim), (simulated, model) in cases.items():
        table.add(m, k, n, 1 << dim, simulated, model,
                  100 * abs(simulated - model) / simulated)
        # The model tracks simulation well enough to extrapolate.
        assert model == pytest.approx(simulated, rel=0.25), (m, k, dim)

    # Extrapolate with the validated model: speedup(M) on 2 nodes.
    model_speedup = lambda m, k: (
        matmul_time_model(m, k, 16, 1, PAPER_SPECS)
        / matmul_time_model(m, k, 16, 2, PAPER_SPECS)
    )
    crossover_table = Table(
        "E12b — model-predicted 2-node matmul speedup (N=16)",
        ["M", "K=16", "K=128"],
    )
    for m in (64, 256, 1024, 4096, 16384):
        crossover_table.add(m, model_speedup(m, 16),
                            model_speedup(m, 128))
    save_report("e12_matmul", table, crossover_table)

    # K=16: the C-return traffic bounds intensity at ~32 flops/word —
    # below the 130 threshold, so parallel NEVER wins, at any M.
    assert all(model_speedup(m, 16) < 1.0
               for m in (64, 1024, 65536))
    # K=128 (intensity ~256): parallel wins once the broadcast is
    # amortised — the crossover M is finite.  The fused-chain cost
    # model (one pipeline fill per row, not per SAXPY) makes compute
    # cheaper than the old per-op model, so the asymptotic speedup at
    # this size sits nearer the communication bound than the 1.28 the
    # per-op model predicted — but it still clears 1.
    assert model_speedup(16384, 128) > 1.1
    assert model_speedup(64, 128) < model_speedup(16384, 128)


def test_e12_stencil_scaling(benchmark):
    rng = np.random.default_rng(2)
    grid = rng.standard_normal((32, 32))
    expected = jacobi_reference(grid, 4)

    rows = benchmark.pedantic(
        lambda: _scaling(
            lambda m: distributed_jacobi(m, grid, 4),
            lambda r: np.testing.assert_allclose(r, expected, atol=1e-10),
        ),
        rounds=1, iterations=1,
    )
    # Halo intensity: ~4 flops/element · (block area / perimeter) ≈
    # 4·(32²/P)/(4·32/√P) words ≈ 32/√P flops/word ≪ 130.
    save_report("e12_stencil",
                _report("32x32 Jacobi x4", rows, 32 / np.sqrt(8)))
    times = dict(rows)
    # Comm-bound as the rule predicts: well under linear speedup...
    assert speedup(times[1], times[8]) < 4.0
    # ...but the halos are small enough that parallelism still nets
    # *some* gain or at worst breaks even at this size.
    assert times[8] < 1.6 * times[1]


def test_e12_sort_is_communication_bound(benchmark):
    rng = np.random.default_rng(3)
    keys = rng.standard_normal(512)
    expected = sort_reference(keys)

    rows = benchmark.pedantic(
        lambda: _scaling(
            lambda m: bitonic_sort(m, keys),
            lambda r: np.testing.assert_array_equal(r, expected),
        ),
        rounds=1, iterations=1,
    )
    # Compare-split: ~log(m) flops per word exchanged ≪ 130.
    save_report("e12_sort",
                _report("512-key bitonic sort", rows, np.log2(64)))
    times = dict(rows)
    assert times[8] > 0.8 * times[1]   # exchanges dominate, as predicted


def test_e12_intensity_summary(benchmark):
    """The rule itself, as a table the other tests instantiate."""
    threshold = benchmark.pedantic(
        lambda: ops_to_hide_link(PAPER_SPECS), rounds=1, iterations=1
    )
    table = Table(
        "E12b — Arithmetic intensity vs the paper's 130-ops rule",
        ["kernel", "flops per 64-bit word moved", "scales?"],
    )
    table.add("SAXPY (local rows)", "infinite", True)
    table.add("matmul M=512 (2 nodes)", 512, True)
    table.add("Jacobi 32x32", 11.3, False)
    table.add("FFT 256", 5.0, False)
    table.add("bitonic sort 512", 6.0, False)
    save_report("e12_intensity", table)
    assert 100 < threshold < 140
