"""E13b — End-to-end fault tolerance (paper §III's error-recovery story).

The paper justifies the system disks and the ~10-minute snapshot
interval entirely by error recovery; this experiment runs the machine
*as a system under failure* and measures the full loop:

* a checkpointed stencil run that loses nodes to Poisson halts must
  complete **bit-identical** to the fault-free run (detection →
  restore → remap → resume, all simulated);
* sweeping checkpoint interval × MTBF, the measured-optimal interval
  must fall inside the analytic optimum's band from
  :mod:`repro.analysis.checkpoint_opt` (the same first-order model
  that puts the paper's full-scale optimum near 10 minutes);
* one run under **all four** fault classes (latent parity bytes,
  transient frame corruption, stuck sublinks, node halts) exercises
  the ARQ transport and the snapshot parity trap together.

Timescale note: node memory is compressed (32 KB/node, paper rates
unchanged) so dozens of snapshot/restore cycles fit in seconds of
simulated time; interval/MTBF *ratios* — what the sweep checks — are
preserved.  The "E13" scaled-speedup experiment predates this one and
keeps its report name (``e13_scaled_speedup``); this file writes
``e13_fault_tolerance``.

Every sweep cell (one interval × MTBF × seed) builds its machine and
fault injector from scratch, so the 25-cell campaign runs through
:func:`repro.parallel.run_cells` — serial by default, fanned out
under ``REPRO_SWEEP_JOBS`` (or ``benchmarks/bench_sweep.py --jobs N``)
with a byte-identical merged result.
"""

import pytest

from repro.analysis import (
    Table,
    optimal_interval_band,
    recovery_stats,
    reliability_stats,
    seconds,
    young_interval_s,
)
from repro.core.config import MachineConfig
from repro.core.machine import TSeriesMachine
from repro.events import Engine, FaultLog
from repro.system.failures import (
    FAULT_LINK_STUCK,
    FAULT_LINK_TRANSIENT,
    FAULT_NODE_HALT,
    FAULT_PARITY,
    MultiClassFailureInjector,
)
from repro.parallel import run_cells
from repro.system.recovery import (
    FaultTolerantRun,
    RingStencilWorkload,
    compressed_timescale_specs,
)

from _util import save_report

DIMENSION = 3
RANKS = 1 << DIMENSION
STEPS = 640
PAD_NS = 10_000_000          # 10 ms of modelled CP work per step
INTERVALS_STEPS = (80, 160, 320, 640)
MTBFS_S = (5.0, 12.0)
SEEDS = (0, 1, 2)
HORIZON_NS = int(120e9)      # outlasts every run


def _run_once(interval_steps, mtbf_s=None, seed=0, classes=None):
    """One checkpointed run; returns (run stats + roll-ups, digest)."""
    eng = Engine()
    FaultLog(eng)
    config = MachineConfig(DIMENSION, specs=compressed_timescale_specs())
    machine = TSeriesMachine(config, engine=eng)
    workload = RingStencilWorkload(
        ranks=RANKS, steps=STEPS, exchange_every=4, compute_pad_ns=PAD_NS,
    )
    run = FaultTolerantRun(machine, workload,
                           checkpoint_interval_steps=interval_steps)
    if mtbf_s is not None:
        injector = MultiClassFailureInjector(
            machine, classes or {FAULT_NODE_HALT: mtbf_s},
            seed=seed, halt_hook=run.halt_hook,
        )
        eng.process(injector.run(HORIZON_NS), name="injector")
    run.execute()
    stats = recovery_stats(run)
    stats["reliability"] = reliability_stats(run.transport)
    return stats, workload.digest(run)


def campaign_cells():
    """The sweep's cell list: the fault-free run, then every
    interval × MTBF × seed combination."""
    cells = [(INTERVALS_STEPS[-1], None, 0)]
    for mtbf_s in MTBFS_S:
        for interval_steps in INTERVALS_STEPS:
            for seed in SEEDS:
                cells.append((interval_steps, mtbf_s, seed))
    return cells


def campaign_cell(cell):
    """One sweep cell: a whole checkpointed run under failure."""
    interval_steps, mtbf_s, seed = cell
    return _run_once(interval_steps, mtbf_s=mtbf_s, seed=seed)


def campaign(jobs=None):
    """Run the full sweep and regroup results by (MTBF, interval)."""
    all_cells = campaign_cells()
    values = run_cells(campaign_cell, all_cells, jobs=jobs).values()
    clean, clean_digest = values[0]
    grouped = {}
    for (interval_steps, mtbf_s, _seed), outcome in zip(
            all_cells[1:], values[1:]):
        grouped.setdefault((mtbf_s, interval_steps), []).append(outcome)
    return clean, clean_digest, grouped


def test_e13_fault_tolerance(benchmark):
    clean, clean_digest, cells = benchmark.pedantic(
        campaign, rounds=1, iterations=1,
    )

    # Snapshot cost and step time, measured off the fault-free run.
    snapshot_s = seconds(clean["snapshot_ns_total"]) \
        / clean["snapshots_taken"]
    step_s = (seconds(clean["elapsed_ns"])
              - seconds(clean["snapshot_ns_total"])) / STEPS
    intervals_s = [n * step_s for n in INTERVALS_STEPS]
    ideal_s = STEPS * step_s

    sweep = Table(
        "E13b — Completion time under Poisson node halts "
        f"(C = {snapshot_s:.2f} s/snapshot, {STEPS} steps, "
        f"{RANKS} ranks, seeds {SEEDS})",
        ["MTBF s", "interval s", "mean completion s",
         "overhead fraction", "recoveries", "mean lost work s",
         "bit-identical"],
    )
    measured_best = {}
    all_identical = True
    total_recoveries = 0
    for mtbf_s in MTBFS_S:
        means = []
        for n, interval_s in zip(INTERVALS_STEPS, intervals_s):
            runs = cells[(mtbf_s, n)]
            completion = [seconds(s["elapsed_ns"]) for s, _ in runs]
            recoveries = sum(s["recoveries"] for s, _ in runs)
            lost = [seconds(s["lost_work_ns"]) for s, _ in runs]
            identical = all(d == clean_digest for _, d in runs)
            all_identical &= identical
            total_recoveries += recoveries
            mean_s = sum(completion) / len(completion)
            means.append((interval_s, mean_s))
            sweep.add(mtbf_s, round(interval_s, 2), round(mean_s, 2),
                      round(mean_s / ideal_s - 1.0, 3), recoveries,
                      round(sum(lost) / len(lost), 2), identical)
        measured_best[mtbf_s] = min(means, key=lambda r: r[1])[0]

    # Mean restart cost (restore + reship + settle), for the model.
    restarts = [
        r for runs in cells.values() for s, _ in runs
        for r in s["recovery_elapsed_ns"]
    ]
    restart_s = seconds(sum(restarts)) / len(restarts) if restarts else 0.0

    check = Table(
        "E13b — Measured optimum vs the analytic band "
        f"(restart ≈ {restart_s:.2f} s; band = intervals within 1.25× "
        "of the model's best predicted overhead)",
        ["MTBF s", "measured best s", "band lo s", "band hi s",
         "Young opt s", "in band"],
    )
    in_band = {}
    for mtbf_s in MTBFS_S:
        lo, hi = optimal_interval_band(
            intervals_s, snapshot_s, mtbf_s, restart_s=restart_s,
        )
        best = measured_best[mtbf_s]
        in_band[mtbf_s] = lo <= best <= hi
        check.add(mtbf_s, round(best, 2), round(lo, 2), round(hi, 2),
                  round(young_interval_s(snapshot_s, mtbf_s), 2),
                  in_band[mtbf_s])

    paper = Table(
        "E13b — Paper tie-in (full-scale parameters)",
        ["quantity", "value"],
    )
    paper.add("snapshot time (paper)", "15 s")
    paper.add("Young optimum at MTBF 3.3 h",
              f"{young_interval_s(15.0, 3.3 * 3600):.0f} s")
    paper.add("paper's recommended interval", "600 s (~10 minutes)")

    save_report("e13_fault_tolerance", sweep, check, paper)

    assert all_identical, "a recovered run diverged from fault-free"
    assert total_recoveries > 0, "sweep never exercised recovery"
    assert all(in_band.values()), \
        f"measured optimum outside analytic band: {measured_best}"
    # The paper's claim at full scale: ~10 minutes is Young-optimal.
    assert young_interval_s(15.0, 3.3 * 3600) == pytest.approx(600, rel=0.01)


def test_e13_all_fault_classes(benchmark):
    classes = {
        FAULT_PARITY: 8.0,
        FAULT_LINK_TRANSIENT: 0.5,
        FAULT_LINK_STUCK: 2.0,
        FAULT_NODE_HALT: 8.0,
    }

    def runs():
        _, clean_digest = _run_once(160)
        stats, digest = _run_once(160, mtbf_s=1.0, seed=3,
                                  classes=classes)
        return clean_digest, stats, digest

    clean_digest, stats, digest = benchmark.pedantic(
        runs, rounds=1, iterations=1,
    )
    rel = stats["reliability"]
    table = Table(
        "E13b — One run under all four fault classes "
        "(MTBFs: parity 8 s, transient 0.5 s, stuck 2 s, halt 8 s)",
        ["counter", "value"],
    )
    table.add("completion s", round(seconds(stats["elapsed_ns"]), 2))
    table.add("recoveries", stats["recoveries"])
    table.add("snapshot aborts (parity)", stats["snapshot_aborts"])
    table.add("dead nodes", str(stats["dead_nodes"]))
    table.add("link retries", rel["retries"])
    table.add("checksum failures", rel["checksum_failures"])
    table.add("frames corrupted", rel["frames_corrupted"])
    table.add("frames lost (outages)", rel["frames_lost"])
    table.add("bit-identical to fault-free", digest == clean_digest)
    save_report("e13_fault_classes", table)

    assert digest == clean_digest
    assert stats["recoveries"] > 0
    assert rel["retries"] > 0
    assert rel["frames_corrupted"] > 0
