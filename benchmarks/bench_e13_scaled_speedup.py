"""E13 (extension) — Scaled speedup: the 1986 machine meets the 1988 law.

The paper's closing claim is "performance scalable over three orders
of magnitude".  Fixed-size speedup cannot deliver that (Amdahl); the
T Series' lead author's later argument — scale the problem with the
machine (Gustafson 1988) — can, and this machine model demonstrates
both sides:

* SAXPY with fixed work per node: constant time, scaled speedup = P;
* stencil blocks above the 130-flops/word balance threshold: scaled
  speedup grows with the machine; below it: it does not;
* the two laws side by side for the paper's configuration sizes.
"""

import pytest

from repro.analysis import (
    Table,
    amdahl_speedup,
    gustafson_speedup,
    measured_scaled_saxpy,
    measured_scaled_stencil,
)
from repro.core import TSeriesMachine

from _util import save_report


def _factory(dim):
    return TSeriesMachine(dim, with_system=False)


def test_e13_measured_scaled_speedup(benchmark):
    saxpy_rows, stencil_rows = benchmark.pedantic(
        lambda: (
            measured_scaled_saxpy(_factory, dims=(0, 1, 2, 3),
                                  elements_per_node=128 * 16),
            measured_scaled_stencil(_factory, dims=(0, 1, 2, 3),
                                    block=256, iterations=1),
        ),
        rounds=1, iterations=1,
    )
    table = Table(
        "E13 — Measured scaled speedup (work grows with the machine)",
        ["P", "SAXPY elapsed ns", "SAXPY scaled speedup",
         "stencil elapsed ns", "stencil scaled speedup"],
    )
    for (p, s_ns, s_sp), (_p, t_ns, t_sp) in zip(saxpy_rows,
                                                 stencil_rows):
        table.add(p, s_ns, s_sp, t_ns, t_sp)
    save_report("e13_scaled_speedup", table)

    # SAXPY: perfectly scalable — constant time, scaled speedup = P.
    for p, elapsed, scaled in saxpy_rows:
        assert elapsed == saxpy_rows[0][1]
        assert scaled == pytest.approx(p)
    # Stencil at block=256: scaled speedup grows monotonically and
    # reaches a substantial fraction of P.
    stencil_speedups = [s for _p, _e, s in stencil_rows]
    assert stencil_speedups == sorted(stencil_speedups)
    assert stencil_speedups[-1] > 0.6 * 8


def test_e13_amdahl_vs_gustafson_table(benchmark):
    serial_fraction = 0.02
    rows = benchmark.pedantic(
        lambda: [
            (p, amdahl_speedup(serial_fraction, p),
             gustafson_speedup(serial_fraction, p))
            for p in (8, 16, 64, 4096)
        ],
        rounds=1, iterations=1,
    )
    table = Table(
        "E13b — Fixed-size vs scaled speedup at s=2% "
        "(the paper's configuration ladder)",
        ["P (nodes)", "Amdahl (fixed size)", "Gustafson (scaled)"],
    )
    for p, a, g in rows:
        table.add(p, a, g)
    save_report("e13_laws", table)

    by_p = {p: (a, g) for p, a, g in rows}
    # Amdahl caps at 1/s = 50; scaled speedup keeps the paper's
    # "three orders of magnitude" promise alive at the 12-cube.
    assert by_p[4096][0] < 50
    assert by_p[4096][1] > 4000
