"""E14 (extension) — distributed LINPACK-style solve.

The era's standard yardstick, on the T Series model: row-cyclic
Gaussian elimination with machine-wide partial pivoting (all-reduce
argmax), physical pivot-row exchange, binomial pivot-row broadcasts,
and SAXPY elimination.  Reported: solve time across machine sizes,
pivot statistics, and where the balance rule puts the useful regime.
"""

import numpy as np
import pytest

from repro.algorithms import distributed_solve, linpack_reference
from repro.analysis import Table
from repro.core import TSeriesMachine

from _util import save_report


def _run(dim, n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    a = a[rng.permutation(n)]
    b = rng.standard_normal(n)
    machine = TSeriesMachine(dim, with_system=False)
    x, elapsed, stats = distributed_solve(machine, a, b)
    np.testing.assert_allclose(x, linpack_reference(a, b), rtol=1e-8)
    flops = machine.total_flops()
    return elapsed, stats, flops


def test_e14_linpack_solve(benchmark):
    results = benchmark.pedantic(
        lambda: {dim: _run(dim, 32) for dim in (0, 1, 2)},
        rounds=1, iterations=1,
    )
    table = Table(
        "E14 — 32x32 solve with partial pivoting (row-cyclic)",
        ["nodes", "elapsed ns", "FLOPs", "swaps", "cross-node swaps"],
    )
    for dim, (elapsed, stats, flops) in results.items():
        table.add(1 << dim, elapsed, flops, stats["swaps"],
                  stats["cross_node_swaps"])
    save_report("e14_linpack", table)

    t1, stats1, flops1 = results[0]
    t4, stats4, _f4 = results[2]
    # Correct everywhere; pivoting active; distributed pivot exchanges
    # actually crossed nodes.
    assert stats1["swaps"] == stats4["swaps"] > 0
    assert stats4["cross_node_swaps"] > 0
    # n=32 is far below the balance threshold (2n/P flops per
    # broadcast word): communication-bound, single node fastest —
    # the honest verdict the paper's own rule gives.
    assert t1 < t4
    # Per-step broadcasts are log-depth: the parallel penalty is
    # bounded (well under the node count times the serial time).
    assert t4 / t1 < 20
