"""E15 (extension) — "With all links operating, the control processor
performance is degraded only slightly" (paper §II, Communications).

We turn on DMA memory-cycle stealing (off by default; see
``TSeriesSpecs.dma_memory_traffic``) and measure the CP's gather
throughput while every link saturates in both directions — the worst
case.  The arithmetic: 8 directions × 0.577 MB/s ≈ 4.6 MB/s of DMA
traffic against the 10 MB/s word port, so a *port-saturating* CP loses
up to ~45%, while a typical CP (which does not saturate the port)
loses little — both sides are measured and reported, which is the
honest reading of "only slightly".
"""

import numpy as np
import pytest

from repro.analysis import Table
from repro.core import PAPER_SPECS, ProcessorNode
from repro.events import Engine
from repro.links.fabric import connect

from _util import save_report


def _build(specs):
    """A hub node with all four links wired to peers."""
    eng = Engine()
    hub = ProcessorNode(eng, specs, node_id=0)
    peers = [ProcessorNode(eng, specs, node_id=1 + i) for i in range(4)]
    for i, peer in enumerate(peers):
        connect(hub.comm, 4 * i, peer.comm, 0, role="hypercube")
    return eng, hub, peers


def _gather_rate(specs, links_active, horizon_us=3000):
    """Gather elements completed per ms, with/without link traffic."""
    eng, hub, peers = _build(specs)
    done = {"elements": 0}

    def cp_side():
        addresses = [64 * i for i in range(100)]
        while True:
            yield from hub.gather(addresses, 0x80000)
            done["elements"] += 100

    def blast_out(slot):
        while True:
            yield from hub.comm.send(slot, "x", 1024)

    def blast_in(peer):
        while True:
            yield from peer.comm.send(0, "y", 1024)

    def drain(slot):
        while True:
            yield from hub.comm.recv(slot)

    eng.process(cp_side())
    if links_active:
        for i in range(4):
            eng.process(blast_out(4 * i))
            eng.process(blast_in(peers[i]))
            eng.process(drain(4 * i))
    eng.run(until=horizon_us * 1000)
    return done["elements"] / (horizon_us / 1000.0)


def test_e15_dma_contention(benchmark):
    stealing = PAPER_SPECS.replace(dma_memory_traffic=True)

    quiet, busy, busy_no_steal = benchmark.pedantic(
        lambda: (
            _gather_rate(stealing, links_active=False),
            _gather_rate(stealing, links_active=True),
            _gather_rate(PAPER_SPECS, links_active=True),
        ),
        rounds=1, iterations=1,
    )
    degradation = 1 - busy / quiet
    table = Table(
        "E15 — CP gather throughput vs link DMA traffic "
        "(port-saturating worst case)",
        ["scenario", "gather elements/ms", "degradation"],
    )
    table.add("links idle", quiet, 0.0)
    table.add("all 4 links busy, DMA steals port cycles", busy,
              degradation)
    table.add("all 4 links busy, stealing disabled (default model)",
              busy_no_steal, 1 - busy_no_steal / quiet)
    save_report("e15_dma_contention", table)

    # The stolen bandwidth is bounded by the links' aggregate demand:
    # ≈4.6 of 10 MB/s worst case.
    assert 0.05 < degradation < 0.55
    # With the default (non-stealing) model the CP is unaffected.
    assert busy_no_steal == pytest.approx(quiet, rel=0.01)
    # A CP using half the port (the common case) would lose at most
    # the overlap excess: (4.6 + 5 − 10)/5 — "only slightly" holds
    # away from saturation.
    demand_mb_s = 8 * PAPER_SPECS.link_bw_mb_s
    half_port_loss = max(0.0, (demand_mb_s + 5.0 - 10.0) / 5.0)
    assert half_port_loss < 0.05
