"""E16 (extension) — composite scientific workloads.

Three workloads that each combine several machine subsystems, with
per-workload utilisation breakdowns showing where the time goes:

* **conjugate gradients** on the 5-point Laplacian: mat-vec halo
  exchanges + DOT reductions + SAXPY updates;
* **ring-pipelined N-body**: all vector forms including the
  Newton–Raphson rsqrt (no divide/sqrt hardware), intensity ~m
  flops/word so decent blocks scale;
* **distributed transpose**: the all-to-all worst case.
"""

import numpy as np
import pytest

from repro.algorithms import (
    distributed_cg,
    distributed_nbody,
    distributed_transpose,
    nbody_reference,
    transpose_reference,
)
from repro.algorithms.cg import cg_reference
from repro.analysis import Table, busiest_component, machine_utilization
from repro.core import TSeriesMachine

from _util import save_report


def test_e16_cg(benchmark):
    rng = np.random.default_rng(0)
    b = rng.standard_normal((16, 16))

    def run():
        machine = TSeriesMachine(2, with_system=False)
        x, elapsed, residuals = distributed_cg(machine, b, iterations=8)
        return machine, x, elapsed, residuals

    machine, x, elapsed, residuals = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    np.testing.assert_allclose(x, cg_reference(b, 8), rtol=1e-9,
                               atol=1e-12)
    util = machine_utilization(machine)
    table = Table("E16 — CG(8 iters, 16x16 Poisson) on 4 nodes",
                  ["quantity", "value"])
    table.add("elapsed ms", elapsed / 1e6)
    table.add("residual drop", residuals[0] / residuals[-1])
    table.add("adder utilisation", util["adder"])
    table.add("multiplier utilisation", util["multiplier"])
    table.add("busiest component", busiest_component(machine))
    save_report("e16_cg", table)
    assert residuals[-1] < residuals[0]


def test_e16_nbody_scaling(benchmark):
    n = 64
    rng = np.random.default_rng(1)
    positions = rng.standard_normal((n, 2))
    masses = rng.uniform(0.5, 2.0, size=n)
    expected = nbody_reference(positions, masses)

    def run():
        rows = []
        for dim in (0, 1, 2):
            machine = TSeriesMachine(dim, with_system=False)
            acc, elapsed = distributed_nbody(machine, positions, masses)
            np.testing.assert_allclose(acc, expected, rtol=1e-10)
            rows.append((1 << dim, elapsed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = dict(rows)
    table = Table("E16b — N-body (64 bodies) scaling",
                  ["nodes", "elapsed ns", "speedup"])
    for p, elapsed in rows:
        table.add(p, elapsed, t[1] / elapsed)
    save_report("e16_nbody", table)
    # O(n²/P) compute vs O(n) transfers per shift: real speedup even
    # at 32 bodies, growing with P.
    assert t[2] < t[1]
    assert t[4] < t[2]
    assert t[1] / t[4] > 2.0


def test_e16_transpose_cost(benchmark):
    rng = np.random.default_rng(2)
    a = rng.standard_normal((16, 16))

    def run():
        machine = TSeriesMachine(2, with_system=False)
        result, elapsed = distributed_transpose(machine, a)
        return machine, result, elapsed

    machine, result, elapsed = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    np.testing.assert_array_equal(result, transpose_reference(a))
    transport = machine._transport
    table = Table("E16c — 16x16 transpose on 4 nodes (all-to-all)",
                  ["quantity", "value"])
    table.add("elapsed ms", elapsed / 1e6)
    table.add("messages delivered", transport.delivered)
    table.add("mean hops", transport.mean_hops())
    save_report("e16_transpose", table)
    # P(P−1) tiles moved; e-cube mean hops on a 2-cube ≤ 2.
    assert transport.delivered >= 12
    assert transport.mean_hops() <= 2.0
