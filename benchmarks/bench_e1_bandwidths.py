"""E1 — Figure 2, "Processor bandwidths".

Measures every datapath rate from simulated traffic and checks it
against the figure's labels:

* control processor ↔ RAM: 10 MB/s;
* memory ↔ vector registers: 2560 MB/s;
* vector registers ↔ arithmetic unit: 64 MB/s per stream, 192 MB/s
  total (two inputs + one output per 125 ns in 64-bit mode);
* link adapter port: 10 MB/s (it shares the random-access port).
"""

import numpy as np
import pytest

from repro.analysis import Table, bandwidth_mb_s
from repro.core import PAPER_SPECS, ProcessorNode
from repro.events import Engine

from _util import save_report


def _measure_paths():
    eng = Engine()
    node = ProcessorNode(eng, PAPER_SPECS)

    # CP ↔ RAM through the word port.
    def cp_traffic():
        yield from node.memory.words_read(0, 2500)

    eng.run(until=eng.process(cp_traffic()))
    cp_mb_s = bandwidth_mb_s(2500 * 4, eng.now)

    # Memory ↔ vector register through the row port.
    eng2 = Engine()
    node2 = ProcessorNode(eng2, PAPER_SPECS)

    def row_traffic():
        for row in range(200):
            yield from node2.load_vector(row % 1024, reg=0)

    eng2.run(until=eng2.process(row_traffic()))
    row_mb_s = bandwidth_mb_s(200 * 1024, eng2.now)

    # Vector registers ↔ arithmetic: SAXPY streams 2 inputs + 1 output,
    # 8 bytes each, per result cycle.
    eng3 = Engine()
    node3 = ProcessorNode(eng3, PAPER_SPECS)
    node3.vregs[0].set_elements(np.ones(128), 64)
    node3.vregs[1].set_elements(np.ones(128), 64)

    def arith_traffic():
        for _ in range(500):
            yield from node3.vector_op("SAXPY", [0, 1], scalars=(1.0,))

    eng3.run(until=eng3.process(arith_traffic()))
    elements = 500 * 128
    arith_total_mb_s = bandwidth_mb_s(3 * 8 * elements, eng3.now)

    return cp_mb_s, row_mb_s, arith_total_mb_s


def test_e1_processor_bandwidths(benchmark):
    cp_mb_s, row_mb_s, arith_mb_s = benchmark.pedantic(
        _measure_paths, rounds=1, iterations=1
    )

    table = Table(
        "E1 / Figure 2 — Processor bandwidths (paper vs measured)",
        ["datapath", "paper MB/s", "measured MB/s"],
    )
    table.add("CP <-> RAM (word port)", 10.0, cp_mb_s)
    table.add("memory <-> vector register", 2560.0, row_mb_s)
    table.add("vector regs <-> arithmetic (3 streams)", 192.0, arith_mb_s)
    table.add("per arithmetic stream", 64.0, arith_mb_s / 3)
    table.add("link adapter port (shares word port)", 10.0, cp_mb_s)
    save_report("e1_bandwidths", table)

    assert cp_mb_s == pytest.approx(10.0, rel=0.01)
    assert row_mb_s == pytest.approx(2560.0, rel=0.01)
    # Pipeline fill keeps the measured arithmetic stream rate slightly
    # under the peak figure.
    assert arith_mb_s == pytest.approx(192.0, rel=0.10)
    assert arith_mb_s < 192.0
