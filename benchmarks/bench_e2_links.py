"""E2 — Communications (paper §II).

Measures from simulated wire traffic:

* per-link unidirectional bandwidth "over 0.5 MB/s" (from the
  8+2+1(+2 ack) framing at the link bit rate);
* total four-link bandwidth "over 4 MB/s" with both directions active;
* DMA startup ≈ 5 µs;
* 16 sublinks per node, dividing a link's bandwidth when multiplexed.
"""

import pytest

from repro.analysis import Table, bandwidth_mb_s
from repro.core import PAPER_SPECS
from repro.events import Engine
from repro.links import LinkAdapter, SerialLink

from _util import save_report


def _measure():
    eng = Engine()
    a = LinkAdapter(eng, PAPER_SPECS, name="A")
    b = LinkAdapter(eng, PAPER_SPECS, name="B")
    links = []
    for i in range(4):
        link = SerialLink(eng, PAPER_SPECS, name=f"L{i}")
        a.attach(i, link.end(0))
        b.attach(i, link.end(1))
        links.append(link)

    def pump(adapter, link_index, messages):
        for _ in range(messages):
            yield from adapter.sublink(link_index, 0).send("x", 1000)

    for i in range(4):
        eng.process(pump(a, i, 40))
        eng.process(pump(b, i, 40))
    eng.run()
    per_wire = [w.measured_mb_s() for l in links for w in l.wires]
    total = sum(per_wire)

    # DMA startup: difference between a sent message's total time and
    # its pure wire time.
    eng2 = Engine()
    a2 = LinkAdapter(eng2, PAPER_SPECS)
    b2 = LinkAdapter(eng2, PAPER_SPECS)
    link2 = SerialLink(eng2, PAPER_SPECS)
    a2.attach(0, link2.end(0))
    b2.attach(0, link2.end(1))

    def one(eng):
        yield from a2.send(0, 0, "m", 8)
        return eng.now

    total_ns = eng2.run(until=eng2.process(one(eng2)))
    dma_ns = total_ns - link2.frame.transfer_ns(8)
    return per_wire, total, dma_ns, len(a.sublinks())


def test_e2_link_bandwidths(benchmark):
    per_wire, total, dma_ns, sublinks = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    table = Table(
        "E2 — Link communications (paper vs measured)",
        ["quantity", "paper", "measured"],
    )
    table.add("per-link one-way MB/s", "> 0.5", min(per_wire))
    table.add("four links, both directions MB/s", "> 4", total)
    table.add("DMA startup us", "about 5", dma_ns / 1000.0)
    table.add("sublinks per node", 16, sublinks)
    table.add(
        "bits per byte on the wire",
        "8 data + 2 sync + 1 stop + 2 ack",
        PAPER_SPECS.link_bits_per_byte,
    )
    save_report("e2_links", table)

    assert min(per_wire) > 0.5          # the paper's bound, measured
    assert total > 4.0
    assert dma_ns == pytest.approx(5000, abs=1)
    assert sublinks == 16
