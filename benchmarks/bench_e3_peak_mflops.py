"""E3 — Arithmetic rates (paper §II).

* 16 MFLOPS peak per node: adder + multiplier each producing one
  64-bit result per 125 ns, measured from back-to-back SAXPY forms;
* pipeline depths: 6 (add), 5/7 (multiply 32/64-bit);
* 128 MFLOPS per module: eight nodes streaming in parallel.
"""

import numpy as np
import pytest

from repro.analysis import Table
from repro.core import PAPER_SPECS, TSeriesMachine
from repro.events import Engine
from repro.fpu import VectorArithmeticUnit

from _util import save_report


def _node_rate():
    eng = Engine()
    vau = VectorArithmeticUnit(eng, PAPER_SPECS)
    x = np.ones(128)
    y = np.ones(128)

    def driver():
        for _ in range(400):
            yield eng.process(vau.execute("SAXPY", [x, y], (2.0,)))

    eng.run(until=eng.process(driver()))
    return vau.measured_mflops()


def _module_rate():
    machine = TSeriesMachine(3, with_system=False)
    eng = machine.engine
    x = np.ones(128)
    y = np.ones(128)

    def driver(node):
        for _ in range(200):
            yield eng.process(node.vau.execute("SAXPY", [x, y], (2.0,)))

    procs = [eng.process(driver(n)) for n in machine.nodes]
    eng.run(until=eng.all_of(procs))
    return machine.measured_mflops()


def test_e3_peak_rates(benchmark):
    node_mflops, module_mflops = benchmark.pedantic(
        lambda: (_node_rate(), _module_rate()), rounds=1, iterations=1
    )
    table = Table(
        "E3 — Peak arithmetic (paper vs measured)",
        ["quantity", "paper", "measured"],
    )
    table.add("node MFLOPS (64-bit SAXPY stream)", 16.0, node_mflops)
    table.add("module MFLOPS (8 nodes)", 128.0, module_mflops)
    table.add("adder pipeline stages", 6, PAPER_SPECS.adder_stages)
    table.add("multiplier stages (32-bit)", 5,
              PAPER_SPECS.multiplier_stages_32)
    table.add("multiplier stages (64-bit)", 7,
              PAPER_SPECS.multiplier_stages_64)
    save_report("e3_peak_mflops", table)

    assert node_mflops == pytest.approx(16.0, rel=0.10)
    assert node_mflops < 16.0           # fill overhead, never above peak
    assert module_mflops == pytest.approx(128.0, rel=0.10)
