"""E4 — Gather/scatter vs row moves (paper §II, Memory).

* 64-bit gather: 1.6 µs per element (two reads + two writes);
* 32-bit gather: 0.8 µs per element;
* whole-row move: 400 ns per 1024 bytes — "extraordinary speed" the
  paper recommends for pivoting matrix rows and sorting records;
* end-to-end: Gaussian elimination pivot swaps via row moves vs. via
  CP element copies.
"""

import numpy as np
import pytest

from repro.algorithms import gauss_solve
from repro.analysis import Table
from repro.core import PAPER_SPECS, ProcessorNode
from repro.events import Engine

from _util import save_report


def _measure_gather(precision):
    eng = Engine()
    node = ProcessorNode(eng, PAPER_SPECS)
    addresses = [64 * i for i in range(500)]

    def proc():
        yield from node.gather(addresses, 0x80000, precision=precision)

    eng.run(until=eng.process(proc()))
    return eng.now / 500


def _measure_row_move():
    eng = Engine()
    node = ProcessorNode(eng, PAPER_SPECS)

    def proc():
        for i in range(100):
            yield from node.memory.row_move(i, 512 + i, node.vregs[0])

    eng.run(until=eng.process(proc()))
    return eng.now / 100  # ns per 1024-byte row moved


def _pivot_comparison():
    rng = np.random.default_rng(0)
    n = 32
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    a = a[rng.permutation(n)]
    b = rng.standard_normal(n)
    out = {}
    for mode, use_rows in (("row-move", True), ("cp-copy", False)):
        eng = Engine()
        node = ProcessorNode(eng, PAPER_SPECS)
        proc = eng.process(gauss_solve(node, a, b, use_row_moves=use_rows))
        _x, stats = eng.run(until=proc)
        out[mode] = stats
    return out


def test_e4_gather_and_row_moves(benchmark):
    g64, g32, row_ns, pivots = benchmark.pedantic(
        lambda: (
            _measure_gather(64), _measure_gather(32),
            _measure_row_move(), _pivot_comparison(),
        ),
        rounds=1, iterations=1,
    )
    table = Table(
        "E4 — Data movement (paper vs measured)",
        ["quantity", "paper", "measured"],
    )
    table.add("gather 64-bit element (us)", 1.6, g64 / 1000.0)
    table.add("gather 32-bit element (us)", 0.8, g32 / 1000.0)
    table.add("row move, 1024 bytes (ns)", 800, row_ns)
    table.add("row path effective MB/s", 2560.0, 1024 / (row_ns / 2) * 1000)
    swaps = pivots["row-move"]["swaps"]
    table.add("pivot swaps in 32x32 solve", "-", swaps)
    table.add("swap time via row moves (us)",
              "-", pivots["row-move"]["swap_ns"] / 1000.0)
    table.add("swap time via CP copies (us)",
              "-", pivots["cp-copy"]["swap_ns"] / 1000.0)
    ratio = (pivots["cp-copy"]["swap_ns"]
             / max(1, pivots["row-move"]["swap_ns"]))
    table.add("row-move advantage (x)", "~2 orders", ratio)
    save_report("e4_gather_rowmove", table)

    assert g64 == pytest.approx(1600, abs=1)
    assert g32 == pytest.approx(800, abs=1)
    assert row_ns == pytest.approx(800, abs=1)  # two 400 ns accesses
    assert ratio > 30
