"""E5 — The balance ratio (paper §II):

    (Arithmetic) : (Gather) : (Link transfer) = 1 : 13 : 130
       0.125 µs      1.6 µs      16 µs

All three terms are measured from simulation (per-element asymptotes),
then normalised.  The paper's link term uses a rounded flat 0.5 MB/s;
our framing model gives ≈13.9 µs per 64-bit word — same decade, both
reported.
"""

import numpy as np
import pytest

from repro.analysis import PAPER_RATIO, PAPER_TIMES_US, Table
from repro.core import PAPER_SPECS, ProcessorNode
from repro.events import Engine
from repro.links.fabric import connect

from _util import save_report


def _measure_terms():
    # Arithmetic: per-element asymptote of a long VADD stream.
    eng = Engine()
    node = ProcessorNode(eng, PAPER_SPECS)
    ones = np.ones(128)

    def arith():
        for _ in range(500):
            yield from node.vau.execute("VADD", [ones, ones])

    eng.run(until=eng.process(arith()))
    arith_ns = eng.now / (500 * 128)

    # Gather: per 64-bit element.
    eng2 = Engine()
    node2 = ProcessorNode(eng2, PAPER_SPECS)

    def gather():
        yield from node2.gather([64 * i for i in range(500)], 0x80000)

    eng2.run(until=eng2.process(gather()))
    gather_ns = eng2.now / 500

    # Link: per 64-bit word of a long transfer (DMA startup amortised).
    eng3 = Engine()
    a = ProcessorNode(eng3, PAPER_SPECS, 0)
    b = ProcessorNode(eng3, PAPER_SPECS, 1)
    connect(a.comm, 0, b.comm, 0, role="hypercube")
    words = 2000

    def link():
        yield from a.comm.send(0, "block", 8 * words)

    eng3.run(until=eng3.process(link()))
    link_ns = eng3.now / words
    return arith_ns, gather_ns, link_ns


def test_e5_balance_ratio(benchmark):
    arith_ns, gather_ns, link_ns = benchmark.pedantic(
        _measure_terms, rounds=1, iterations=1
    )
    table = Table(
        "E5 — Balance ratio (paper vs measured)",
        ["term", "paper us", "measured us", "paper ratio",
         "measured ratio"],
    )
    table.add("arithmetic / 64-bit result", PAPER_TIMES_US[0],
              arith_ns / 1000, 1.0, 1.0)
    table.add("gather / 64-bit element", PAPER_TIMES_US[1],
              gather_ns / 1000, PAPER_RATIO[1], gather_ns / arith_ns)
    table.add("link / 64-bit word", PAPER_TIMES_US[2],
              link_ns / 1000, PAPER_RATIO[2], link_ns / arith_ns)
    save_report("e5_balance_ratio", table)

    # Pipeline fill adds ~4% at 128-element granularity.
    assert arith_ns == pytest.approx(125, rel=0.05)
    assert gather_ns == pytest.approx(1600, rel=0.01)
    # The exact model value is 1600/125 = 12.8, which the paper rounds
    # to 13; the measured arithmetic term carries ~4% fill overhead.
    assert gather_ns / arith_ns == pytest.approx(12.8, rel=0.05)
    # The paper rounds the link term up to 16 µs (130x); the framing
    # model lands at ~13.9 µs (~110x) — the same order either way.
    assert 100 < link_ns / arith_ns < 140
