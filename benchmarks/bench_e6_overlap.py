"""E6 — Gather/compute overlap (paper §II).

"A vector should enter into about 13 operations while gathering the
next vector ... With this provision, the control processor can
completely overlap the gather time with vector arithmetic, and the
node can approach peak speed.  Similarly, roughly 130 operations
should result from every 64-bit word that must be moved between nodes
over a link."

The bench races an actual gather against vector work at a sweep of
intensities (ops per gathered element) and locates the efficiency
knee; the model and the simulation must both put it at ≈13.
"""

import pytest

from repro.analysis import (
    Table,
    knee_ops,
    link_intensity_model,
    overlap_efficiency_model,
    overlap_sweep,
)
from repro.core import PAPER_SPECS

from _util import save_report

INTENSITIES = [1, 2, 4, 6, 8, 10, 12, 13, 16, 20, 26]


def test_e6_overlap_knee(benchmark):
    rows = benchmark.pedantic(
        lambda: overlap_sweep(PAPER_SPECS, INTENSITIES, elements=512),
        rounds=1, iterations=1,
    )
    table = Table(
        "E6 — Efficiency vs ops per gathered element (knee at ~13)",
        ["ops/element", "model efficiency", "measured efficiency"],
    )
    for f, model, measured in rows:
        table.add(f, model, measured)
    knee = knee_ops(PAPER_SPECS)
    link_table = Table(
        "E6b — Link-side intensity (ops per 64-bit word moved)",
        ["ops/word", "model efficiency"],
    )
    for f in (13, 65, 111, 130, 260):
        link_table.add(f, link_intensity_model(f, PAPER_SPECS))
    save_report("e6_overlap", table, link_table)

    # The knee: below 13 efficiency is ~f/12.8, at/above it saturates.
    by_f = {f: measured for f, _m, measured in rows}
    assert knee == pytest.approx(12.8)
    assert by_f[4] == pytest.approx(4 / 12.8, abs=0.1)
    assert by_f[13] > 0.85
    assert by_f[26] > 0.9
    assert by_f[13] - by_f[1] > 0.7      # the curve actually rises
    # Past the knee it flattens (saturation, not linear growth).
    assert by_f[26] - by_f[13] < 0.1
    # Link side: ~130 ops/word sustains peak.
    assert link_intensity_model(130, PAPER_SPECS) == 1.0
    assert link_intensity_model(13, PAPER_SPECS) < 0.15


def test_e6_model_is_piecewise_linear(benchmark):
    values = benchmark.pedantic(
        lambda: [overlap_efficiency_model(f, PAPER_SPECS)
                 for f in range(1, 30)],
        rounds=1, iterations=1,
    )
    for i, v in enumerate(values, start=1):
        expected = min(1.0, i / 12.8)
        assert v == pytest.approx(expected, abs=1e-9)
