"""E7 — Figure 3, binary n-cube mappings.

* rings, meshes (up to dimension n), cylinders, toroids and the
  radix-2 FFT butterfly all embed with dilation 1;
* the maximum route length is n hops, so long-range communication
  cost grows as O(log₂ N) — measured from routed message timing;
* a Gray-coded ring placement beats naive placement on real traffic.
"""

import pytest

from repro.analysis import Table, series
from repro.core import TSeriesMachine
from repro.runtime import HypercubeProgram, IdentityMapping, RingMapping
from repro.topology import (
    ButterflyEmbedding,
    CylinderEmbedding,
    MeshEmbedding,
    RingEmbedding,
    dilation,
    embeddable_meshes,
)

from _util import save_report


def _dilation_table():
    table = Table(
        "E7 / Figure 3 — Embedding dilations (paper: all map directly)",
        ["mapping", "logical shape", "cube dim", "dilation"],
    )
    table.add("ring", "64-cycle", 6, dilation(RingEmbedding(64)))
    for shape in [(4, 4), (2, 8), (8, 8), (2, 2, 4)]:
        emb = MeshEmbedding(shape)
        table.add("mesh", "x".join(map(str, shape)), emb.bits,
                  dilation(emb))
    for shape in [(4, 4), (8, 4)]:
        emb = MeshEmbedding(shape, torus=True)
        table.add("torus", "x".join(map(str, shape)), emb.bits,
                  dilation(emb))
    cyl = CylinderEmbedding((8, 4))
    table.add("cylinder", "8x4", cyl.bits, dilation(cyl))
    fft = ButterflyEmbedding(64)
    table.add("FFT butterfly", "radix-2, 64 pt", fft.bits, dilation(fft))
    return table


def _measured_hop_cost():
    """Route one message per distance class; time must be linear in
    hops (and therefore ≤ n for any pair: O(log₂ N))."""
    machine = TSeriesMachine(4, with_system=False)
    program = HypercubeProgram(machine)
    rows = []
    for dst, hops in [(1, 1), (3, 2), (7, 3), (15, 4)]:
        def main(ctx, dst=dst):
            if ctx.node_id == 0:
                yield from ctx.send(dst, "probe", 64, tag=f"h{dst}")
            if ctx.node_id == dst:
                yield from ctx.recv(tag=f"h{dst}")
            return None
            yield  # pragma: no cover

        _res, elapsed = program.run(main, nodes=[0, dst])
        rows.append((hops, elapsed))
    return rows


def test_e7_embeddings_and_costs(benchmark):
    hop_rows = benchmark.pedantic(
        _measured_hop_cost, rounds=1, iterations=1
    )
    dil_table = _dilation_table()
    hop_table = series(
        "E7b — Routed message time vs hop count (O(log2 N) growth)",
        hop_rows, "hops", "elapsed ns",
    )
    growth = Table(
        "E7c — Diameter vs machine size (max hops = n)",
        ["cube dim n", "nodes N", "max hops"],
    )
    for n in (3, 6, 9, 12, 14):
        growth.add(n, 2 ** n, n)
    save_report("e7_embeddings", dil_table, hop_table, growth)

    # Every Figure 3 mapping is dilation-1.
    assert all(row[-1] == "1" for row in dil_table.rows)
    # Measured time linear in hops.
    per_hop = hop_rows[0][1]
    for hops, elapsed in hop_rows:
        assert elapsed == pytest.approx(hops * per_hop, rel=0.01)
    # All mesh shapes of a 4-cube are embeddable.
    assert len(embeddable_meshes(4)) >= 5


def test_e7_gray_ring_beats_identity(benchmark):
    """Neighbour traffic around a 16-ring: Gray placement needs one
    hop per step; identity placement pays extra on the wrap/borders."""
    machine = TSeriesMachine(4, with_system=False)

    def run_mapping(mapping_cls):
        mapping = mapping_cls(16)
        program = HypercubeProgram(machine)

        def main(ctx):
            rank = (mapping.rank_of(ctx.node_id)
                    if hasattr(mapping, "rank_of")
                    else ctx.node_id)
            nxt = mapping.node_of((rank + 1) % 16)
            tagname = f"ring-{mapping_cls.__name__}"
            yield from ctx.send(nxt, rank, 64, tag=tagname)
            envelope = yield from ctx.recv(tag=tagname)
            return envelope.hops

        results, elapsed = program.run(main)
        return sum(results.values()), elapsed

    (gray_hops, gray_ns), (ident_hops, ident_ns) = benchmark.pedantic(
        lambda: (run_mapping(RingMapping), run_mapping(IdentityMapping)),
        rounds=1, iterations=1,
    )
    table = Table(
        "E7d — Ring traffic: Gray-code vs identity placement",
        ["placement", "total hops", "elapsed ns"],
    )
    table.add("Gray code (Figure 3)", gray_hops, gray_ns)
    table.add("identity (naive)", ident_hops, ident_ns)
    save_report("e7_ring_placement", table)

    assert gray_hops == 16          # dilation 1: one hop per ring step
    assert ident_hops > gray_hops
    assert gray_ns < ident_ns
