"""E8 — Configuration scaling (paper §III).

The paper's homogeneity claim: every figure of any sized T Series is
derivable from the module.  The bench regenerates the configuration
table (module → cabinet → 4-cabinet → 12-cube) and the per-node
sublink budget, and verifies the intra-module wiring claims against an
actually-wired machine.

Each configuration cell is derived purely from its dimension, so the
table sweep runs through :func:`repro.parallel.run_cells` — serial by
default, fanned out under ``REPRO_SWEEP_JOBS`` (or
``benchmarks/bench_sweep.py --jobs N``) with a byte-identical merged
result.

The table sweep is also the first bench wired through the
:mod:`repro.service` machine-room layer: cells are submitted as
content-addressed jobs, so a re-run with an unchanged tree answers
from the ``.repro-cache/`` store without simulating.  Disable with
``pytest benchmarks/ --no-cache`` (or ``REPRO_SERVICE_CACHE=0``) to
force fresh execution.  Per-cell wall clocks are surfaced in a
separate ``e8_configurations_timing`` report so the main tables stay
bit-stable.
"""

import os

import pytest

from repro.analysis import (
    Table,
    service_stats_table,
    sweep_timing_table,
)
from repro.core import (
    MachineConfig,
    PAPER_SPECS,
    SublinkPlan,
    TSeriesMachine,
)
from repro.parallel import run_cells
from repro.service import JobSpec, SimulationService, register_workload

from _util import save_report

CONFIG_CELLS = (
    ("module", 3), ("cabinet (tesseract)", 4), ("four cabinets", 6),
    ("max usable (12-cube)", 12), ("structural max (14-cube)", 14),
)


def config_cell(cell):
    """One sweep cell: every derived figure for one configuration."""
    label, dim = cell
    c = MachineConfig(dim)
    row = {
        "label": label,
        "dimension": c.dimension,
        "node_count": c.node_count,
        "module_count": c.module_count,
        "cabinet_count": c.cabinet_count,
        "peak_gflops": c.peak_gflops,
        "peak_mflops": c.peak_mflops,
        "memory_mbytes": c.memory_mbytes,
        "system_disk_count": c.system_disk_count,
        "max_hops": c.max_hops,
        "usable": c.usable,
    }
    if dim <= 12:
        row["link_budget"] = dict(c.link_budget())
    return row


def _e8_cell_runner(spec):
    """Service runner for one configuration cell."""
    return config_cell((spec["label"], spec["dimension"]))


register_workload("bench.e8_config", _e8_cell_runner, replace=True)


def service_cache_enabled() -> bool:
    """``REPRO_SERVICE_CACHE=0`` (or ``--no-cache``) disables the
    result cache and forces fresh simulation."""
    return os.environ.get("REPRO_SERVICE_CACHE", "1") not in ("0", "off")


def _config_rows(jobs=None, use_cache=None):
    """The configuration table, served through the machine room.

    Submits every cell as a content-addressed job; an unchanged tree
    re-runs near-instantly from the result cache.  Returns the rows
    and the service (for the timing/stats report).
    """
    if use_cache is None:
        use_cache = service_cache_enabled()
    service = SimulationService(use_cache=use_cache, pool_jobs=jobs)
    futures = [
        service.submit(JobSpec(kind="bench.e8_config",
                               spec={"label": label, "dimension": dim}))
        for label, dim in CONFIG_CELLS
    ]
    service.drain()
    return [f.result() for f in futures], service


def test_e8_configuration_tables(benchmark):
    rows, service = benchmark.pedantic(
        _config_rows, rounds=1, iterations=1
    )
    # The service path must agree with the direct sweep, whether the
    # rows came from fresh simulation or from the result cache.
    direct = run_cells(config_cell, CONFIG_CELLS).values()
    assert rows == direct
    table = Table(
        "E8 — T Series configurations (derived from module specs)",
        ["configuration", "n", "nodes", "modules", "cabinets",
         "peak GFLOPS", "memory MB", "disks", "max hops", "usable"],
    )
    for c in rows:
        table.add(c["label"], c["dimension"], c["node_count"],
                  c["module_count"], c["cabinet_count"], c["peak_gflops"],
                  c["memory_mbytes"], c["system_disk_count"],
                  c["max_hops"], c["usable"])

    budget = Table(
        "E8b — Per-node sublink budget (16 sublinks)",
        ["configuration", "hypercube", "system", "io", "spare"],
    )
    for c in rows:
        if "link_budget" not in c:
            continue
        b = c["link_budget"]
        budget.add(f"{c['dimension']}-cube", b["hypercube"], b["system"],
                   b["io"], b["spare"])
    plan14 = SublinkPlan(14, reserve_io=False).budget()
    budget.add("14-cube (io released)", plan14["hypercube"],
               plan14["system"], plan14["io"], plan14["spare"])
    save_report("e8_configurations", table, budget)

    # Diagnostic twin report: service counters and per-cell wall
    # clocks.  Separate file so the tables above stay bit-stable.
    timing_tables = [service_stats_table(
        service, "E8d — machine-room service profile"
    )]
    if service.last_sweep is not None:
        timing_tables.append(sweep_timing_table(
            service.last_sweep,
            "E8e — per-cell wall clock (executed cells)",
        ))
    save_report("e8_configurations_timing", *timing_tables)

    by_label = {c["label"]: c for c in rows}
    # The paper's named figures.
    assert by_label["module"]["peak_mflops"] == pytest.approx(128.0)
    assert by_label["module"]["memory_mbytes"] == pytest.approx(8.0)
    assert by_label["cabinet (tesseract)"]["node_count"] == 16
    assert by_label["four cabinets"]["node_count"] == 64
    assert by_label["four cabinets"]["peak_gflops"] == pytest.approx(
        1.024  # "1 GFLOPS"
    )
    assert by_label["four cabinets"]["system_disk_count"] == 8
    twelve = by_label["max usable (12-cube)"]
    assert twelve["node_count"] == 4096
    assert twelve["cabinet_count"] == 256
    assert twelve["peak_gflops"] > 65.0       # "over 65 GFLOPS"
    assert twelve["memory_mbytes"] == pytest.approx(4096.0)  # "4 Gbytes"


def test_e8_wiring_claims_on_built_machine(benchmark):
    machine = benchmark.pedantic(
        lambda: TSeriesMachine(4), rounds=1, iterations=1
    )
    # "Three links for intramodule hypercube network communications".
    intramodule_links = {
        machine.slot_of_dimension(d) // 4 for d in range(3)
    }
    assert len(intramodule_links) == 3
    # "The system board connections require two links from each node".
    node = machine.nodes[0]
    system_slots = [s for s in node.comm.wired_slots("system")]
    assert len(system_slots) == 2
    assert len({s // 4 for s in system_slots}) == 2
    # "Over 12 MB/s" local inter-node bandwidth per module.
    assert PAPER_SPECS.intramodule_bw_mb_s > 12.0
    # Two modules per cabinet; ring wired between their boards.
    assert len(machine.modules) == 2
    assert len(machine.ring_links) == 2

    table = Table(
        "E8c — Wiring checks on a built 4-cube",
        ["claim", "paper", "machine"],
    )
    table.add("intramodule hypercube links/node", 3,
              len(intramodule_links))
    table.add("system links/node", 2, len({s // 4 for s in system_slots}))
    table.add("intra-module bandwidth MB/s", "> 12",
              PAPER_SPECS.intramodule_bw_mb_s)
    save_report("e8_wiring", table)
