"""E9 — Snapshot checkpointing (paper §III).

* "It takes about 15 seconds to take a snapshot, regardless of
  configuration" — measured from the simulated thread + disk traffic,
  for one and for two modules;
* "About 10 minutes provides a good compromise" — validated by a
  failure-injection sweep of the checkpoint interval and by Young's
  approximation.
"""

import pytest

from repro.analysis import (
    Table,
    best_interval,
    interval_sweep,
    mtbf_for_interval,
    seconds,
    series,
    young_interval_s,
)
from repro.core import TSeriesMachine
from repro.system import CheckpointService

from _util import save_report


def _snapshot_seconds(dimension):
    machine = TSeriesMachine(dimension)
    service = CheckpointService(machine)

    def proc(eng):
        elapsed = yield from service.snapshot_all("bench")
        return elapsed

    elapsed = machine.engine.run(
        until=machine.engine.process(proc(machine.engine))
    )
    return seconds(elapsed)


def test_e9_snapshot_time(benchmark):
    one, two = benchmark.pedantic(
        lambda: (_snapshot_seconds(3), _snapshot_seconds(4)),
        rounds=1, iterations=1,
    )
    table = Table(
        "E9 — Snapshot time (paper: ~15 s, configuration-independent)",
        ["configuration", "paper s", "measured s"],
    )
    table.add("1 module (8 nodes)", 15.0, one)
    table.add("2 modules (16 nodes)", 15.0, two)
    save_report("e9_snapshot", table)

    assert one == pytest.approx(15.0, rel=0.12)
    assert two == pytest.approx(one, rel=0.02)  # config-independent


def test_e9_interval_optimum(benchmark):
    snapshot_s = 15.0
    mtbf_s = mtbf_for_interval(snapshot_s, 600.0)  # ≈ 3.3 h
    intervals = [75, 150, 300, 600, 1200, 2400, 4800]

    rows = benchmark.pedantic(
        lambda: interval_sweep(
            200_000, intervals, snapshot_s, mtbf_s, seeds=(0, 1, 2, 3)
        ),
        rounds=1, iterations=1,
    )
    young = young_interval_s(snapshot_s, mtbf_s)
    table = series(
        "E9b — Checkpoint overhead vs interval "
        f"(MTBF {mtbf_s / 3600:.1f} h; Young optimum {young:.0f} s)",
        [(f"{interval} s", overhead) for interval, overhead in rows],
        "interval", "overhead fraction",
    )
    save_report("e9_interval_sweep", table)

    measured_best = best_interval(rows)
    # The paper's 10 minutes is the (or adjacent to the) sweep optimum,
    # and agrees with Young's formula.
    assert measured_best in (300, 600, 1200)
    assert young == pytest.approx(600.0, rel=0.01)
    overhead = dict(rows)
    # Both extremes are clearly worse than 10 minutes.
    assert overhead[75] > overhead[600]
    assert overhead[4800] > overhead[600]
