"""Network serving benchmark: remote overhead over the machine room.

The serving front-end (:mod:`repro.service.net`) puts a socket
between the submitter and :class:`SimulationService`.  This bench
prices that socket and gates the two properties that make remote
serving usable:

* **Warm remote throughput** — one persistent framed-protocol client
  submitting the same warm-cache job back to back over a Unix socket.
  Every request crosses the wire, is admitted, answered from the
  cache, and framed back.  Gate: ≥ 100 requests/second.
* **Remote overhead** — the p50 per-request latency of that warm
  remote loop minus the p50 of the identical loop calling
  ``service.submit`` in-process.  The difference is pure front-end:
  framing, CRC, the event loop, the executor hop.  Gate: ≤ 5 ms.
* **Identity gate** — for the same job keys on every kernel tier
  (reference / fast / turbo / vector), the payload served over the
  wire must be byte-identical (canonical JSON) to a fresh in-process
  execution.  The socket must never change an answer.

Run directly::

    PYTHONPATH=src python benchmarks/bench_net.py          # full
    PYTHONPATH=src python benchmarks/bench_net.py --quick  # smoke
"""

import argparse
import json
import pathlib
import shutil
import statistics
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis import Table
from repro.events.engine import KERNEL_TIERS
from repro.service import (
    JobSpec,
    ResultCache,
    ServerThread,
    ServiceClient,
    SimulationService,
    canonical_json,
)

from _util import save_report

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_net.json"

RPS_TARGET = 100.0
#: p50 remote-minus-inprocess budget for one warm serving round trip.
OVERHEAD_TARGET_MS = 5.0

WARM_SPEC = {
    "kind": "vector",
    "ops": [{"form": "DOT", "n": 64, "precision": 64, "seed": 5,
             "scalars": [], "specials": False}],
}

IDENTITY_SPECS = [
    ("vector", {"kind": "vector", "ops": [
        {"form": "VADD", "n": 32, "precision": 64, "seed": 3,
         "scalars": [], "specials": False},
        {"form": "SAXPY", "n": 32, "precision": 32, "seed": 4,
         "scalars": [1.5], "specials": True},
    ]}),
    ("golden", {"name": "vector_forms"}),
]


def _document(kind, spec, tier) -> dict:
    return {"kind": kind, "spec": spec, "tier": tier}


def run_warm_serving(reps: int) -> dict:
    """Warm-cache serving, in-process vs. over the socket."""
    root = tempfile.mkdtemp(prefix="repro-net-bench-")
    try:
        cache_root = str(pathlib.Path(root) / "cache")
        job = JobSpec(kind="vector", spec=WARM_SPEC, tier="turbo")

        # In-process baseline: same submit, no socket.
        service = SimulationService(
            cache=ResultCache(root=cache_root))
        service.submit(job).result()  # populate the cache
        local_lat = []
        for _ in range(reps):
            t0 = time.perf_counter()
            future = service.submit(job)
            assert future.status == "cached"
            local_lat.append(time.perf_counter() - t0)

        # Remote: one persistent client over a Unix socket against a
        # *fresh* service on the same store (memory LRU warms on the
        # first request, exactly like the in-process loop above).
        remote_service = SimulationService(
            cache=ResultCache(root=cache_root))
        sock = str(pathlib.Path(root) / "bench.sock")
        remote_lat = []
        with ServerThread(remote_service, unix_path=sock):
            with ServiceClient("unix:" + sock) as client:
                record = client.submit(_document(
                    "vector", WARM_SPEC, "turbo"), wait=60)
                assert record["status"] in ("done", "cached")
                t_all = time.perf_counter()
                for _ in range(reps):
                    t0 = time.perf_counter()
                    record = client.submit(
                        _document("vector", WARM_SPEC, "turbo"),
                        wait=60, with_result=False)
                    remote_lat.append(time.perf_counter() - t0)
                wall = time.perf_counter() - t_all
                assert record["status"] == "cached"

        local_p50 = statistics.median(local_lat)
        remote_p50 = statistics.median(remote_lat)
        return {
            "reps": reps,
            "local_p50_ms": local_p50 * 1e3,
            "remote_p50_ms": remote_p50 * 1e3,
            "overhead_p50_ms": (remote_p50 - local_p50) * 1e3,
            "remote_rps": reps / wall,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run_identity(tier: str) -> dict:
    """Remote answers vs. fresh in-process execution, one tier."""
    root = tempfile.mkdtemp(prefix="repro-net-ident-")
    try:
        service = SimulationService(
            cache=ResultCache(root=str(pathlib.Path(root) / "c")))
        sock = str(pathlib.Path(root) / "ident.sock")
        remote_payloads = []
        keys = []
        with ServerThread(service, unix_path=sock):
            with ServiceClient("unix:" + sock) as client:
                for kind, spec in IDENTITY_SPECS:
                    record = client.submit(
                        _document(kind, spec, tier), wait=120)
                    assert record["status"] in ("done", "cached"), \
                        record
                    remote_payloads.append(record["result"])
                    keys.append(record["key"])
        direct = SimulationService(use_cache=False)
        direct_payloads = []
        for kind, spec in IDENTITY_SPECS:
            future = direct.submit(JobSpec(kind=kind, spec=spec,
                                           tier=tier))
            assert future.key in keys  # same job, same address
            direct_payloads.append(future.result())
        return {
            "tier": tier,
            "jobs": len(IDENTITY_SPECS),
            "byte_identical": (canonical_json(remote_payloads)
                               == canonical_json(direct_payloads)),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run_benchmark(quick: bool = False) -> dict:
    reps = 60 if quick else 400
    serving = run_warm_serving(reps)
    identity = {tier: run_identity(tier) for tier in KERNEL_TIERS}
    return {
        "benchmark": "net",
        "quick": quick,
        "serving": serving,
        "identity": identity,
        "rps_target": RPS_TARGET,
        "overhead_target_ms": OVERHEAD_TARGET_MS,
        "all_byte_identical": all(
            t["byte_identical"] for t in identity.values()
        ),
    }


def render(payload: dict) -> Table:
    s = payload["serving"]
    table = Table(
        f"Remote serving overhead (targets: >= "
        f"{payload['rps_target']:.0f} rps, p50 overhead <= "
        f"{payload['overhead_target_ms']:.0f} ms)",
        ["metric", "value"],
    )
    table.add("warm reps", s["reps"])
    table.add("in-process p50 ms", round(s["local_p50_ms"], 3))
    table.add("remote p50 ms", round(s["remote_p50_ms"], 3))
    table.add("p50 overhead ms", round(s["overhead_p50_ms"], 3))
    table.add("remote rps", round(s["remote_rps"], 1))
    for tier, r in payload["identity"].items():
        table.add(f"byte identical [{tier}]", r["byte_identical"])
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer reps; identity gated, perf targets not",
    )
    parser.add_argument(
        "--no-json", action="store_true",
        help="skip writing BENCH_net.json (exploratory runs)",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark(quick=args.quick)
    save_report("net", render(payload))

    serving = payload["serving"]
    payload["acceptance"] = {
        "remote_rps": round(serving["remote_rps"], 1),
        "rps_target": RPS_TARGET,
        "overhead_p50_ms": round(serving["overhead_p50_ms"], 3),
        "overhead_target_ms": OVERHEAD_TARGET_MS,
        "perf_targets_apply": not args.quick,
        "all_byte_identical": payload["all_byte_identical"],
    }
    if not args.no_json:
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {BENCH_JSON}")

    ok = payload["all_byte_identical"]
    if not args.quick:
        ok = ok and serving["remote_rps"] >= RPS_TARGET
        ok = ok and serving["overhead_p50_ms"] <= OVERHEAD_TARGET_MS
    print("\nacceptance:", json.dumps(payload["acceptance"],
                                      indent=2))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
