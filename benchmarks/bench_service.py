"""Machine-room serving benchmark: cold vs. warm throughput.

The service layer exists because a simulator's real traffic is
thousands of near-duplicate configuration runs: the same
``(config, workload, tier, seed)`` cell resubmitted by every bench,
fuzz campaign, and user.  This bench measures what the
content-addressed cache buys on that traffic and proves the safety
property that makes it usable at all:

* **Cold pass** — a mixed batch (CP programs, event schedules, Occam
  pipelines, vector workloads, a golden workload) submitted to a
  fresh cache; every job simulates.  Duplicate submissions inside the
  batch exercise in-flight coalescing.
* **Warm pass** — the identical batch against the now-populated
  store, through a *new* service instance (so even the memory LRU is
  cold and hits come off disk); no job simulates.
* **Identity gate** — the warm payloads must be byte-identical
  (canonical JSON) to the cold pass's fresh simulations, per job, on
  every kernel tier (reference / fast / turbo).

* **Journal overhead** — the same cold pass with a write-ahead job
  journal attached (every SUBMIT/START/DONE fsynced) must stay within
  10% of the no-journal cold wall: durability is priced per job, and
  the price must be negligible against real simulation work.

Acceptance (full mode): warm ≥ 10x faster than cold on every tier,
every warm job served from cache, every payload byte-identical, and
the journaled cold pass ≤ 1.10x the plain cold pass.

Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py          # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick  # smoke
"""

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis import Table, service_stats
from repro.events.engine import KERNEL_TIERS
from repro.service import (
    JobSpec,
    ResultCache,
    SimulationService,
    canonical_json,
)

from _util import save_report

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_service.json"

WARM_SPEEDUP_TARGET = 10.0
#: Journaled cold pass must cost at most this multiple of the plain
#: cold pass (the fsync-per-chunk price of durability).
JOURNAL_OVERHEAD_TARGET = 1.10


def _batch(quick: bool) -> list:
    """The mixed workload batch (kind, spec) — scaled so a cold pass
    is real simulation work, not harness overhead."""
    # Weighted toward compute-heavy, small-payload work (the Occam
    # interpreter and the CP loop): warm cost scales with payload
    # bytes (read + checksum), cold cost with simulated work, so this
    # mix is what a cache actually serves well.  The vector job keeps
    # a deliberately fat payload in the mix to price the checksum.
    loops = 40 if quick else 300
    n = 500 if quick else 2000
    reps = 50 if quick else 8000
    jobs = [
        ("cp", {"kind": "cp", "units": [
            {"t": "arith", "ops": [["ldc", 123456], ["adc", -7],
                                   ["dup"], ["gt"], ["mint"], ["not"]]},
            {"t": "loop", "count": loops,
             "body": [["ldc", 3], ["adc", 4], ["stl", 7], ["ldl", 7]]},
            {"t": "patchpad",
             "pad": [[0x4, 1], [0x8, 2], [0x4, 3], [0xC, 4]],
             "reps": 4},
        ], "patches": [{"after": 40, "offset": 1, "byte": 0x45}]}),
        ("events", {"kind": "events", "channels": 2, "stores": [[2]],
                    "resources": [[1]],
                    "procs": [
                        [["timeout", 5], ["put", 0, 42],
                         ["sput", 0, 7], ["hold", 0, 25],
                         ["put", 1, -3]],
                        [["get", 0], ["timeout", 0.5], ["get", 1],
                         ["sget", 0], ["refire"]],
                        [["timeout", 12.25], ["hold", 0, 10],
                         ["spawn", 8, 4], ["sput", 0, 99]],
                    ],
                    "interrupts": []}),
        ("occam", {"kind": "occam", "program": ["seq", [
            ["assign", "acc", ["num", 0]],
            ["repseq", "i", 0, reps,
             ["assign", "acc",
              ["add", ["var", "acc"], ["var", "i"]]]],
        ]]}),
        ("vector", {"kind": "vector", "ops": [
            {"form": "VADD", "n": n, "precision": 64, "seed": 7,
             "scalars": [], "specials": False},
            {"form": "DOT", "n": n, "precision": 64, "seed": 9,
             "scalars": [], "specials": False},
            {"form": "SAXPY", "n": n, "precision": 32, "seed": 10,
             "scalars": [-1.25], "specials": True},
        ]}),
        ("golden", {"name": "node_gather_scatter"}),
        ("vector", {"kind": "vector", "ops": [
            {"form": "SUM", "n": n, "precision": 64, "seed": 11,
             "scalars": [], "specials": True},
        ]}),
    ]
    return jobs


def _submit_all(service, jobs, tier):
    futures = [
        service.submit(JobSpec(kind=kind, spec=spec, tier=tier))
        for kind, spec in jobs
    ]
    # Resubmit the first two jobs: identical keys must coalesce (cold)
    # or answer from cache (warm), never simulate twice.
    for kind, spec in jobs[:2]:
        futures.append(
            service.submit(JobSpec(kind=kind, spec=spec, tier=tier))
        )
    service.drain()
    return futures


def _canonical_payloads(futures) -> str:
    return canonical_json([f.result() for f in futures])


def run_tier(tier: str, jobs, cache_root: str) -> dict:
    cold_service = SimulationService(cache=ResultCache(root=cache_root))
    t0 = time.perf_counter()
    cold_futures = _submit_all(cold_service, jobs, tier)
    cold_wall = time.perf_counter() - t0
    cold_stats = service_stats(cold_service)

    # A fresh service instance: the memory LRU starts empty, so warm
    # hits prove the on-disk store, not a dict lookup.
    warm_service = SimulationService(cache=ResultCache(root=cache_root))
    t0 = time.perf_counter()
    warm_futures = _submit_all(warm_service, jobs, tier)
    warm_wall = time.perf_counter() - t0
    warm_stats = service_stats(warm_service)

    return {
        "tier": tier,
        "jobs": len(jobs),
        "submissions": len(cold_futures),
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "warm_speedup": cold_wall / warm_wall,
        "cold_executed": cold_stats["executed"],
        "cold_coalesced": cold_stats["coalesced"],
        "warm_cache_hits": warm_stats["cache_hits"],
        "warm_executed": warm_stats["executed"],
        "all_warm_cached": all(
            f.status == "cached" for f in warm_futures
        ),
        "byte_identical": (
            _canonical_payloads(cold_futures)
            == _canonical_payloads(warm_futures)
        ),
    }


def run_journal_overhead(jobs, tier: str = "turbo",
                         repeats: int = 3) -> dict:
    """Cold-pass wall with and without the write-ahead journal.

    Best-of-``repeats`` on each side so one scheduler hiccup cannot
    fail the gate; fresh cache and journal directories per run so
    every pass is genuinely cold.
    """
    walls = {"plain": [], "journal": []}
    for mode in ("plain", "journal"):
        for _ in range(repeats):
            root = tempfile.mkdtemp(prefix="repro-service-jrnl-")
            try:
                service = SimulationService(
                    cache=ResultCache(
                        root=str(pathlib.Path(root) / "cache")),
                    journal_dir=(str(pathlib.Path(root) / "journal")
                                 if mode == "journal" else None),
                )
                t0 = time.perf_counter()
                _submit_all(service, jobs, tier)
                walls[mode].append(time.perf_counter() - t0)
            finally:
                shutil.rmtree(root, ignore_errors=True)
    plain = min(walls["plain"])
    journaled = min(walls["journal"])
    return {
        "tier": tier,
        "plain_cold_s": plain,
        "journaled_cold_s": journaled,
        "overhead_ratio": journaled / plain,
        "target_ratio": JOURNAL_OVERHEAD_TARGET,
        "within_target": (journaled / plain
                          <= JOURNAL_OVERHEAD_TARGET),
    }


def run_benchmark(quick: bool = False) -> dict:
    jobs = _batch(quick)
    tiers = {}
    cache_root = tempfile.mkdtemp(prefix="repro-service-bench-")
    try:
        for tier in KERNEL_TIERS:
            tiers[tier] = run_tier(tier, jobs, cache_root)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
    journal = run_journal_overhead(jobs)
    return {
        "journal_overhead": journal,
        "benchmark": "service",
        "quick": quick,
        "warm_speedup_target": WARM_SPEEDUP_TARGET,
        "tiers": tiers,
        "min_warm_speedup": min(
            t["warm_speedup"] for t in tiers.values()
        ),
        "all_byte_identical": all(
            t["byte_identical"] for t in tiers.values()
        ),
        "all_warm_cached": all(
            t["all_warm_cached"] for t in tiers.values()
        ),
        "coalescing_observed": all(
            t["cold_coalesced"] == 2 and
            t["cold_executed"] == t["jobs"]
            for t in tiers.values()
        ),
    }


def render(payload: dict) -> Table:
    table = Table(
        "Service cold vs. warm throughput "
        f"(target >= {payload['warm_speedup_target']}x warm)",
        ["tier", "jobs", "cold s", "warm s", "speedup",
         "warm cached", "byte identical"],
    )
    for tier, r in payload["tiers"].items():
        table.add(tier, r["jobs"],
                  round(r["cold_wall_s"], 4),
                  round(r["warm_wall_s"], 4),
                  round(r["warm_speedup"], 2),
                  r["all_warm_cached"], r["byte_identical"])
    j = payload["journal_overhead"]
    table.add(f"{j['tier']}+journal", "-",
              round(j["journaled_cold_s"], 4), "-",
              f"{round(j['overhead_ratio'], 3)}x cold",
              "-", j["within_target"])
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small batch; identity gated, speedup target not",
    )
    parser.add_argument(
        "--no-json", action="store_true",
        help="skip writing BENCH_service.json (exploratory runs)",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark(quick=args.quick)
    save_report("service", render(payload))

    payload["acceptance"] = {
        "min_warm_speedup": round(payload["min_warm_speedup"], 2),
        "warm_speedup_target": WARM_SPEEDUP_TARGET,
        "speedup_target_applies": not args.quick,
        "all_byte_identical": payload["all_byte_identical"],
        "all_warm_cached": payload["all_warm_cached"],
        "coalescing_observed": payload["coalescing_observed"],
        "journal_overhead_ratio": round(
            payload["journal_overhead"]["overhead_ratio"], 3),
        "journal_overhead_target": JOURNAL_OVERHEAD_TARGET,
        "journal_overhead_ok": (
            payload["journal_overhead"]["within_target"]),
    }
    if not args.no_json:
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {BENCH_JSON}")

    ok = (payload["all_byte_identical"] and payload["all_warm_cached"]
          and payload["coalescing_observed"])
    if not args.quick:
        ok = ok and payload["min_warm_speedup"] >= WARM_SPEEDUP_TARGET
        ok = ok and payload["journal_overhead"]["within_target"]
    print("\nacceptance:", json.dumps(payload["acceptance"], indent=2))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
