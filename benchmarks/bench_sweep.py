"""Sweep-throughput benchmark for the parallel runner.

Every other bench measures the simulated machine; this one measures
the sweep *harness*: how fast :func:`repro.parallel.run_cells` gets
through the repo's embarrassingly parallel sweeps, and — the property
the subsystem exists for — that the parallel merge is byte-identical
to the serial run.

Three sweeps are timed, serial (``jobs=1``) against a worker pool:

* ``e8_configurations`` — the configuration-table cells (tiny cells;
  pool overhead dominates, reported honestly);
* ``a2_link_sweep`` — the link-speed ablation cells (tiny cells);
* ``e13b_mtbf_interval`` — the fault-tolerance campaign (25 whole
  checkpointed machine runs, the sweep that dominates CI wall time
  and the one parallelism is for).

For each sweep the merged values from both runs are serialised to
canonical JSON and compared byte-for-byte; any difference fails the
bench regardless of host.  The wall-clock speedup target (3x) applies
only on hosts with >= 4 CPUs — a single-core container cannot speed
up by adding workers, so ``host_cpus`` is recorded and the target is
gated on it rather than faked.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_sweep.py            # full
    PYTHONPATH=src python benchmarks/bench_sweep.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_sweep.py --jobs 8
"""

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis import Table, sweep_timing_table
from repro.parallel import run_cells

from _util import save_report

import bench_a2_link_sweep
import bench_e8_configurations
import bench_e13_fault_tolerance

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_sweep.json"


def _sweeps(quick: bool):
    e13_cells = bench_e13_fault_tolerance.campaign_cells()
    if quick:
        e13_cells = e13_cells[:5]
    return [
        ("e8_configurations", bench_e8_configurations.config_cell,
         list(bench_e8_configurations.CONFIG_CELLS)),
        ("a2_link_sweep", bench_a2_link_sweep.sweep_cell,
         list(bench_a2_link_sweep.FACTORS)),
        ("e13b_mtbf_interval", bench_e13_fault_tolerance.campaign_cell,
         e13_cells),
    ]


def _canonical(values) -> str:
    """The byte-comparison form of a merged sweep result."""
    return json.dumps(values, sort_keys=True, separators=(",", ":"))


def _timed_sweep(run_one, cells, jobs: int):
    t0 = time.perf_counter()
    sweep = run_cells(run_one, cells, jobs=jobs)
    wall = time.perf_counter() - t0
    return sweep, wall


def run_benchmark(jobs: int, quick: bool = False) -> dict:
    results = {}
    serial_total = 0.0
    parallel_total = 0.0
    all_identical = True
    for name, run_one, cells in _sweeps(quick):
        serial, serial_wall = _timed_sweep(run_one, cells, jobs=1)
        parallel, parallel_wall = _timed_sweep(run_one, cells, jobs=jobs)
        identical = (
            _canonical(serial.values()) == _canonical(parallel.values())
        )
        all_identical &= identical
        serial_total += serial_wall
        parallel_total += parallel_wall
        results[name] = {
            "cells": len(cells),
            "serial_wall_s": serial_wall,
            "parallel_wall_s": parallel_wall,
            "wall_speedup": serial_wall / parallel_wall,
            "cell_wall_s_total": sum(serial.timings()),
            "workers_used": parallel.jobs,
            "merged_identical": identical,
            # Per-cell wall-clock roll-up (CellResult timings) —
            # diagnostic only, never part of the merged payload.
            "timing_summary": parallel.timing_summary(),
        }
    return {
        "benchmark": "sweep",
        "quick": quick,
        "jobs": jobs,
        "host_cpus": os.cpu_count() or 1,
        "sweeps": results,
        "serial_total_s": serial_total,
        "parallel_total_s": parallel_total,
        "total_speedup": serial_total / parallel_total,
        "all_merged_identical": all_identical,
    }


def render(payload: dict) -> Table:
    table = Table(
        f"Sweep throughput: {payload['jobs']} workers vs serial "
        f"(host has {payload['host_cpus']} CPUs)",
        ["sweep", "cells", "serial s", "parallel s", "speedup",
         "merged identical"],
    )
    for name, r in payload["sweeps"].items():
        table.add(
            name, r["cells"],
            round(r["serial_wall_s"], 4),
            round(r["parallel_wall_s"], 4),
            round(r["wall_speedup"], 2),
            r["merged_identical"],
        )
    table.add(
        "TOTAL", sum(r["cells"] for r in payload["sweeps"].values()),
        round(payload["serial_total_s"], 4),
        round(payload["parallel_total_s"], 4),
        round(payload["total_speedup"], 2),
        payload["all_merged_identical"],
    )
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", default=None,
        help="worker count for the parallel leg (default: one per CPU, "
        "minimum 4 so the determinism check always exercises a real "
        "pool)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="trim the E13b campaign (CI smoke run)",
    )
    parser.add_argument(
        "--no-json", action="store_true",
        help="skip writing BENCH_sweep.json (exploratory runs)",
    )
    args = parser.parse_args(argv)
    if args.jobs is None:
        jobs = max(4, os.cpu_count() or 1)
    else:
        jobs = max(1, int(args.jobs))

    payload = run_benchmark(jobs, quick=args.quick)
    timing_tables = [
        sweep_timing_table(r["timing_summary"],
                           f"Per-cell wall clock — {name} "
                           f"(parallel leg)")
        for name, r in payload["sweeps"].items()
    ]
    save_report("sweep", render(payload), *timing_tables)

    # The speedup target only binds where the hardware can deliver it:
    # >= 4 workers with >= 4 CPUs to run them on.  Byte-identical
    # merges are gated unconditionally — that is the contract.
    target_applies = (
        not args.quick and jobs >= 4 and payload["host_cpus"] >= 4
    )
    payload["acceptance"] = {
        "total_speedup": round(payload["total_speedup"], 2),
        "speedup_target": 3.0,
        "speedup_target_applies": target_applies,
        "all_merged_identical": payload["all_merged_identical"],
    }
    if not args.no_json:
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {BENCH_JSON}")

    ok = payload["all_merged_identical"]
    if target_applies:
        ok = ok and payload["total_speedup"] >= 3.0
    print("\nacceptance:", json.dumps(payload["acceptance"], indent=2))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
