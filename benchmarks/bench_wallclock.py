"""Wall-clock benchmark harness for the simulator itself.

Every other bench in this directory measures *simulated* time — this
one measures how fast the simulator produces it, in events/second and
wall seconds, for three representative workloads:

* ``engine_microbench`` — pure event-kernel churn: channel rendezvous
  ping-pong (zero-delay URGENT traffic, the fast lane's home turf),
  resource contention, and heap timeouts;
* ``e12_matmul`` — the distributed matmul application workload
  (vector forms, collectives, DMA, link wires) from bench E12;
* ``e15_dma_contention`` — the E15 hub under saturating link DMA
  traffic in both directions (Store/Resource heavy).

Each workload runs twice: once on the optimized kernel and once with
``REPRO_SLOW_KERNEL=1`` — the pure-heap, shim-allocating,
re-decoding reference path, i.e. the pre-optimization simulator.  The
harness asserts that both report **identical simulated time** (the
cycle-exactness contract) and records the wall-clock ratio.

Results go to ``benchmarks/reports/wallclock.txt``/``.json`` like any
other bench, plus the top-level ``BENCH_wallclock.json`` that tracks
the perf trajectory PR over PR.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_wallclock.py          # full
    PYTHONPATH=src python benchmarks/bench_wallclock.py --quick  # CI smoke
"""

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import numpy as np

from repro.analysis import Table, engine_stats
from repro.core import PAPER_SPECS, ProcessorNode, TSeriesMachine
from repro.events import Engine
from repro.events.channel import Channel
from repro.events.resources import Resource, hold
from repro.links.fabric import connect

from _util import save_report

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_wallclock.json"


# -- workloads ----------------------------------------------------------


def engine_microbench(scale: int):
    """Kernel-only churn, weighted toward the traffic the fast lane
    exists for: process spawn/teardown, resumptions on already-fired
    events, channel rendezvous, resource grants, and a leavening of
    heap timeouts.  Returns (engine, signature)."""
    eng = Engine()
    rounds = 400 * scale
    port = Resource(eng, capacity=1, name="port")
    log = {"rendezvous": 0, "holds": 0, "spawned": 0, "revisits": 0}

    def pinger(ping, pong):
        for i in range(rounds):
            yield ping.put(i)
            yield pong.get()
            if not i & 7:
                yield eng.timeout(1)

    def ponger(ping, pong):
        for _ in range(rounds):
            yield ping.get()
            yield pong.put(None)
            log["rendezvous"] += 1

    def contender(k):
        for _ in range(rounds // 4):
            yield from hold(eng, port, 5 + (k % 3))
            log["holds"] += 1

    def child(i):
        if i & 1:
            yield eng.timeout(0)
        return i & 3

    def spawner():
        # Spawn/teardown churn: Initialize + completion are both
        # zero-delay URGENT events.
        total = 0
        for i in range(rounds):
            total += yield eng.process(child(i))
        log["spawned"] += total

    def revisitor(fired):
        # Yielding an already-processed event exercises the resume
        # record path (a shim Event per visit on the reference kernel).
        count = 0
        for _ in range(8 * rounds):
            count += (yield fired) is None
        log["revisits"] += count

    fired = eng.event().succeed()
    for p in range(4):
        ping = Channel(eng, name=f"ping{p}")
        pong = Channel(eng, name=f"pong{p}")
        eng.process(pinger(ping, pong))
        eng.process(ponger(ping, pong))
    for _ in range(4):
        eng.process(spawner())
        eng.process(revisitor(fired))
    for k in range(4):
        eng.process(contender(k))
    eng.run()
    return eng, (
        eng.now, log["rendezvous"], log["holds"],
        log["spawned"], log["revisits"],
    )


def e12_matmul(scale: int):
    """The E12 application workload: C = A·B across an 8-node cube."""
    from repro.algorithms import distributed_matmul, matmul_reference

    dim = 3 if scale > 1 else 2
    m_rows, k_inner, n_cols = 24 * scale, 24, 32
    rng = np.random.default_rng(7)
    a = rng.standard_normal((m_rows, k_inner))
    b = rng.standard_normal((k_inner, n_cols))
    machine = TSeriesMachine(dim, with_system=False)
    c, elapsed, mflops = distributed_matmul(machine, a, b)
    np.testing.assert_allclose(c, matmul_reference(a, b), rtol=1e-9)
    checksum = float(np.asarray(c, dtype=np.float64).sum())
    return machine.engine, (elapsed, round(checksum, 6))


def e15_dma_contention(scale: int):
    """The E15 hub workload: gathers against saturating link DMA."""
    specs = PAPER_SPECS.replace(dma_memory_traffic=True)
    eng = Engine()
    hub = ProcessorNode(eng, specs, node_id=0)
    peers = [ProcessorNode(eng, specs, node_id=1 + i) for i in range(4)]
    for i, peer in enumerate(peers):
        connect(hub.comm, 4 * i, peer.comm, 0, role="hypercube")
    done = {"elements": 0}

    def cp_side():
        addresses = [64 * i for i in range(100)]
        while True:
            yield from hub.gather(addresses, 0x80000)
            done["elements"] += 100

    def blast_out(slot):
        while True:
            yield from hub.comm.send(slot, "x", 1024)

    def blast_in(peer):
        while True:
            yield from peer.comm.send(0, "y", 1024)

    def drain(slot):
        while True:
            yield from hub.comm.recv(slot)

    eng.process(cp_side())
    for i in range(4):
        eng.process(blast_out(4 * i))
        eng.process(blast_in(peers[i]))
        eng.process(drain(4 * i))
    eng.run(until=1000 * 1000 * scale)
    return eng, (eng.now, done["elements"])


WORKLOADS = [
    ("engine_microbench", engine_microbench),
    ("e12_matmul", e12_matmul),
    ("e15_dma_contention", e15_dma_contention),
]


# -- measurement --------------------------------------------------------


def _timed_run(fn, scale: int) -> dict:
    """One timed run of a workload in the current kernel mode."""
    t0 = time.perf_counter()
    engine, signature = fn(scale)
    wall = time.perf_counter() - t0
    stats = engine_stats(engine)
    return {
        "wall_s": wall,
        "events": stats["events_processed"],
        "events_per_s": stats["events_processed"] / wall,
        "fast_lane_fraction": round(stats["fast_lane_fraction"], 4),
        "sim_ns": engine.now,
        "signature": list(signature),
        "fast_kernel": stats["fast_kernel"],
    }


def _measure_pair(fn, scale: int, repeats: int):
    """Median-of-N baseline/fast pair for one workload.

    Each repeat times the baseline and fast kernels back-to-back, so
    slow drift in the host machine (frequency scaling, noisy
    neighbours) hits both sides of a pair equally; the reported pair
    is the one with the median baseline/fast ratio, which is robust
    against a single lucky or unlucky run on either side.
    """
    # Untimed warm-ups: pay imports and one-time setup here.
    _in_kernel_mode(True, fn, scale)
    _in_kernel_mode(False, fn, scale)
    pairs = []
    for _ in range(repeats):
        baseline = _in_kernel_mode(True, _timed_run, fn, scale)
        fast = _in_kernel_mode(False, _timed_run, fn, scale)
        pairs.append((baseline, fast))
    pairs.sort(key=lambda p: p[0]["wall_s"] / p[1]["wall_s"])
    return pairs[len(pairs) // 2]


def _in_kernel_mode(slow: bool, fn, *args):
    """Run ``fn`` with the kernel mode forced via REPRO_SLOW_KERNEL."""
    saved = os.environ.get("REPRO_SLOW_KERNEL")
    if slow:
        os.environ["REPRO_SLOW_KERNEL"] = "1"
    else:
        os.environ.pop("REPRO_SLOW_KERNEL", None)
    try:
        return fn(*args)
    finally:
        if saved is None:
            os.environ.pop("REPRO_SLOW_KERNEL", None)
        else:
            os.environ["REPRO_SLOW_KERNEL"] = saved


def run_benchmark(quick: bool = False) -> dict:
    scale = 1 if quick else 4
    repeats = 1 if quick else 5
    results = {}
    for name, fn in WORKLOADS:
        baseline, fast = _measure_pair(fn, scale, repeats)
        if baseline["signature"] != fast["signature"]:
            raise AssertionError(
                f"{name}: simulated results diverge between kernels: "
                f"{baseline['signature']} vs {fast['signature']}"
            )
        results[name] = {
            "baseline": baseline,
            "fast": fast,
            "wall_speedup": baseline["wall_s"] / fast["wall_s"],
            "events_per_s_speedup": (
                fast["events_per_s"] / baseline["events_per_s"]
            ),
            "sim_time_identical": baseline["sim_ns"] == fast["sim_ns"],
        }
    return {
        "benchmark": "wallclock",
        "quick": quick,
        "scale": scale,
        "repeats": repeats,
        "workloads": results,
    }


def render(payload: dict) -> Table:
    table = Table(
        "Simulator wall-clock: fast kernel vs REPRO_SLOW_KERNEL baseline",
        ["workload", "baseline s", "fast s", "wall speedup",
         "fast events/s", "events/s speedup", "sim time identical"],
    )
    for name, r in payload["workloads"].items():
        table.add(
            name,
            round(r["baseline"]["wall_s"], 4),
            round(r["fast"]["wall_s"], 4),
            round(r["wall_speedup"], 2),
            round(r["fast"]["events_per_s"]),
            round(r["events_per_s_speedup"], 2),
            r["sim_time_identical"],
        )
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem sizes, single repeat (CI smoke run)",
    )
    parser.add_argument(
        "--no-json", action="store_true",
        help="skip writing BENCH_wallclock.json (exploratory runs)",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark(quick=args.quick)
    save_report("wallclock", render(payload))

    micro = payload["workloads"]["engine_microbench"]
    matmul = payload["workloads"]["e12_matmul"]
    payload["acceptance"] = {
        "microbench_events_per_s_speedup": round(
            micro["events_per_s_speedup"], 2
        ),
        "microbench_target": 2.0,
        "matmul_wall_speedup": round(matmul["wall_speedup"], 2),
        "matmul_target": 1.5,
        "all_sim_times_identical": all(
            r["sim_time_identical"] for r in payload["workloads"].values()
        ),
    }
    if not args.no_json:
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {BENCH_JSON}")

    ok = payload["acceptance"]["all_sim_times_identical"]
    if not args.quick:
        ok = ok and (
            payload["acceptance"]["microbench_events_per_s_speedup"]
            >= payload["acceptance"]["microbench_target"]
        ) and (
            payload["acceptance"]["matmul_wall_speedup"]
            >= payload["acceptance"]["matmul_target"]
        )
    print(
        "\nacceptance:",
        json.dumps(payload["acceptance"], indent=2),
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
