"""Wall-clock benchmark harness for the simulator itself.

Every other bench in this directory measures *simulated* time — this
one measures how fast the simulator produces it, in events/second and
wall seconds, for three representative workloads:

* ``engine_microbench`` — pure event-kernel churn in two phases.  The
  concurrent phase is the traffic the fast lane exists for: channel
  rendezvous ping-pong, spawn/teardown, resumptions on already-fired
  events, resource contention, heap timeouts.  The sequential phase is
  the traffic the turbo trampoline exists for: one process draining a
  recorded dependency chain — the shape of a per-node CP program,
  which is how the paper's machine actually runs (one sequential
  program per node);
* ``engine_microbench_flood`` — the engine microbench's companion for
  the traffic the vector tier's columnar core exists for: a
  design-space sweep's worth of independent pre-scheduled timers
  drained in time order — pure priority-queue churn with a six-figure
  pending set and no rendezvous traffic at all;
* ``e12_matmul`` — the distributed matmul application workload
  (vector forms, collectives, DMA, link wires) from bench E12;
* ``e15_dma_contention`` — the E15 hub under saturating link DMA
  traffic in both directions (Store/Resource heavy).

Each workload runs on all four kernel tiers — ``reference`` (pure
heap, shim-allocating, re-decoding: the pre-optimization simulator),
``fast`` (URGENT fast lane, decoded-instruction cache), ``turbo``
(resume trampolining, nlane, block translation), and ``vector``
(columnar SoA event queue, batched vector forms) — interleaved
round-robin so host noise hits every tier alike, keeping the best
(minimum-wall) run per tier: the standard estimator for a
deterministic workload under noisy timing.  The harness asserts that
all tiers report **identical simulated results** (the cycle-exactness
contract) and records the wall-clock ratios against reference — every
tier's run carries its own ``*_vs_reference`` speedup fields, so
readers never re-derive them.

Results go to ``benchmarks/reports/wallclock.txt``/``.json`` like any
other bench, plus the top-level ``BENCH_wallclock.json`` that tracks
the perf trajectory PR over PR.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_wallclock.py          # full
    PYTHONPATH=src python benchmarks/bench_wallclock.py --quick  # CI smoke
"""

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import numpy as np

from repro.analysis import Table, engine_stats
from repro.core import PAPER_SPECS, ProcessorNode, TSeriesMachine
from repro.events import Engine
from repro.events.channel import Channel
from repro.events.engine import KERNEL_TIERS, force_kernel
from repro.events.resources import Resource, hold
from repro.links.fabric import connect

from _util import save_report

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_wallclock.json"


# -- workloads ----------------------------------------------------------


def engine_microbench(scale: int):
    """Kernel-only churn in two phases.

    Phase 1 (concurrent soup) is weighted toward the traffic the fast
    lane exists for: process spawn/teardown, resumptions on
    already-fired events, channel rendezvous, resource grants, and a
    leavening of heap timeouts.  Phase 2 (sequential replay) is the
    traffic the turbo trampoline exists for: a single process draining
    a recorded pool of fired dependencies back-to-back — the shape of
    a per-node CP program, which is how the paper's machine runs (one
    sequential control program per node).  Returns (engine, signature).
    """
    eng = Engine()
    rounds = 400 * scale
    port = Resource(eng, capacity=1, name="port")
    log = {"rendezvous": 0, "holds": 0, "spawned": 0, "revisits": 0,
           "replayed": 0}

    def pinger(ping, pong):
        for i in range(rounds):
            yield ping.put(i)
            yield pong.get()
            if not i & 7:
                yield eng.timeout(1)

    def ponger(ping, pong):
        for _ in range(rounds):
            yield ping.get()
            yield pong.put(None)
            log["rendezvous"] += 1

    def contender(k):
        for _ in range(rounds // 4):
            yield from hold(eng, port, 5 + (k % 3))
            log["holds"] += 1

    def child(i):
        if i & 1:
            yield eng.timeout(0)
        return i & 3

    def spawner():
        # Spawn/teardown churn: Initialize + completion are both
        # zero-delay URGENT events.
        total = 0
        for i in range(rounds):
            total += yield eng.process(child(i))
        log["spawned"] += total

    def revisitor(fired):
        # Yielding an already-processed event exercises the resume
        # record path (a shim Event per visit on the reference kernel).
        count = 0
        for _ in range(8 * rounds):
            count += (yield fired) is None
        log["revisits"] += count

    fired = eng.event().succeed()
    for p in range(4):
        ping = Channel(eng, name=f"ping{p}")
        pong = Channel(eng, name=f"pong{p}")
        eng.process(pinger(ping, pong))
        eng.process(ponger(ping, pong))
    for _ in range(4):
        eng.process(spawner())
        eng.process(revisitor(fired))
    for k in range(4):
        eng.process(contender(k))
    eng.run()

    # Phase 2: sequential replay.  One solo process walks a pool of
    # already-fired events, the dependency-chain shape a translated
    # CP basic block produces at run time.
    pool = [eng.event().succeed(i) for i in range(8)]

    def replayer():
        hits = 0
        for i in range(96 * rounds):
            hits += (yield pool[(i >> 4) & 7]) is not None
        log["replayed"] += hits

    eng.process(replayer())
    eng.run()
    return eng, (
        eng.now, log["rendezvous"], log["holds"],
        log["spawned"], log["revisits"], log["replayed"],
    )


def engine_microbench_flood(scale: int):
    """Timer flood: the columnar core's headline workload.

    Independent timers with scattered delays — per-node clocks,
    refresh ticks, watchdogs across a whole configuration-table sweep
    — scheduled up front, then drained in time order.  The
    multiplicative hash scatters delays so the queue really has to
    sort; nothing waits on the ticks, so the workload measures raw
    queue insert/extract throughput with a pending set in the
    hundreds of thousands.  The heap tiers pay a tuple heappush and
    O(log n) tuple-compare heappop per tick; the vector tier stages
    list appends, sorts the whole batch once at C speed, and streams
    the run out through the no-callback drain.  Returns
    (engine, signature).
    """
    eng = Engine()
    ticks = 100_000 * scale
    timeout = eng.timeout
    for i in range(ticks):
        timeout(((i * 2654435761) >> 7) % 65536 + 1)
    eng.run()
    return eng, (eng.now, ticks)


def e12_matmul(scale: int):
    """The E12 application workload: C = A·B across an 8-node cube."""
    from repro.algorithms import distributed_matmul, matmul_reference

    dim = 3 if scale > 1 else 2
    m_rows, k_inner, n_cols = 24 * scale, 24, 32
    rng = np.random.default_rng(7)
    a = rng.standard_normal((m_rows, k_inner))
    b = rng.standard_normal((k_inner, n_cols))
    machine = TSeriesMachine(dim, with_system=False)
    c, elapsed, mflops = distributed_matmul(machine, a, b)
    np.testing.assert_allclose(c, matmul_reference(a, b), rtol=1e-9)
    checksum = float(np.asarray(c, dtype=np.float64).sum())
    return machine.engine, (elapsed, round(checksum, 6))


def e15_dma_contention(scale: int):
    """The E15 hub workload: gathers against saturating link DMA."""
    specs = PAPER_SPECS.replace(dma_memory_traffic=True)
    eng = Engine()
    hub = ProcessorNode(eng, specs, node_id=0)
    peers = [ProcessorNode(eng, specs, node_id=1 + i) for i in range(4)]
    for i, peer in enumerate(peers):
        connect(hub.comm, 4 * i, peer.comm, 0, role="hypercube")
    done = {"elements": 0}

    def cp_side():
        addresses = [64 * i for i in range(100)]
        while True:
            yield from hub.gather(addresses, 0x80000)
            done["elements"] += 100

    def blast_out(slot):
        while True:
            yield from hub.comm.send(slot, "x", 1024)

    def blast_in(peer):
        while True:
            yield from peer.comm.send(0, "y", 1024)

    def drain(slot):
        while True:
            yield from hub.comm.recv(slot)

    eng.process(cp_side())
    for i in range(4):
        eng.process(blast_out(4 * i))
        eng.process(blast_in(peers[i]))
        eng.process(drain(4 * i))
    eng.run(until=1000 * 1000 * scale)
    return eng, (eng.now, done["elements"])


WORKLOADS = [
    ("engine_microbench", engine_microbench),
    ("engine_microbench_flood", engine_microbench_flood),
    ("e12_matmul", e12_matmul),
    ("e15_dma_contention", e15_dma_contention),
]


# -- Occam optimizer + AOT ----------------------------------------------


def _occam_bench_program(loops: int, messages: int):
    """A representative CP program for the optimizer bench: a
    constant-foldable accumulator, a spill-heavy polynomial (workspace
    reallocation fodder), and a producer/consumer PAR whose child-side
    OUT is fusable to ``outword``."""
    from repro.occam.compiler import (
        Add, Assign, In, Mul, Num, Out, Par, Seq, Sub, Var, While,
    )

    step = Add(Mul(Num(6), Num(7)), Num(-41))  # folds to ldc 1
    poly = Sub(Mul(Add(Var("x"), Num(1)), Sub(Var("x"), Num(1))),
               Mul(Var("x"), Var("x")))        # spills; always -1
    return Seq([
        Assign("x", Num(9)),
        Assign("acc", Num(0)),
        Assign("k", Num(loops)),
        While(Var("k"), Seq([
            Assign("acc", Add(Var("acc"), step)),
            Assign("tmp", poly),
            Assign("k", Sub(Var("k"), Num(1))),
        ])),
        Par([
            Seq([
                Assign("got", Num(0)),
                Assign("i", Num(messages)),
                While(Var("i"), Seq([
                    In("pipe", "v"),
                    Assign("got", Add(Var("got"), Var("v"))),
                    Assign("i", Sub(Var("i"), Num(1))),
                ])),
            ]),
            Seq([
                Assign("j", Num(messages)),
                While(Var("j"), Seq([
                    Out("pipe", step),
                    Assign("j", Sub(Var("j"), Num(1))),
                ])),
            ]),
        ]),
    ])


def occam_optimizer_bench(quick: bool) -> dict:
    """Measure the Occam optimizer and the AOT block tables.

    Compiles one program at -O0 and -O2, runs both on the turbo tier,
    and asserts bit-identical final variables while recording the
    static (instructions, bytes) and dynamic (simulated instructions,
    cycles, wall) deltas.  Then times a cold turbo start (runtime
    block translation) against an AOT warm start from an on-disk
    artifact, asserting the warm run never invokes the translator and
    reaches an identical architectural snapshot.
    """
    import tempfile

    from repro.cp.assembler import assemble
    from repro.cp.cpu import CPU
    from repro.occam import aot
    from repro.occam.compiler import OccamCompiler, read_variable

    loops = 150 if quick else 1500
    messages = 60 if quick else 600
    repeats = 1 if quick else 5
    max_steps = 20_000_000
    program = _occam_bench_program(loops, messages)

    compilers = {0: OccamCompiler(), 2: OccamCompiler(opt_level=2)}
    codes = {
        level: assemble(compiler.compile(program)).code
        for level, compiler in compilers.items()
    }

    def timed_run(code, warm_dir=None):
        with force_kernel(tier="turbo"):
            cpu = CPU(code)
            if warm_dir is not None:
                aot.warm_start(cpu, warm_dir)
            t0 = time.perf_counter()
            cpu.run(max_steps=max_steps)
            wall = time.perf_counter() - t0
        return cpu, wall

    runs = {}
    for level, code in codes.items():
        best = None
        for _ in range(repeats + 1):  # +1 untimed-equivalent warm-up
            cpu, wall = timed_run(code)
            if best is None or wall < best[1]:
                best = (cpu, wall)
        cpu, wall = best
        compiler = compilers[level]
        runs[level] = {
            "wall_s": wall,
            "code_bytes": len(code),
            "sim_instructions": cpu.instructions,
            "sim_cycles": cpu.cycles,
            "variables": {
                name: read_variable(cpu, compiler, name)
                for name in compiler.variables
            },
        }
    if runs[0]["variables"] != runs[2]["variables"]:
        raise AssertionError(
            f"optimized program diverges: {runs[2]['variables']} vs "
            f"{runs[0]['variables']}"
        )
    expected = {"acc": loops, "got": messages}
    for name, value in expected.items():
        if runs[0]["variables"][name] != value:
            raise AssertionError(
                f"bench program wrong: {name}={runs[0]['variables'][name]}"
                f" != {value}"
            )

    # AOT warm start vs cold start, on the optimized code.
    with tempfile.TemporaryDirectory() as aot_dir:
        aot.save_artifact(codes[2], aot_dir)
        cold_best = warm_best = None
        cold_cpu = warm_cpu = None
        for _ in range(repeats + 1):
            cpu, wall = timed_run(codes[2])
            if cold_best is None or wall < cold_best:
                cold_best, cold_cpu = wall, cpu
            cpu, wall = timed_run(codes[2], warm_dir=aot_dir)
            if warm_best is None or wall < warm_best:
                warm_best, warm_cpu = wall, cpu

    if warm_cpu.block_translations != 0:
        raise AssertionError(
            f"warm start translated {warm_cpu.block_translations} blocks"
        )
    if warm_cpu.snapshot_state() != cold_cpu.snapshot_state():
        raise AssertionError("warm-start run diverged from cold run")

    report = compilers[2].opt_report
    return {
        "program": {"loops": loops, "messages": messages},
        "opt_report": report,
        "o0": {k: v for k, v in runs[0].items() if k != "variables"},
        "o2": {k: v for k, v in runs[2].items() if k != "variables"},
        "variables_identical": True,
        "static_instruction_ratio": round(
            report["instructions_before"] / report["instructions_after"],
            4,
        ),
        "code_bytes_ratio": round(
            runs[0]["code_bytes"] / runs[2]["code_bytes"], 4
        ),
        "sim_instruction_ratio": round(
            runs[0]["sim_instructions"] / runs[2]["sim_instructions"], 4
        ),
        "sim_cycle_ratio": round(
            runs[0]["sim_cycles"] / runs[2]["sim_cycles"], 4
        ),
        "wall_speedup_o2_vs_o0": round(
            runs[0]["wall_s"] / runs[2]["wall_s"], 4
        ),
        "aot": {
            "cold_wall_s": cold_best,
            "warm_wall_s": warm_best,
            "warm_block_translations": warm_cpu.block_translations,
            "warm_block_imports": warm_cpu.block_imports,
            "cold_block_translations": cold_cpu.block_translations,
            "snapshot_identical": True,
        },
    }


# -- measurement --------------------------------------------------------


def _timed_run(fn, scale: int, tier: str) -> dict:
    """One timed run of a workload on one kernel tier."""
    with force_kernel(tier=tier):
        t0 = time.perf_counter()
        engine, signature = fn(scale)
        wall = time.perf_counter() - t0
    stats = engine_stats(engine)
    batch = stats["vau_batch"]
    columnar = stats["columnar"] or {}
    return {
        "wall_s": wall,
        "events": stats["events_processed"],
        "events_per_s": stats["events_processed"] / wall,
        "fast_lane_fraction": round(stats["fast_lane_fraction"], 4),
        "sim_ns": engine.now,
        "signature": list(signature),
        "kernel_tier": tier,
        # Chain-adoption observability: model-layer fused chains tick
        # identically on every tier; staged_pops only on vector.
        "chain_fusion": {
            "vau_chain_model": batch["vau_chain_model"],
            "chain_ops_fused": batch["chain_ops_fused"],
            "staged_pops": columnar.get("staged_pops", 0),
        },
    }


def _measure_tiers(fn, scale: int, repeats: int) -> dict:
    """Min-of-N per kernel tier, interleaved round-robin.

    Each repeat times all four tiers back-to-back, so slow drift in
    the host machine (frequency scaling, noisy neighbours) hits every
    tier alike.  Per tier we keep the minimum-wall run: the workload
    is deterministic, so the fastest observation is the one least
    contaminated by host noise.
    """
    # Untimed warm-ups: pay imports and one-time setup here.
    for tier in KERNEL_TIERS:
        with force_kernel(tier=tier):
            fn(scale)
    best = {}
    for _ in range(repeats):
        for tier in KERNEL_TIERS:
            run = _timed_run(fn, scale, tier)
            if tier not in best or run["wall_s"] < best[tier]["wall_s"]:
                best[tier] = run
    return best


def run_benchmark(quick: bool = False) -> dict:
    scale = 1 if quick else 4
    repeats = 1 if quick else 7
    results = {}
    for name, fn in WORKLOADS:
        runs = _measure_tiers(fn, scale, repeats)
        reference = runs["reference"]
        for tier in KERNEL_TIERS:
            if runs[tier]["signature"] != reference["signature"]:
                raise AssertionError(
                    f"{name}: simulated results diverge between kernels: "
                    f"{tier}={runs[tier]['signature']} vs "
                    f"reference={reference['signature']}"
                )
        # Every tier's run carries its own speedup-vs-reference fields
        # (reference itself reads 1.0), so report readers never have to
        # re-derive ratios from raw walls.
        for tier in KERNEL_TIERS:
            runs[tier]["wall_speedup_vs_reference"] = round(
                reference["wall_s"] / runs[tier]["wall_s"], 4
            )
            runs[tier]["events_per_s_vs_reference"] = round(
                runs[tier]["events_per_s"] / reference["events_per_s"], 4
            )
        entry = dict(runs)
        for tier in KERNEL_TIERS:
            if tier == "reference":
                continue
            entry[f"wall_speedup_{tier}"] = (
                reference["wall_s"] / runs[tier]["wall_s"]
            )
            entry[f"events_per_s_speedup_{tier}"] = (
                runs[tier]["events_per_s"] / reference["events_per_s"]
            )
        entry["sim_time_identical"] = all(
            runs[tier]["sim_ns"] == reference["sim_ns"]
            for tier in KERNEL_TIERS
        )
        entry["events_identical"] = all(
            runs[tier]["events"] == reference["events"]
            for tier in KERNEL_TIERS
        )
        results[name] = entry
    return {
        "benchmark": "wallclock",
        "quick": quick,
        "scale": scale,
        "repeats": repeats,
        "kernel_tiers": list(KERNEL_TIERS),
        "workloads": results,
        "occam_optimizer": occam_optimizer_bench(quick),
    }


def render(payload: dict) -> Table:
    table = Table(
        "Simulator wall-clock: fast/turbo/vector kernel tiers vs reference",
        ["workload", "reference s", "fast s", "turbo s", "vector s",
         "fast x", "turbo x", "vector x", "vector events/s",
         "sim identical"],
    )
    for name, r in payload["workloads"].items():
        table.add(
            name,
            round(r["reference"]["wall_s"], 4),
            round(r["fast"]["wall_s"], 4),
            round(r["turbo"]["wall_s"], 4),
            round(r["vector"]["wall_s"], 4),
            round(r["wall_speedup_fast"], 2),
            round(r["wall_speedup_turbo"], 2),
            round(r["wall_speedup_vector"], 2),
            round(r["vector"]["events_per_s"]),
            r["sim_time_identical"],
        )
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem sizes, single repeat (CI smoke run)",
    )
    parser.add_argument(
        "--no-json", action="store_true",
        help="skip writing BENCH_wallclock.json (exploratory runs)",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark(quick=args.quick)
    save_report("wallclock", render(payload))

    micro = payload["workloads"]["engine_microbench"]
    flood = payload["workloads"]["engine_microbench_flood"]
    matmul = payload["workloads"]["e12_matmul"]
    occam = payload["occam_optimizer"]
    payload["acceptance"] = {
        # Deterministic gates: the optimizer must shrink the program
        # both statically and dynamically with identical results, and
        # an AOT warm start must never invoke the runtime translator.
        "occam_opt_sim_instruction_ratio": occam["sim_instruction_ratio"],
        "occam_opt_sim_instruction_target": 1.05,
        "occam_opt_code_bytes_ratio": occam["code_bytes_ratio"],
        "occam_opt_variables_identical": occam["variables_identical"],
        "occam_aot_warm_translations": (
            occam["aot"]["warm_block_translations"]
        ),
        "occam_aot_snapshot_identical": (
            occam["aot"]["snapshot_identical"]
        ),
        "microbench_events_per_s_speedup": round(
            micro["events_per_s_speedup_turbo"], 2
        ),
        "microbench_target": 3.0,
        "microbench_flood_vector_vs_turbo": round(
            flood["events_per_s_speedup_vector"]
            / flood["events_per_s_speedup_turbo"], 2
        ),
        "microbench_flood_vector_vs_turbo_target": 2.0,
        "matmul_wall_speedup": round(matmul["wall_speedup_turbo"], 2),
        "matmul_target": 2.0,
        "matmul_vector_wall_speedup": round(
            matmul["wall_speedup_vector"], 2
        ),
        "matmul_vector_target": 2.2,
        # The headline gate for the chain pipeline: the vector tier
        # must no longer trail turbo on the application workload.
        "matmul_vector_vs_turbo": round(
            matmul["wall_speedup_vector"] / matmul["wall_speedup_turbo"],
            2,
        ),
        "matmul_vector_vs_turbo_target": 1.0,
        "matmul_chains_fused": (
            matmul["vector"]["chain_fusion"]["vau_chain_model"]
        ),
        "all_sim_times_identical": all(
            r["sim_time_identical"] for r in payload["workloads"].values()
        ),
        "all_event_counts_identical": all(
            r["events_identical"] for r in payload["workloads"].values()
        ),
    }
    if not args.no_json:
        # sort_keys keeps the file byte-stable across runs that produce
        # the same numbers, so perf-trajectory diffs stay clean.
        BENCH_JSON.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"\nwrote {BENCH_JSON}")

    ok = (
        payload["acceptance"]["all_sim_times_identical"]
        and payload["acceptance"]["occam_opt_variables_identical"]
        and payload["acceptance"]["occam_aot_warm_translations"] == 0
        and payload["acceptance"]["occam_aot_snapshot_identical"]
        and (
            payload["acceptance"]["occam_opt_sim_instruction_ratio"]
            >= payload["acceptance"]["occam_opt_sim_instruction_target"]
        )
        and payload["acceptance"]["occam_opt_code_bytes_ratio"] > 1.0
    )
    if not args.quick:
        ok = ok and (
            payload["acceptance"]["microbench_events_per_s_speedup"]
            >= payload["acceptance"]["microbench_target"]
        ) and (
            payload["acceptance"]["microbench_flood_vector_vs_turbo"]
            >= payload["acceptance"][
                "microbench_flood_vector_vs_turbo_target"]
        ) and (
            payload["acceptance"]["matmul_wall_speedup"]
            >= payload["acceptance"]["matmul_target"]
        ) and (
            payload["acceptance"]["matmul_vector_wall_speedup"]
            >= payload["acceptance"]["matmul_vector_target"]
        ) and (
            payload["acceptance"]["matmul_vector_vs_turbo"]
            >= payload["acceptance"]["matmul_vector_vs_turbo_target"]
        )
    print(
        "\nacceptance:",
        json.dumps(payload["acceptance"], indent=2),
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
