"""Benchmark-harness options.

``--no-cache`` disables the machine-room result cache for benches
wired through :mod:`repro.service` (currently E8): every cell
simulates fresh instead of answering from ``.repro-cache/``.  The
same switch is available without pytest as ``REPRO_SERVICE_CACHE=0``.
"""

import os


def pytest_addoption(parser):
    parser.addoption(
        "--no-cache", action="store_true", default=False,
        help="bypass the repro.service result cache (fresh simulation "
        "for every bench cell)",
    )


def pytest_configure(config):
    if config.getoption("--no-cache"):
        os.environ["REPRO_SERVICE_CACHE"] = "0"
