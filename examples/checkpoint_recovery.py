#!/usr/bin/env python
"""Snapshot checkpointing and recovery from a memory fault.

Paper §III: the system disk "records memory snapshots which checkpoint
computations for error recovery"; a snapshot takes ~15 s regardless of
configuration, and ~10 minutes is a good interval.

This example takes a real (simulated) snapshot of a module — every
node's megabyte streamed down the communications thread to the system
board and disk — injects a parity fault, detects it on read, restores
the snapshot, and reprints the interval analysis behind the 10-minute
recommendation.

Run:  python examples/checkpoint_recovery.py
"""

import numpy as np

from repro.analysis import (
    Table,
    interval_sweep,
    mtbf_for_interval,
    seconds,
    young_interval_s,
)
from repro.core import TSeriesMachine
from repro.memory import ParityError
from repro.system import CheckpointService


def main():
    print(__doc__)
    machine = TSeriesMachine(3)       # one module with its system board
    service = CheckpointService(machine)

    # Plant a computation state.
    for node in machine.nodes:
        node.write_floats(0x1000, np.full(32, float(node.node_id)))

    def snapshot(eng):
        elapsed = yield from service.snapshot_all("hourly")
        return elapsed

    elapsed = machine.engine.run(
        until=machine.engine.process(snapshot(machine.engine))
    )
    print(f"snapshot of 8 MB module: {seconds(elapsed):.1f} s "
          "(paper: about 15 s)\n")

    # A memory fault, caught by byte parity.
    victim = machine.nodes[3]
    victim.memory.parity.inject_error(0x1000)
    try:
        victim.read_floats(0x1000, 32)
        raise AssertionError("fault not detected")
    except ParityError as err:
        print(f"fault detected on read: {err}")

    def restore(eng):
        elapsed = yield from service.restore_all("hourly")
        return elapsed

    restore_ns = machine.engine.run(
        until=machine.engine.process(restore(machine.engine))
    )
    recovered = victim.read_floats(0x1000, 32)
    assert (recovered == 3.0).all()
    print(f"restored from disk in {seconds(restore_ns):.1f} s; "
          "node 3 state verified\n")

    # Why 10 minutes: sweep the interval under failure injection.
    mtbf = mtbf_for_interval(15.0, 600.0)
    rows = interval_sweep(100_000, [150, 300, 600, 1200, 2400],
                          15.0, mtbf, seeds=(0, 1))
    table = Table(
        f"Checkpoint overhead vs interval (MTBF {mtbf / 3600:.1f} h)",
        ["interval (s)", "overhead fraction"],
    )
    for interval, overhead in rows:
        table.add(interval, overhead)
    table.show()
    print(f"\nYoung's optimum: {young_interval_s(15.0, mtbf):.0f} s "
          "— the paper's 10 minutes.")


if __name__ == "__main__":
    main()
