#!/usr/bin/env python
"""Distributed FFT on the hypercube's butterfly mapping (Figure 3).

The binary n-cube "can be mapped onto ... even FFT butterfly
connections of radix 2": stage s of a radix-2 FFT pairs element i with
i XOR 2^s, which with elements placed at their own node ids is always
a single-hop exchange.  This example runs a 512-point FFT over a
3-cube, verifies it against NumPy, and shows that every cross-node
butterfly travelled exactly one link — then weighs compute against
communication (the paper's 130-ops rule makes FFT link-bound at this
scale).

Run:  python examples/fft_butterfly.py
"""

import numpy as np

from repro.algorithms import distributed_fft, fft_reference
from repro.analysis import Table
from repro.core import TSeriesMachine
from repro.topology import ButterflyEmbedding, dilation


def main():
    print(__doc__)
    machine = TSeriesMachine(3, with_system=False)
    n = 512
    rng = np.random.default_rng(11)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)

    result, elapsed_ns = distributed_fft(machine, x)
    np.testing.assert_allclose(result, fft_reference(x), atol=1e-8)
    print(f"{n}-point FFT on 8 nodes: verified against numpy.fft.fft")
    print(f"simulated time: {elapsed_ns / 1e6:.3f} ms\n")

    emb = ButterflyEmbedding(len(machine))
    table = Table(
        "Butterfly mapping properties",
        ["property", "value"],
    )
    table.add("cross-node stages (log2 P)", emb.stages)
    table.add("dilation (max hops per exchange)", dilation(emb))
    table.add("local stages (log2 N/P)", int(np.log2(n // 8)))
    table.show()

    flops = machine.total_flops()
    table2 = Table("Compute vs communication", ["quantity", "value"])
    table2.add("total FLOPs", flops)
    table2.add("measured machine MFLOPS", machine.measured_mflops())
    table2.add("note", "link-bound: ~5 flops/word vs the 130 needed")
    table2.show()


if __name__ == "__main__":
    main()
