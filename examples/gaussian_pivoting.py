#!/usr/bin/env python
"""Gaussian elimination with *physical* row pivoting.

The paper's memory section argues for moving data physically — a
vector register loads a whole 1024-byte row in the time of one 32-bit
access — "as for example, in pivoting rows of a matrix".  This example
solves a pivot-heavy linear system twice on a single node: once
swapping pivot rows through the row port (three 400 ns moves) and once
element-by-element through the CP (1.6 µs per element), and reports
the difference the paper predicts.

Run:  python examples/gaussian_pivoting.py
"""

import numpy as np

from repro.algorithms import gauss_solve, solve_reference, swap_cost_model
from repro.analysis import Table
from repro.core import PAPER_SPECS, ProcessorNode
from repro.events import Engine


def solve(a, b, use_row_moves):
    engine = Engine()
    node = ProcessorNode(engine, PAPER_SPECS)
    proc = engine.process(gauss_solve(node, a, b,
                                      use_row_moves=use_row_moves))
    x, stats = engine.run(until=proc)
    return x, stats, engine.now


def main():
    print(__doc__)
    n = 48
    rng = np.random.default_rng(7)
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    a = a[rng.permutation(n)]        # force pivot swaps
    b = rng.standard_normal(n)

    x_fast, stats_fast, total_fast = solve(a, b, use_row_moves=True)
    x_slow, stats_slow, total_slow = solve(a, b, use_row_moves=False)

    np.testing.assert_allclose(x_fast, solve_reference(a, b), rtol=1e-8)
    np.testing.assert_allclose(x_slow, solve_reference(a, b), rtol=1e-8)
    print(f"solved {n}x{n} system, {stats_fast['swaps']} pivot swaps; "
          "both variants verified against numpy.linalg.solve\n")

    table = Table(
        "Pivot-swap strategies (measured)",
        ["strategy", "swap time (us)", "whole solve (us)"],
    )
    table.add("physical row moves (row port)",
              stats_fast["swap_ns"] / 1000, total_fast / 1000)
    table.add("element copies (CP word port)",
              stats_slow["swap_ns"] / 1000, total_slow / 1000)
    table.show()

    model_rows, model_gather = swap_cost_model(PAPER_SPECS, width=n + 1)
    print(f"\nper-swap model: {model_rows} ns via rows vs "
          f"{model_gather} ns via the CP "
          f"({model_gather / model_rows:.0f}x)")


if __name__ == "__main__":
    main()
