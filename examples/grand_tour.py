#!/usr/bin/env python
"""The grand tour: one session on a complete two-module T Series.

Builds a 4-cube (a cabinet: two modules, system boards, disks, the
system ring), then exercises the paper end to end:

1. solve a pivot-heavy linear system across all 16 nodes (LINPACK
   style: all-reduce pivot search, physical row exchanges, binomial
   broadcasts);
2. checkpoint the machine (~15 simulated seconds, both modules in
   parallel) and back module 0's snapshot up across the ring;
3. suffer a memory fault, catch it by parity, restore, and verify;
4. print where the time went (component utilisation).

Run:  python examples/grand_tour.py
"""

import numpy as np

from repro.algorithms import distributed_solve, linpack_reference
from repro.analysis import Table, seconds, utilization_table
from repro.core import TSeriesMachine
from repro.memory import ParityError
from repro.system import CheckpointService


def main():
    print(__doc__)
    machine = TSeriesMachine(4)
    print(f"built {machine!r}: {len(machine.modules)} modules, "
          f"{len(machine.ring_links)} ring links, "
          f"{len(machine.sublinks)} hypercube sublinks\n")

    # 1 — distributed solve.
    n = 24
    rng = np.random.default_rng(1986)
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    a = a[rng.permutation(n)]
    b = rng.standard_normal(n)
    x, elapsed, stats = distributed_solve(machine, a, b)
    np.testing.assert_allclose(x, linpack_reference(a, b), rtol=1e-8)
    print(f"1. solved {n}x{n} system on 16 nodes in "
          f"{elapsed / 1e6:.2f} simulated ms "
          f"({stats['swaps']} pivot swaps, "
          f"{stats['cross_node_swaps']} crossing nodes); verified.")

    # Stash the answer in node memories (the state worth protecting).
    for i, node in enumerate(machine.nodes):
        node.write_floats(0x8000, x)

    # 2 — checkpoint + ring backup.
    service = CheckpointService(machine)

    def snapshot(eng):
        took = yield from service.snapshot_all("tour")
        return took

    took = machine.engine.run(
        until=machine.engine.process(snapshot(machine.engine))
    )
    print(f"2. snapshot of both modules: {seconds(took):.1f} s "
          "(parallel, configuration-independent).")

    def backup(eng):
        moved = yield from service.backup_to_neighbor(
            machine.modules[0], "tour"
        )
        return moved

    moved = machine.engine.run(
        until=machine.engine.process(backup(machine.engine))
    )
    print(f"   module 0's {moved >> 20} MB backed up over the system "
          "ring to module 1's disk.")

    # 3 — fault and recovery.
    victim = machine.nodes[5]
    victim.memory.parity.inject_error(0x8000)
    try:
        victim.read_floats(0x8000, n)
        raise AssertionError("fault missed")
    except ParityError as err:
        print(f"3. {err} — detected by byte parity.")

    def restore(eng):
        yield from service.restore_all("tour")

    machine.engine.run(
        until=machine.engine.process(restore(machine.engine))
    )
    np.testing.assert_allclose(victim.read_floats(0x8000, n), x)
    print("   restored from disk; node 5's copy of the solution "
          "verified intact.")

    # 4 — utilisation.
    print()
    print(utilization_table(
        machine, title="4. Where the simulated time went"
    ).render())


if __name__ == "__main__":
    main()
