#!/usr/bin/env python
"""Homogeneity at the instruction level: two identical nodes, two
identical CPUs, talking over a simulated serial link.

The paper's §II notes the control processor "provides inter-node
communications via the serial links" with the same IN/OUT channel
instructions used for on-chip process communication.  This example
assembles a ping-pong pair: node A sends a word over a link channel
(DMA startup + 13-bit-per-byte framing charged on the simulated
clock), node B increments and returns it — then scales the same
program to a ring of four nodes passing a token.

Run:  python examples/isa_message_passing.py
"""

from repro.core import PAPER_SPECS, ProcessorNode
from repro.cp import CPU, assemble, attach_link_channel, to_signed
from repro.events import Engine
from repro.links.fabric import connect
from repro.topology import gray

PING = """
    .equ LINK, 0x80000000
    .equ BUF, 0x240
    main:
        ldc 99
        ldc BUF
        stnl 0
        ldc BUF
        ldc LINK
        ldc 4
        out             ; send over the wire
        ldc BUF
        ldc LINK
        ldc 4
        in              ; await the reply
        ldc BUF
        ldnl 0
        terminate
"""

PONG = """
    .equ LINK, 0x80000000
    .equ BUF, 0x280
    main:
        ldc BUF
        ldc LINK
        ldc 4
        in
        ldc BUF
        ldnl 0
        adc 1
        ldc BUF
        stnl 0
        ldc BUF
        ldc LINK
        ldc 4
        out
        terminate
"""

#: Token forwarder: receive on link channel 0, add own id, send on 1.
FORWARD = """
    .equ LINK_IN, 0x80000000
    .equ LINK_OUT, 0x80000004
    .equ BUF, 0x240
    .equ MYID, 0x200
    main:
        ldc BUF
        ldc LINK_IN
        ldc 4
        in
        ldc BUF
        ldnl 0
        ldc MYID
        ldnl 0
        add
        ldc BUF
        stnl 0
        ldc BUF
        ldc LINK_OUT
        ldc 4
        out
        terminate
"""


def ping_pong():
    print("— ping-pong over one link —")
    eng = Engine()
    a = ProcessorNode(eng, PAPER_SPECS, node_id=0)
    b = ProcessorNode(eng, PAPER_SPECS, node_id=1)
    connect(a.comm, 0, b.comm, 0, role="hypercube")

    ping = CPU(assemble(PING).code)
    pong = CPU(assemble(PONG).code)
    attach_link_channel(ping, a.comm, slot=0)
    attach_link_channel(pong, b.comm, slot=0)

    procs = [eng.process(ping.as_process(eng, PAPER_SPECS)),
             eng.process(pong.as_process(eng, PAPER_SPECS))]
    eng.run(until=eng.all_of(procs))
    print(f"A sent 99, got back {to_signed(ping.areg)} "
          f"after {eng.now / 1000:.1f} simulated us")
    assert to_signed(ping.areg) == 100


def token_ring():
    print("\n— a token around a Gray-code ring of 4 nodes —")
    eng = Engine()
    nodes = [ProcessorNode(eng, PAPER_SPECS, node_id=i) for i in range(4)]
    # Ring positions in Gray order: each step one cube dimension.
    ring = [gray(i) for i in range(4)]
    # Wire edge p → p+1: sender's slot 8+p (port 2) to the receiver's
    # slot p (port 0).  The wrap edge is replaced by the collector.
    for pos in range(3):
        u, v = ring[pos], ring[pos + 1]
        connect(nodes[u].comm, 8 + pos, nodes[v].comm, pos, role="ring")

    from repro.cp import RendezvousChannel
    from repro.cp.link_channels import SlotChannel

    start = RendezvousChannel(eng, "inject")
    finish = RendezvousChannel(eng, "collect")
    LINK_IN, LINK_OUT = 0x80000000, 0x80000004

    cpus = []
    for pos, node_id in enumerate(ring):
        cpu = CPU(assemble(FORWARD).code)
        cpu.memory.write_word(0x200, node_id)       # MYID
        # Each forwarder reads the link from its predecessor (slot
        # `pos` on this node) and writes toward its successor (slot
        # `4+pos`); position 0 is fed by the injector and the last
        # forwarder hands the token to the collector.
        if pos == 0:
            cpu.external_channels[LINK_IN] = start
        else:
            cpu.external_channels[LINK_IN] = SlotChannel(
                nodes[node_id].comm, pos - 1
            )
        if pos == len(ring) - 1:
            cpu.external_channels[LINK_OUT] = finish
        else:
            cpu.external_channels[LINK_OUT] = SlotChannel(
                nodes[node_id].comm, 8 + pos
            )
        cpus.append(cpu)

    collected = []

    def driver():
        yield from start.send((5).to_bytes(4, "little"))
        data = yield from finish.recv()
        collected.append(int.from_bytes(data, "little"))

    eng.process(driver())
    procs = [eng.process(c.as_process(eng, PAPER_SPECS)) for c in cpus]
    eng.run(until=eng.all_of(procs))
    total = collected[0]
    expected = 5 + sum(ring)
    print(f"token entered as 5, every node added its id "
          f"({'+'.join(str(r) for r in ring)}), exited as {total}")
    assert total == expected


def main():
    print(__doc__)
    ping_pong()
    token_ring()


if __name__ == "__main__":
    main()
