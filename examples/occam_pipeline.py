#!/usr/bin/env python
"""The Occam programming model: SEQ / PAR / ALT over channels.

Paper §II: "Occam differs from languages like Pascal or C in that it
directly provides for the execution of parallel, communicating
processes."  This example builds a classic Occam-style network — a
generator, a pair of parallel workers, and a multiplexing collector
using ALT — and also runs a small program on the control processor's
actual instruction set (the stack machine, assembled from source).

Run:  python examples/occam_pipeline.py
"""

from repro.cp import CPU, assemble, to_signed
from repro.occam import Alt, Guard, OccamProgram, Par


def occam_network():
    print("— Occam process network —")
    prog = OccamProgram()
    eng = prog.engine
    work = [prog.channel(f"work{i}") for i in range(2)]
    results = [prog.channel(f"res{i}") for i in range(2)]
    collected = []

    def generator():
        # Deal jobs to the two workers alternately.
        for job in range(10):
            yield work[job % 2].put(job)
        for chan in work:
            yield chan.put(None)  # poison

    def worker(i):
        while True:
            job = yield work[i].get()
            if job is None:
                yield results[i].put(None)
                return
            yield eng.timeout(1000 * (i + 1))     # unequal speeds
            yield results[i].put((i, job * job))

    def collector():
        done = 0
        while done < 2:
            guards = [Guard(c) for c in results]
            _index, value = yield from Alt(eng, guards)
            if value is None:
                done += 1
            else:
                collected.append(value)

    prog.spawn(Par(eng, generator(), worker(0), worker(1), collector()),
               name="network")
    prog.run()
    print(f"collected {len(collected)} results in {prog.now} ns "
          f"of simulated time")
    squares = sorted(v for _i, v in collected)
    assert squares == [j * j for j in range(10)]
    print(f"squares via the pipeline: {squares}\n")


def cp_program():
    print("— The same idea at ISA level: CP stack machine —")
    source = """
        ; sum of squares 1..10, computed on the control processor
            ldc 0
            stl 1           ; acc
            ldc 10
            stl 2           ; i
        loop:
            ldl 2
            dup
            mul             ; i*i
            ldl 1
            add
            stl 1
            ldl 2
            adc -1
            stl 2
            ldl 2
            cj done
            j loop
        done:
            ldl 1
            terminate
    """
    program = assemble(source)
    cpu = CPU(program.code)
    cpu.run()
    print(f"assembled {len(program.code)} bytes; "
          f"{cpu.instructions} instructions executed")
    print(f"result in Areg: {to_signed(cpu.areg)} "
          f"(expected {sum(i * i for i in range(1, 11))})")
    assert to_signed(cpu.areg) == 385


def main():
    print(__doc__)
    occam_network()
    cp_program()


if __name__ == "__main__":
    main()
