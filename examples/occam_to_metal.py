#!/usr/bin/env python
"""Occam source to the metal: parse → compile → assemble → execute.

Paper §II: "All features of the microprocessor are directly accessed
through a high-level language called Occam. ... A single process can
be constructed from a collection by specifying sequential, alternative
or parallel execution of the constituent processes."

This example takes Occam-style source text, parses it, compiles it to
the control processor's stack-machine assembly (PAR becomes
STARTP/ENDP with a join counter; channel ``!``/``?`` become the
IN/OUT soft-channel rendezvous), shows the generated code through the
disassembler, and runs it on the simulated CPU.

Run:  python examples/occam_to_metal.py
"""

from repro.cp import CPU, assemble, listing
from repro.occam.compiler import compile_occam, read_variable
from repro.occam.parser import parse

SOURCE = """
    SEQ
      -- compute gcd(462, 1071) sequentially...
      a := 462
      b := 1071
      WHILE b > 0
        SEQ
          t := a \\ b
          a := b
          b := t
      -- ...then square it with a parallel producer/consumer pair.
      PAR
        SEQ
          c ? y
          result := y
        c ! a * a
"""


def main():
    print(__doc__)
    print("Occam source:")
    print(SOURCE)

    ast = parse(SOURCE)
    print(f"parsed AST: {type(ast).__name__} with "
          f"{len(ast.body)} top-level processes")

    from repro.occam.compiler import OccamCompiler
    compiler = OccamCompiler()
    assembly = compiler.compile(ast)
    lines = assembly.strip().splitlines()
    print(f"\ncompiled to {len(lines)} assembly lines; first 12:")
    for line in lines[:12]:
        print(f"   {line}")

    program = assemble(assembly)
    print(f"\nassembled to {len(program.code)} bytes of byte code; "
          "disassembly excerpt:")
    for text_line in listing(program.code).splitlines()[:8]:
        print(text_line)

    cpu = CPU(program.code)
    cpu.run()
    gcd = read_variable(cpu, compiler, "a")
    result = read_variable(cpu, compiler, "result")
    print(f"\nexecuted {cpu.instructions} instructions "
          f"({cpu.scheduler.switches} process switches)")
    print(f"gcd(462, 1071) = {gcd}; squared via the channel = {result}")
    assert gcd == 21 and result == 441


if __name__ == "__main__":
    main()
