#!/usr/bin/env python
"""Quickstart: build a T Series module and run SAXPY at full speed.

Builds the paper's basic unit — one module, eight 16 MFLOPS nodes —
and runs a distributed 64-bit SAXPY through the complete datapath:
memory rows → vector registers → chained multiplier+adder pipes →
result rows.  Prints the measured rate against the 128 MFLOPS module
peak, plus the Figure 2 bandwidths measured from the same machine.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.algorithms import distributed_saxpy, saxpy_reference
from repro.analysis import Table
from repro.core import PAPER_SPECS, TSeriesMachine


def main():
    print(__doc__)

    # One module: a 3-cube of eight nodes (with_system=False skips the
    # system boards, which SAXPY does not need).
    machine = TSeriesMachine(3, with_system=False)
    print(f"built: {machine!r}")

    # A 64K-element 64-bit SAXPY: y <- 2.5x + y.
    n = 128 * 512
    rng = np.random.default_rng(42)
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    result, elapsed_ns, mflops = distributed_saxpy(machine, 2.5, x, y)

    np.testing.assert_allclose(result, saxpy_reference(2.5, x, y))
    print(f"\nSAXPY over {n} elements: verified against NumPy")

    table = Table("Measured vs paper", ["quantity", "paper", "measured"])
    table.add("module peak MFLOPS", 128.0, "-")
    table.add("sustained MFLOPS", "approaches peak", mflops)
    table.add("fraction of peak", "-",
              mflops / PAPER_SPECS.peak_mflops_per_module)
    table.add("elapsed (simulated us)", "-", elapsed_ns / 1000.0)
    table.show()

    spec = Table(
        "Figure 2 bandwidths (derived from specs)",
        ["datapath", "MB/s"],
    )
    spec.add("CP <-> RAM", PAPER_SPECS.cp_memory_bw_mb_s)
    spec.add("memory <-> vector register", PAPER_SPECS.row_bw_mb_s)
    spec.add("vector registers <-> arithmetic",
             PAPER_SPECS.vector_register_bw_mb_s)
    spec.add("one serial link (one way)", PAPER_SPECS.link_bw_mb_s)
    spec.show()


if __name__ == "__main__":
    main()
