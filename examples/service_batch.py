#!/usr/bin/env python
"""Machine-room walkthrough: submit, coalesce, cache, re-serve.

The T Series was run as a shared facility — many users, one cube.
This example drives the :mod:`repro.service` layer the way a machine
room would: a batch of mixed jobs (vector forms, an event schedule, a
CP program) is submitted twice.  The first pass simulates everything
and fills the content-addressed result cache; the second pass — the
same jobs, a fresh service — answers entirely from cache with
byte-identical payloads.  Along the way: duplicate submissions
coalesce onto one execution, priorities order the queue, and the
``service_stats`` rollup shows exactly what was simulated vs. served.

Run:  python examples/service_batch.py
"""

import os
import sys
import tempfile

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                 "src"),
)

from repro.analysis import service_stats_table
from repro.service import (
    JobSpec,
    ResultCache,
    SimulationService,
    load_batch,
)

BATCH_FILE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "service_batch.json")


def run_pass(label, cache_root, jobs):
    # A fresh service per pass: even the in-memory LRU starts cold,
    # so the second pass proves the on-disk store.
    service = SimulationService(cache=ResultCache(root=cache_root))
    futures = [service.submit(job, priority) for job, priority in jobs]
    service.drain()
    print(f"\n--- {label} pass ---")
    for future in futures:
        print(f"  {future.job.kind:<8} {future.status:<8} "
              f"submits={future.submits} "
              f"digest={(future.digest() or '-')[:12]} "
              f"run={future.run_s * 1000:.2f} ms")
    print()
    print(service_stats_table(service,
                              f"Service profile ({label})").render())
    return futures


def main():
    print(__doc__)
    jobs = load_batch(BATCH_FILE)
    print(f"loaded {len(jobs)} jobs from {BATCH_FILE}")
    print("(the last job duplicates the first: watch it coalesce)")

    with tempfile.TemporaryDirectory() as cache_root:
        cold = run_pass("cold", cache_root, jobs)
        warm = run_pass("warm", cache_root, jobs)

        identical = all(
            c.digest() == w.digest() for c, w in zip(cold, warm)
        )
        all_cached = all(w.status == "cached" for w in warm)
        print(f"\nwarm pass all served from cache: {all_cached}")
        print(f"payloads byte-identical to fresh simulation: "
              f"{identical}")
        assert all_cached and identical


if __name__ == "__main__":
    main()
