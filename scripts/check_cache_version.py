#!/usr/bin/env python
"""Cache-versioning guard: golden digests ↔ job-key schema pairing.

Every service job key folds in the digest of the golden-trace set, so
cached results invalidate whenever simulator semantics change.  The
pairing of ``JOB_KEY_SCHEMA_VERSION`` with the golden digest is
pinned in ``tests/golden/jobkey_schema.json``; this guard fails CI
when the golden traces changed but the job-key schema version (and
the pin) did not move with them — the rule that makes "cache entries
invalidate when semantics change" an enforced invariant instead of a
convention.

Workflow when an intentional behaviour change regenerates goldens::

    python scripts/regen_golden.py
    # bump JOB_KEY_SCHEMA_VERSION in src/repro/service/jobkey.py
    python scripts/check_cache_version.py --update

Exit status: 0 when the pin matches the tree, 1 otherwise.
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                 "src"),
)

from repro.service.jobkey import (  # noqa: E402
    JOB_KEY_SCHEMA_VERSION,
    current_schema_pin,
    schema_pin_path,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the pin from the current tree (after a schema "
        "bump)",
    )
    args = parser.parse_args(argv)

    path = schema_pin_path()
    current = current_schema_pin()

    if args.update:
        with open(path, "w") as handle:
            json.dump(current, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"pinned schema v{JOB_KEY_SCHEMA_VERSION} + golden "
              f"fingerprint -> {path}")
        return 0

    try:
        with open(path) as handle:
            pinned = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read schema pin {path}: {exc}")
        print("run scripts/check_cache_version.py --update")
        return 1

    if pinned == current:
        print(f"cache-version guard OK (schema "
              f"v{current['job_key_schema_version']}, golden "
              f"{current['golden_fingerprint'][:12]}…)")
        return 0

    same_version = (pinned.get("job_key_schema_version")
                    == current["job_key_schema_version"])
    if same_version:
        print("FAIL: golden-trace digests changed but "
              "JOB_KEY_SCHEMA_VERSION did not.")
        print("Stale service-cache entries would alias the new "
              "semantics.  Bump JOB_KEY_SCHEMA_VERSION in "
              "src/repro/service/jobkey.py, then run "
              "scripts/check_cache_version.py --update.")
    else:
        print("FAIL: JOB_KEY_SCHEMA_VERSION moved but the pin was "
              "not refreshed.")
        print("Run scripts/check_cache_version.py --update and "
              "commit the pin.")
    print(f"pinned:  {json.dumps(pinned, sort_keys=True)}")
    print(f"current: {json.dumps(current, sort_keys=True)}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
