#!/usr/bin/env bash
# Tier-1 CI: the full test suite on the fast kernel, the kernel
# regression tests on the reference kernel, and a wall-clock benchmark
# smoke run (quick mode: asserts cycle-exactness between kernels, not
# the speedup targets).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="${PWD}/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite (fast kernel) =="
python -m pytest tests/ -x -q

echo "== kernel equivalence tests (reference kernel) =="
REPRO_SLOW_KERNEL=1 python -m pytest \
    tests/test_perf_kernel.py tests/test_events_ordering.py \
    tests/test_events_engine.py tests/test_events_channels.py -x -q

echo "== wall-clock benchmark smoke =="
python benchmarks/bench_wallclock.py --quick --no-json

echo "CI OK"
