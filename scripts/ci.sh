#!/usr/bin/env bash
# Tier-1 CI: the full test suite on the default (turbo) kernel, the
# kernel regression tests pinned to each other tier, four-way
# conformance (fuzz + golden traces across reference/fast/turbo/
# vector), a parallel-sweep smoke, and a wall-clock benchmark smoke
# run (quick mode: asserts cycle-exactness between kernels, not the
# speedup targets).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="${PWD}/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite (turbo kernel, the default) =="
python -m pytest tests/ -x -q

echo "== kernel equivalence tests (reference kernel) =="
REPRO_SLOW_KERNEL=1 python -m pytest \
    tests/test_perf_kernel.py tests/test_events_ordering.py \
    tests/test_events_engine.py tests/test_events_channels.py -x -q

echo "== kernel equivalence tests (fast kernel, turbo disabled) =="
REPRO_TURBO_KERNEL=0 python -m pytest \
    tests/test_perf_kernel.py tests/test_events_ordering.py \
    tests/test_events_engine.py tests/test_events_channels.py -x -q

echo "== kernel equivalence tests (vector kernel, columnar queue) =="
REPRO_VECTOR_KERNEL=1 python -m pytest \
    tests/test_perf_kernel.py tests/test_events_ordering.py \
    tests/test_events_engine.py tests/test_events_channels.py -x -q

echo "== chain-equivalence tests (fused chain vs per-op, every tier) =="
# The model-layer chain pipeline must match the per-op program
# bit-for-bit on each tier; the file pins every tier itself, and the
# per-tier env runs catch env-pinned construction paths too.
python -m pytest tests/test_chain_pipeline.py -x -q
REPRO_SLOW_KERNEL=1 python -m pytest tests/test_chain_pipeline.py -x -q
REPRO_VECTOR_KERNEL=1 python -m pytest tests/test_chain_pipeline.py -x -q

echo "== differential fuzz smoke (four-way, fixed seeds) =="
# Fixed seeds so CI is deterministic; the budget bounds wall clock on
# slow machines.  Every case replays on all four kernel tiers and
# diffs against the reference; divergences shrink to tests/repros/
# and fail the run.
python -m repro.testing.fuzz --seed 1986 --cases 200 --budget 30
python -m repro.testing.fuzz --seed 8086 --cases 120 --budget 20

echo "== occam optimizer fuzz smoke (dual-compile + AOT warm start) =="
# Every occam case compiles twice (-O0 and -O2), AOT-warm-starts the
# optimized build (asserting the runtime translator is never invoked),
# and diffs observable results across all four kernel tiers; the
# budget bounds wall clock on slow machines.
python -m repro.testing.fuzz --seed 31415 --cases 80 \
    --generators occam --budget 45

echo "== service chaos smoke (kills, journal damage, quota, shed) =="
# Seeded chaos schedules against the machine-room layer: mid-drain
# process kills, journal truncation/corruption, cache damage, worker
# crashes, tenant quotas.  Every case replays on all four kernel
# tiers (the outcomes are tier-independent by construction, so any
# diff is service nondeterminism) and must deliver every surviving
# job byte-identical to a clean run.
python -m repro.testing.fuzz --seed 1987 --cases 50 \
    --generators service --budget 120

echo "== service kill -9 round trip (journal replay, exactly-once) =="
python scripts/service_kill_smoke.py

echo "== net chaos smoke (torn frames, hostile bytes, server kills) =="
# The net generator is opt-in (it spins up live servers per case):
# seeded serving-chaos schedules attack the socket/HTTP front-end
# with torn frames, bad CRCs, oversize headers, hostile HTTP, and
# mid-drain kill -9; every case replays on all four kernel tiers and
# must serve every job byte-identical to clean direct execution.
python -m repro.testing.fuzz --seed 2601 --cases 50 \
    --generators net --budget 180

echo "== net smoke (remote batch + stream + kill -9 + restart) =="
python scripts/net_smoke.py

echo "== fault-tolerance smoke (ARQ retries + recovery digest) =="
python scripts/fault_smoke.py

echo "== golden trace conformance (reference / fast / turbo / vector) =="
python scripts/regen_golden.py --check

echo "== service smoke (batch twice; second pass all cache hits) =="
SERVICE_SMOKE_DIR=$(mktemp -d)
python -m repro.service batch examples/service_batch.json \
    --cache-dir "$SERVICE_SMOKE_DIR/cache" \
    --out "$SERVICE_SMOKE_DIR/pass1.json"
python -m repro.service batch examples/service_batch.json \
    --cache-dir "$SERVICE_SMOKE_DIR/cache" \
    --out "$SERVICE_SMOKE_DIR/pass2.json"
python - "$SERVICE_SMOKE_DIR" <<'EOF'
import json, sys
root = sys.argv[1]
with open(f"{root}/pass1.json") as f: cold = json.load(f)
with open(f"{root}/pass2.json") as f: warm = json.load(f)
assert cold["all_ok"] and warm["all_ok"]
statuses = [j["status"] for j in warm["jobs"]]
assert all(s == "cached" for s in statuses), statuses
cold_digests = [j["digest"] for j in cold["jobs"]]
warm_digests = [j["digest"] for j in warm["jobs"]]
assert cold_digests == warm_digests, "digest drift cold -> warm"
print(f"service smoke OK: {len(statuses)} jobs, warm pass all "
      "cache hits, digests match")
EOF
rm -rf "$SERVICE_SMOKE_DIR"

echo "== cache-versioning guard (golden digests <-> job-key schema) =="
python scripts/check_cache_version.py

echo "== service benchmark smoke (cold/warm identity, three tiers) =="
python benchmarks/bench_service.py --quick --no-json

echo "== net benchmark smoke (remote byte-identity, four tiers) =="
# Quick mode gates remote-vs-in-process byte identity on every kernel
# tier; the perf targets run on the committed full-run JSON below.
timeout 300 python benchmarks/bench_net.py --quick --no-json

echo "== remote serving gate (committed BENCH_net.json) =="
# The committed full-run JSON must carry the serving gates: warm
# remote throughput >= 100 rps over the Unix socket and p50 remote
# overhead <= 5 ms over in-process warm serving, all tiers identical.
python - <<'EOF'
import json
acc = json.load(open("BENCH_net.json"))["acceptance"]
assert acc["perf_targets_apply"], acc
assert acc["remote_rps"] >= acc["rps_target"], acc
assert acc["overhead_p50_ms"] <= acc["overhead_target_ms"], acc
assert acc["all_byte_identical"], acc
print("remote serving gate OK:", acc["remote_rps"], "rps,",
      acc["overhead_p50_ms"], "ms p50 overhead, all tiers identical")
EOF

echo "== parallel-sweep smoke (4 workers, byte-identical merge) =="
# The smoke gates determinism, not throughput; the timeout is a wall
# budget so a wedged worker pool fails CI instead of hanging it.
timeout 300 python benchmarks/bench_sweep.py --quick --no-json

echo "== coverage floor on the testing subsystem =="
if python -c "import pytest_cov" 2>/dev/null; then
    python -m pytest tests/test_testing_subsystem.py tests/test_repros.py \
        tests/test_golden_traces.py -q \
        --cov=repro.testing --cov-fail-under=85
    python -m pytest tests/test_occam_optimizer.py -q \
        --cov=repro.occam.optimizer --cov=repro.occam.aot \
        --cov-fail-under=85
else
    echo "pytest-cov not installed; skipping coverage floor"
fi

echo "== wall-clock benchmark smoke (four tiers, cycle-exactness) =="
# Wall budget: the smoke gates tier identity, not speed; a wedged
# tier run fails CI instead of hanging it.
timeout 300 python benchmarks/bench_wallclock.py --quick --no-json

echo "== matmul vector gate (committed BENCH_wallclock.json) =="
# The quick smoke above skips speedup targets (tiny sizes are all
# noise); the committed full-run JSON must carry the chain-pipeline
# gates: vector ≥ 2.2x over reference on E12 matmul and no longer
# trailing turbo, with chains actually fused.
python - <<'EOF'
import json
acc = json.load(open("BENCH_wallclock.json"))["acceptance"]
assert acc["matmul_vector_wall_speedup"] >= acc["matmul_vector_target"], acc
assert acc["matmul_vector_vs_turbo"] >= acc["matmul_vector_vs_turbo_target"], acc
assert acc["matmul_chains_fused"] > 0, acc
print("matmul vector gate OK:",
      acc["matmul_vector_wall_speedup"], "x vs reference,",
      acc["matmul_vector_vs_turbo"], "x vs turbo,",
      acc["matmul_chains_fused"], "chains fused")
EOF

echo "CI OK"
