#!/usr/bin/env python
"""Fast fault-tolerance smoke for CI.

Two stages, both on a tiny machine with a fixed seed, both asserting
hard numbers so a silent regression in the fault stack fails CI:

1. **Transport**: a burst of messages on a 3-cube under two fault
   classes (transient frame corruption + stuck sublinks).  Every
   message must be delivered exactly once, the ARQ layer must have
   actually retried (retries > 0, checksum failures > 0), and the
   engine's fault log must have recorded the injections.
2. **Recovery**: a checkpointed stencil run on a 4-cube that loses a
   node mid-run must finish all its steps, recover exactly once, and
   produce a final digest bit-identical to the fault-free run.

Exit status 0 on success; an AssertionError otherwise.
"""

import sys

from repro.analysis import engine_stats, reliability_stats
from repro.core.config import MachineConfig
from repro.core.machine import TSeriesMachine
from repro.events import Engine, FaultLog
from repro.runtime.transport import ReliableTransport
from repro.system.failures import (
    FAULT_LINK_STUCK,
    FAULT_LINK_TRANSIENT,
    MultiClassFailureInjector,
)
from repro.system.recovery import (
    FaultTolerantRun,
    RingStencilWorkload,
    compressed_timescale_specs,
)


def transport_smoke() -> None:
    eng = Engine()
    FaultLog(eng)
    machine = TSeriesMachine(3, engine=eng, with_system=False)
    transport = ReliableTransport(machine)
    injector = MultiClassFailureInjector(
        machine,
        {FAULT_LINK_TRANSIENT: 30e-6, FAULT_LINK_STUCK: 120e-6},
        seed=0,
        stuck_outage_ns=(50_000, 400_000),
    )
    horizon_ns = 2_000_000
    eng.process(injector.run(horizon_ns), name="injector")

    messages = [(src, src ^ 7, 256, 40_000 * i)
                for i, src in enumerate(range(8))]
    received = []

    def sender(index, src, dst, nbytes, delay):
        yield eng.timeout(delay)
        sent = yield from transport.send(src, dst, index, nbytes,
                                         tag=f"s{index}")
        assert sent is not None, f"message {index} gave up"

    def receiver(index, dst):
        envelope = yield from transport.recv(dst, tag=f"s{index}")
        received.append(envelope.payload)

    for index, (src, dst, nbytes, delay) in enumerate(messages):
        eng.process(sender(index, src, dst, nbytes, delay))
        eng.process(receiver(index, dst))
    eng.run()

    stats = reliability_stats(transport)
    kernel = engine_stats(eng)
    assert sorted(received) == list(range(len(messages))), \
        f"delivery not exactly-once: {sorted(received)}"
    assert stats["retries"] > 0, "no retries — faults not exercised"
    assert stats["checksum_failures"] > 0, "no corrupted frames seen"
    assert stats["frames_corrupted"] > 0, "injector corrupted nothing"
    assert stats["sends_failed"] == 0, "a send exhausted its retries"
    assert kernel["fault_events"] > 0, "fault log is empty"
    print(f"  transport: {stats['delivered']} delivered, "
          f"{stats['retries']} retries, "
          f"{stats['checksum_failures']} checksum failures, "
          f"{kernel['fault_events']} fault-log records")


def recovery_smoke() -> None:
    def build():
        eng = Engine()
        FaultLog(eng)
        config = MachineConfig(4, specs=compressed_timescale_specs())
        machine = TSeriesMachine(config, engine=eng)
        workload = RingStencilWorkload(ranks=16, steps=16,
                                       exchange_every=4)
        run = FaultTolerantRun(machine, workload,
                               checkpoint_interval_steps=8)
        return eng, workload, run

    eng, workload, run = build()
    run.execute()
    clean_digest = workload.digest(run)

    eng, workload, run = build()

    def killer():
        yield eng.timeout(120_000_000)
        run.kill_node(5)

    eng.process(killer(), name="killer")
    stats = run.execute()
    assert stats["committed_step"] == 16, stats
    assert stats["recoveries"] == 1, stats
    assert stats["dead_nodes"] == [5], stats
    digest = workload.digest(run)
    assert digest == clean_digest, \
        f"recovered digest {digest} != clean {clean_digest}"
    print(f"  recovery: node 5 died, 1 recovery, rank 5 → "
          f"{stats['assignment']['5']}, digest bit-identical")


def main() -> int:
    print("fault smoke: transport ARQ under injected link faults")
    transport_smoke()
    print("fault smoke: checkpoint/restart recovery from node death")
    recovery_smoke()
    print("fault smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
