#!/usr/bin/env python
"""Remote-serving round trip for the network front-end (CI).

The serving durability story, end to end, over a real socket:

1. A subprocess runs :class:`ServiceServer` on an ephemeral Unix
   socket with a journal and cache directory.  This process — acting
   as a remote client — streams one job to completion (full
   SUBMIT/START/DONE lifecycle plus the result payload), then submits
   a 16-job batch with a chaos kill job spliced into the middle.  The
   server's drain thread executes the kill job and ``os._exit(9)``s:
   a ``kill -9`` mid-drain with results partially durable.
2. A fresh server is started on the *same* journal and cache
   directories (kill disarmed).  Re-submitting the full batch over
   the wire must deliver all 16 results with payload digests
   byte-identical to clean direct execution — journaled survivors
   from the cache, the rest re-executed — proving the socket layer
   neither loses nor changes an answer across a hard crash.

Exit status 0 on success; an AssertionError otherwise.
"""

import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.service import (
    ResultCache,
    ServerThread,
    ServiceClient,
    SimulationService,
    payload_digest,
)
from repro.service.net.bus import TERMINAL_OPS
from repro.testing.gen_service import KILL_EXIT, _pure_payload

_CHILD = """
import json, os, time
from repro.service import ResultCache, ServerThread, SimulationService

with open(os.environ["NET_SMOKE_SPEC"]) as handle:
    bundle = json.load(handle)
service = SimulationService(
    cache=ResultCache(root=bundle["cache_dir"]),
    journal_dir=bundle["journal_dir"],
)
ServerThread(service, unix_path=bundle["sock"]).start()
time.sleep(60)  # the kill job fells this process long before this
"""


def _wait_for_socket(path: str, timeout_s: float = 15.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not os.path.exists(path):
        if time.monotonic() > deadline:
            raise AssertionError(f"server socket never appeared: {path}")
        time.sleep(0.02)


def main() -> int:
    jobs = [{"label": f"w{i:02d}", "x": 47 * (i + 2), "rounds": 3}
            for i in range(16)]
    expected = {job["label"]: payload_digest(_pure_payload(job))
                for job in jobs}
    documents = [{"kind": "service.chaos", "spec": dict(job),
                  "tier": "turbo"} for job in jobs]

    root = tempfile.mkdtemp(prefix="repro-net-smoke-")
    try:
        journal_dir = os.path.join(root, "journal")
        cache_dir = os.path.join(root, "cache")
        chaos_dir = os.path.join(root, "chaos")
        sock = os.path.join(root, "serve.sock")
        os.makedirs(chaos_dir)
        spec_path = os.path.join(root, "bundle.json")
        with open(spec_path, "w") as handle:
            json.dump({"journal_dir": journal_dir,
                       "cache_dir": cache_dir, "sock": sock}, handle)

        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(pathlib.Path(__file__).resolve().parent.parent / "src")
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        env["NET_SMOKE_SPEC"] = spec_path
        env["REPRO_CHAOS_DIR"] = chaos_dir  # arms the kill marker
        proc = subprocess.Popen([sys.executable, "-c", _CHILD],
                                env=env)
        try:
            _wait_for_socket(sock)
            with ServiceClient("unix:" + sock) as client:
                # Stream one job end to end before the chaos begins.
                streamed = jobs[0]
                events, final = client.watch(
                    client.submit(documents[0])["key"])
                assert events and events[-1]["op"] in TERMINAL_OPS, \
                    events
                assert final["digest"] == expected[streamed["label"]], \
                    final
                # Remote batch with a kill job spliced mid-batch: the
                # drain thread dies with most of the batch queued.
                spliced = list(documents)
                spliced.insert(len(documents) // 2, {
                    "kind": "service.chaos",
                    "spec": {"label": "kill", "x": 1, "rounds": 1,
                             "kill_service": True},
                    "tier": "turbo",
                })
                accepted = 0
                for document in spliced:
                    try:
                        client.submit(document)
                        accepted += 1
                    except Exception:
                        break  # server died under us, as scheduled
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert proc.returncode == KILL_EXIT, (
            f"server exited {proc.returncode}, expected the scheduled "
            f"kill ({KILL_EXIT})"
        )

        # Restart on the same journal + cache, kill disarmed even if
        # the child died before its marker hit the disk.
        with open(os.path.join(chaos_dir, "kill-kill"), "w"):
            pass
        service = SimulationService(
            cache=ResultCache(root=cache_dir), journal_dir=journal_dir,
        )
        recovered = len(service.recovered)
        sock2 = os.path.join(root, "serve2.sock")
        results = {}
        with ServerThread(service, unix_path=sock2):
            with ServiceClient("unix:" + sock2) as client:
                for document in documents:
                    record = client.submit(document, wait=60)
                    assert record["status"] in ("done", "cached"), \
                        record
                    results[record["result"]["label"]] = (
                        record["digest"],
                        payload_digest(record["result"]),
                    )

        mismatches = [
            label for label, (digest, recomputed) in results.items()
            if digest != expected[label] or recomputed != expected[label]
        ]
        assert not mismatches, mismatches
        assert len(results) == len(jobs), sorted(results)

        print(f"net smoke OK: streamed 1 job to completion, server "
              f"killed -9 mid-drain after accepting {accepted} remote "
              f"submissions, restart recovered {recovered} journaled "
              f"jobs and served all {len(jobs)} byte-identical over "
              f"the socket")
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
