#!/usr/bin/env python
"""Regenerate the golden conformance traces in tests/golden/.

Run this ONLY when a behavioural change is intentional (a timing
model correction, a new scheduler rule, ...).  The diff of the JSON
files is the review artefact: every changed number is a behaviour
change that all four kernel tiers (reference, fast, turbo, vector) now agree
on.

Usage::

    PYTHONPATH=src python scripts/regen_golden.py [--check]

``--check`` regenerates nothing; it verifies the stored traces against
fresh runs of every kernel tier and exits 1 on any drift (CI mode).
"""

import argparse
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 os.pardir, "src"),
)

from repro.testing import golden  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--check", action="store_true",
                        help="verify instead of regenerating")
    parser.add_argument("--dir", default=None,
                        help="golden directory (default tests/golden)")
    args = parser.parse_args(argv)
    directory = args.dir or golden.default_golden_dir()

    if args.check:
        problems = golden.verify(directory)
        for problem in problems:
            print(f"DRIFT: {problem}")
        if problems:
            return 1
        print(f"{len(golden.WORKLOADS)} golden traces verified "
              f"against all kernel tiers")
        return 0

    for path in golden.regen(directory):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
