#!/usr/bin/env python
"""Kill-and-restart round trip for the machine-room service (CI).

The durability story, end to end, with hard numbers:

1. A subprocess submits a 20-job batch to a journaled service and
   drains it inline.  Job 8 is a chaos job that ``os._exit(9)``s the
   process mid-drain — from the service's point of view this is a
   ``kill -9``, with 7 results already durable (journaled DONE +
   cache entry) and 13 jobs owed.
2. A fresh service is pointed at the same journal and cache
   directories.  Replay must recover exactly the 13 unfinished jobs;
   re-submitting the full batch must deliver all 20 results with
   payload digests byte-identical to a clean serial run, the 7
   durable results served from cache (no re-execution), and the
   metering counters proving no job ran twice.

Exit status 0 on success; an AssertionError otherwise.
"""

import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.service import (
    JobSpec,
    ResultCache,
    SimulationService,
    payload_digest,
)
from repro.testing.gen_service import _pure_payload

_CHILD = """
import json, os
from repro.service import JobSpec, ResultCache, SimulationService

with open(os.environ["KILL_SMOKE_SPEC"]) as handle:
    bundle = json.load(handle)
service = SimulationService(
    cache=ResultCache(root=bundle["cache_dir"]),
    journal_dir=bundle["journal_dir"],
)
for job in bundle["jobs"]:
    service.submit(JobSpec(kind="service.chaos", spec=job,
                           tier="turbo", tenant="ci"))
service.drain(pool_jobs=1)
"""


def main() -> int:
    jobs = [{"label": f"s{i:02d}", "x": 31 * (i + 3), "rounds": 3}
            for i in range(20)]
    jobs[7]["kill_service"] = True
    expected = {job["label"]: payload_digest(_pure_payload(job))
                for job in jobs}

    root = tempfile.mkdtemp(prefix="repro-kill-smoke-")
    try:
        journal_dir = os.path.join(root, "journal")
        cache_dir = os.path.join(root, "cache")
        spec_path = os.path.join(root, "bundle.json")
        with open(spec_path, "w") as handle:
            json.dump({"jobs": jobs, "journal_dir": journal_dir,
                       "cache_dir": cache_dir}, handle)

        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(pathlib.Path(__file__).resolve().parent.parent / "src")
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        env["KILL_SMOKE_SPEC"] = spec_path
        env["REPRO_CHAOS_DIR"] = root  # arms the kill marker
        proc = subprocess.run([sys.executable, "-c", _CHILD], env=env,
                              timeout=120)
        assert proc.returncode == 9, (
            f"drain subprocess exited {proc.returncode}, expected the "
            f"scheduled kill (9)"
        )

        os.environ.pop("REPRO_CHAOS_DIR", None)  # disarm for restart
        service = SimulationService(
            cache=ResultCache(root=cache_dir), journal_dir=journal_dir,
        )
        replay = service.journal_replay
        assert replay["done_in_cache"] == 7, replay
        assert replay["recovered_pending"] == 13, replay

        futures = {
            job["label"]: service.submit(
                JobSpec(kind="service.chaos", spec=job, tier="turbo",
                        tenant="ci"))
            for job in jobs
        }
        service.drain()

        mismatches = [
            label for label, future in futures.items()
            if future.status not in ("done", "cached")
            or future.as_json()["digest"] != expected[label]
        ]
        assert not mismatches, mismatches

        stats = service.stats()
        assert stats["executed"] == 13, stats["executed"]
        assert stats["cache_hits"] == 7, stats["cache_hits"]
        meter = stats["tenants"]["ci"]
        assert meter["executed"] == 13 and meter["cache_hits"] == 7, \
            meter

        print("service kill smoke OK: killed mid-drain with 7/20 "
              "durable, restart delivered all 20 byte-identical, "
              "13 executed + 7 cache hits (nothing ran twice)")
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
