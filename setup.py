"""Setuptools shim.

The project is configured in pyproject.toml; this file exists so that
legacy editable installs (`pip install -e . --no-use-pep517
--no-build-isolation` or `python setup.py develop`) work in offline
environments that lack the `wheel` package required by PEP 660 builds.
"""

from setuptools import setup

setup()
