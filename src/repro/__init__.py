"""repro — a behavioral and timing reproduction of the FPS T Series.

This package reproduces, in simulation, the homogeneous vector
supercomputer described in:

    John L. Gustafson, Stuart Hawkinson, and Ken Scott,
    "The Architecture of a Homogeneous Vector Supercomputer",
    Proceedings of the International Conference on Parallel Processing
    (ICPP), 1986.  Floating Point Systems, Inc.

The machine is a binary n-cube of identical processor nodes, each
combining a 32-bit stack-machine control processor (programmed in an
Occam-like process model), a dual-ported banked memory whose rows load
into vector registers in a single access, a pipelined IEEE-754
floating-point adder and multiplier driven by a vector-form
micro-sequencer, and four bit-serial communication links multiplexed
into sixteen sublinks.

Subpackages
-----------
``repro.events``
    Discrete-event simulation kernel (integer-nanosecond clock,
    generator-coroutine processes, channels, resources).
``repro.fpu``
    Bit-level IEEE-754 arithmetic with flush-to-zero, pipelined
    functional-unit timing, and the vector-form micro-sequencer.
``repro.memory``
    The 1 MB dual-ported, dual-bank DRAM and its vector registers.
``repro.cp``
    The transputer-flavoured control processor: ISA, assembler,
    interpreter, and two-priority process scheduler.
``repro.links``
    Bit-serial links, framing, sublink multiplexing, and DMA.
``repro.topology``
    Binary n-cube construction, Gray codes, e-cube routing, and the
    ring / mesh / torus / FFT-butterfly embeddings of Figure 3.
``repro.occam``
    SEQ / PAR / ALT process combinators — the paper's programming
    model as a Python DSL.
``repro.core``
    The node, module, and machine models plus the hardware constants.
``repro.system``
    System boards, the system ring, disks, and snapshot checkpointing.
``repro.runtime``
    Message passing and hypercube collectives over the simulated links.
``repro.algorithms``
    The scientific kernels the paper motivates (SAXPY, matmul, FFT,
    stencil, Gaussian elimination with physical-row pivoting, sorting).
``repro.baselines``
    The shared-memory bus machine and scalar node used as architectural
    foils in the evaluation.
``repro.analysis``
    Performance, balance-ratio, overlap, and checkpoint-interval
    analysis used by the benchmark harness.
"""

from repro.core.specs import TSeriesSpecs, PAPER_SPECS
from repro.core.config import MachineConfig
from repro.core.machine import TSeriesMachine

__version__ = "1.0.0"

__all__ = [
    "TSeriesSpecs",
    "PAPER_SPECS",
    "MachineConfig",
    "TSeriesMachine",
    "__version__",
]
