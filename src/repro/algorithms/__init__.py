"""Scientific kernels on the simulated T Series.

Each module pairs a distributed (or node-level) implementation that
runs on the machine model — charging real vector-unit, memory-port and
link times — with a NumPy reference used for verification:

* :mod:`repro.algorithms.saxpy` — the full-speed dual-bank kernel.
* :mod:`repro.algorithms.dot` — DOT form + all-reduce.
* :mod:`repro.algorithms.matmul` — SAXPY-based rank-1 updates.
* :mod:`repro.algorithms.fft` — DIF FFT on the butterfly mapping.
* :mod:`repro.algorithms.stencil` — Jacobi on a mesh embedding.
* :mod:`repro.algorithms.gauss` — elimination with physical-row pivots.
* :mod:`repro.algorithms.sort` — block bitonic sort.
"""

from repro.algorithms.saxpy import (
    distributed_saxpy,
    saxpy_reference,
    saxpy_single_node_time_model,
)
from repro.algorithms.dot import distributed_dot, dot_reference
from repro.algorithms.matmul import distributed_matmul, matmul_reference
from repro.algorithms.fft import (
    bit_reverse_permutation,
    distributed_fft,
    fft_reference,
)
from repro.algorithms.stencil import distributed_jacobi, jacobi_reference
from repro.algorithms.gauss import (
    gauss_solve,
    reciprocal_ns,
    solve_reference,
    swap_cost_model,
)
from repro.algorithms.sort import (
    bitonic_sort,
    record_sort_time_model,
    sort_reference,
)
from repro.algorithms.linpack import (
    distributed_solve,
    linpack_reference,
)
from repro.algorithms.cg import (
    cg_reference,
    distributed_cg,
    laplacian_matvec_reference,
)
from repro.algorithms.transpose import (
    distributed_transpose,
    transpose_reference,
)
from repro.algorithms.nbody import distributed_nbody, nbody_reference

__all__ = [
    "bit_reverse_permutation",
    "bitonic_sort",
    "cg_reference",
    "distributed_cg",
    "distributed_dot",
    "distributed_transpose",
    "laplacian_matvec_reference",
    "transpose_reference",
    "distributed_fft",
    "distributed_jacobi",
    "distributed_matmul",
    "distributed_nbody",
    "distributed_saxpy",
    "nbody_reference",
    "distributed_solve",
    "dot_reference",
    "linpack_reference",
    "fft_reference",
    "gauss_solve",
    "jacobi_reference",
    "matmul_reference",
    "reciprocal_ns",
    "record_sort_time_model",
    "saxpy_reference",
    "saxpy_single_node_time_model",
    "solve_reference",
    "sort_reference",
    "swap_cost_model",
]
