"""Distributed conjugate gradients on the 5-point Laplacian.

The composite workload: a matrix-free CG solve of the 2-D Poisson
operator (A·x)ᵢⱼ = 4xᵢⱼ − N − S − E − W, block-decomposed over the
Gray-coded process mesh.  Each iteration exercises everything the
machine offers at once:

* halo exchanges for the mat-vec (single-hop mesh neighbours),
* vector-form arithmetic for the operator and the AXPY updates,
* DOT forms + all-reduce for the two global inner products.

Verification is against a dense NumPy solve of the same operator.
"""

import numpy as np

from repro.runtime.api import HypercubeProgram
from repro.runtime.mapping import MeshMapping


def laplacian_matvec_reference(x):
    """Dense reference of the operator (zero Dirichlet boundary)."""
    x = np.asarray(x, dtype=np.float64)
    out = 4.0 * x
    out[:-1, :] -= x[1:, :]
    out[1:, :] -= x[:-1, :]
    out[:, :-1] -= x[:, 1:]
    out[:, 1:] -= x[:, :-1]
    return out


def cg_reference(b, iterations):
    """NumPy CG on the same operator, same iteration count."""
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros_like(b)
    r = b - laplacian_matvec_reference(x)
    p = r.copy()
    rr = float((r * r).sum())
    for _ in range(iterations):
        ap = laplacian_matvec_reference(p)
        alpha = rr / float((p * ap).sum())
        x += alpha * p
        r -= alpha * ap
        rr_new = float((r * r).sum())
        p = r + (rr_new / rr) * p
        rr = rr_new
    return x


def distributed_cg(machine, b, iterations, mesh_shape=None):
    """Run ``iterations`` of CG across the machine.

    Returns ``(x, elapsed_ns, residual_norms)``.  The grid must divide
    evenly over the process mesh.
    """
    b = np.asarray(b, dtype=np.float64)
    if mesh_shape is None:
        bits = machine.dimension
        mesh_shape = (1 << (bits // 2), 1 << (bits - bits // 2))
    mapping = MeshMapping(mesh_shape)
    if mapping.size != len(machine):
        raise ValueError("mesh shape must cover the machine")
    px, py = mapping.shape
    rows, cols = b.shape
    if rows % px or cols % py:
        raise ValueError("grid must divide over the process mesh")
    bx, by = rows // px, cols // py

    coords_of = {mapping.node_of((cx, cy)): (cx, cy)
                 for cx in range(px) for cy in range(py)}
    blocks = {
        node: b[cx * bx:(cx + 1) * bx, cy * by:(cy + 1) * by].copy()
        for node, (cx, cy) in coords_of.items()
    }
    program = HypercubeProgram(machine)
    residuals = []

    def main(ctx):
        node = ctx.node
        vau = node.vau
        cx, cy = coords_of[ctx.node_id]
        b_local = blocks[ctx.node_id]
        x = np.zeros_like(b_local)
        r = b_local.copy()     # x0 = 0 ⇒ r0 = b
        p = r.copy()

        def exchange_halos(field, it, phase):
            sides = {
                "north": (cx - 1, cy), "south": (cx + 1, cy),
                "west": (cx, cy - 1), "east": (cx, cy + 1),
            }
            opposite = {"north": "south", "south": "north",
                        "east": "west", "west": "east"}
            edges = {
                "north": field[0, :], "south": field[-1, :],
                "west": field[:, 0], "east": field[:, -1],
            }
            for side, (nx, ny) in sides.items():
                if 0 <= nx < px and 0 <= ny < py:
                    yield from ctx.send(
                        mapping.node_of((nx, ny)), edges[side].copy(),
                        8 * edges[side].size,
                        tag=f"cg{it}.{phase}.{opposite[side]}",
                    )
            halos = {}
            for side, (nx, ny) in sides.items():
                count = by if side in ("north", "south") else bx
                if 0 <= nx < px and 0 <= ny < py:
                    env = yield from ctx.recv(
                        tag=f"cg{it}.{phase}.{side}"
                    )
                    halos[side] = env.payload
                else:
                    halos[side] = np.zeros(count)
            return halos

        def matvec(field, it):
            halos = yield from exchange_halos(field, it, "mv")
            padded = np.zeros((bx + 2, by + 2))
            padded[1:-1, 1:-1] = field
            padded[0, 1:-1] = halos["north"]
            padded[-1, 1:-1] = halos["south"]
            padded[1:-1, 0] = halos["west"]
            padded[1:-1, -1] = halos["east"]
            out = np.empty_like(field)
            for rrow in range(bx):
                center = padded[rrow + 1, 1:-1]
                up = padded[rrow, 1:-1]
                down = padded[rrow + 2, 1:-1]
                left = padded[rrow + 1, :-2]
                right = padded[rrow + 1, 2:]
                four_c = yield from vau.execute(
                    "VSMUL", [center], scalars=(4.0,)
                )
                ud = yield from vau.execute("VADD", [up, down])
                lr = yield from vau.execute("VADD", [left, right])
                nbrs = yield from vau.execute("VADD", [ud, lr])
                row_out = yield from vau.execute("VSUB", [four_c, nbrs])
                out[rrow] = row_out
            return out

        def local_dot(u, v):
            total = 0.0
            for rrow in range(bx):
                piece = yield from vau.execute("DOT", [u[rrow], v[rrow]])
                total += float(piece)
            return total

        def axpy_rows(alpha, u, v):
            """v ← alpha·u + v, row by row (SAXPY forms)."""
            for rrow in range(bx):
                row = yield from vau.execute(
                    "SAXPY", [u[rrow], v[rrow]], scalars=(alpha,)
                )
                v[rrow] = row

        rr_local = yield from local_dot(r, r)
        rr = yield from ctx.allreduce(rr_local, 8, lambda a, c: a + c)
        for it in range(iterations):
            ap = yield from matvec(p, it)
            pap_local = yield from local_dot(p, ap)
            pap = yield from ctx.allreduce(
                pap_local, 8, lambda a, c: a + c
            )
            alpha = rr / pap
            yield from axpy_rows(alpha, p, x)
            yield from axpy_rows(-alpha, ap, r)
            rr_new_local = yield from local_dot(r, r)
            rr_new = yield from ctx.allreduce(
                rr_new_local, 8, lambda a, c: a + c
            )
            if ctx.node_id == 0:
                residuals.append(np.sqrt(rr_new))
            beta = rr_new / rr
            # p ← r + beta·p: SAXPY with the roles swapped.
            for rrow in range(bx):
                row = yield from vau.execute(
                    "SAXPY", [p[rrow], r[rrow]], scalars=(beta,)
                )
                p[rrow] = row
            rr = rr_new
        return x

    results, elapsed = program.run(main)
    x = np.zeros_like(b)
    for node, block in results.items():
        cx, cy = coords_of[node]
        x[cx * bx:(cx + 1) * bx, cy * by:(cy + 1) * by] = block
    return x, elapsed, residuals
