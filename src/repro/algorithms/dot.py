"""Distributed dot product.

Local partial dot products via the DOT vector form (the multiplier
feeding the adder with feedback accumulation), then a machine-wide
all-reduce — a reduction tree of depth log₂ N over the cube.
"""

import numpy as np

from repro.algorithms.saxpy import (
    X_BASE_ROW,
    Y_BASE_ROW,
    partition_rows,
)
from repro.runtime.api import HypercubeProgram


def dot_reference(x, y):
    """NumPy ground truth."""
    return float(np.dot(np.asarray(x, dtype=np.float64),
                        np.asarray(y, dtype=np.float64)))


def distributed_dot(machine, x, y, precision=64):
    """Dot product of distributed vectors.

    Returns ``(value, elapsed_ns)`` where every node ends up holding
    ``value`` (all-reduce semantics).
    """
    elems = machine.specs.row_bytes // (precision // 8)
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.size % elems:
        raise ValueError(f"lengths must match and divide by {elems}")
    total_rows = x.size // elems
    parts = partition_rows(total_rows, len(machine))
    for node, (start, count) in zip(machine.nodes, parts):
        for r in range(count):
            lo = (start + r) * elems
            node.write_row_floats(X_BASE_ROW + r, x[lo:lo + elems],
                                  precision)
            node.write_row_floats(Y_BASE_ROW + r, y[lo:lo + elems],
                                  precision)

    program = HypercubeProgram(machine)
    counts = {i: parts[i][1] for i in range(len(machine))}

    def main(ctx):
        node = ctx.node
        partial = 0.0
        for r in range(counts[ctx.node_id]):
            yield from node.load_vector(X_BASE_ROW + r, reg=0)
            yield from node.load_vector(Y_BASE_ROW + r, reg=1)
            piece = yield from node.vector_op(
                "DOT", [0, 1], precision=precision
            )
            partial += float(piece)
        total = yield from ctx.allreduce(partial, 8, lambda a, b: a + b)
        return total

    results, elapsed = program.run(main)
    values = set(results.values())
    if len(values) != 1:
        raise AssertionError("allreduce disagreement")  # pragma: no cover
    return values.pop(), elapsed
