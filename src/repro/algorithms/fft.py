"""Distributed radix-2 FFT on the butterfly mapping (Figure 3).

Decimation-in-frequency with the input block-distributed: N points
over P = 2^d nodes, m = N/P per node.  The first d stages pair each
node with a hypercube neighbour (the butterfly *is* the cube, so every
exchange is one hop); the remaining log₂ m stages are node-local.

All butterfly arithmetic runs through the vector-form unit as real
operations on the re/im component arrays — ten forms of length m/2
(or m for the cross stages) per stage — so both the numerics
(flush-to-zero 64-bit) and the timing (pipeline fills, 125 ns/element)
are the machine's.  Results come out in bit-reversed order, as DIF
does; :func:`bit_reverse_permutation` reorders for comparison.
"""

import numpy as np

from repro.runtime.api import HypercubeProgram


def fft_reference(x):
    """NumPy ground truth."""
    return np.fft.fft(np.asarray(x, dtype=np.complex128))


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation undoing DIF's bit-reversed output order."""
    if n < 1 or n & (n - 1):
        raise ValueError("FFT size must be a power of two")
    bits = n.bit_length() - 1
    out = np.zeros(n, dtype=np.int64)
    for i in range(n):
        out[i] = int(format(i, f"0{bits}b")[::-1], 2) if bits else 0
    return out


def _twiddles(total_size: int, offsets: np.ndarray) -> np.ndarray:
    """W_L^j for a vector of exponents (L = total_size)."""
    return np.exp(-2j * np.pi * offsets / total_size)


def _sum_forms(node, a_re, a_im, b_re, b_im):
    """Process: the 'a' half of a DIF butterfly — two VADDs."""
    exe = node.vau.execute
    sum_re = yield from exe("VADD", [a_re, b_re])
    sum_im = yield from exe("VADD", [a_im, b_im])
    return sum_re, sum_im


def _rot_forms(node, a_re, a_im, b_re, b_im, w_re, w_im):
    """Process: the 'b' half of a DIF butterfly — (a−b)·w, eight
    vector forms (two subtracts, four multiplies, two combines)."""
    exe = node.vau.execute
    diff_re = yield from exe("VSUB", [a_re, b_re])
    diff_im = yield from exe("VSUB", [a_im, b_im])
    p1 = yield from exe("VMUL", [diff_re, w_re])
    p2 = yield from exe("VMUL", [diff_im, w_im])
    p3 = yield from exe("VMUL", [diff_re, w_im])
    p4 = yield from exe("VMUL", [diff_im, w_re])
    rot_re = yield from exe("VSUB", [p1, p2])
    rot_im = yield from exe("VADD", [p3, p4])
    return rot_re, rot_im


def _butterfly_forms(node, a_re, a_im, b_re, b_im, w_re, w_im):
    """Process: a full DIF butterfly (both halves; ten forms)."""
    sum_re, sum_im = yield from _sum_forms(node, a_re, a_im, b_re, b_im)
    rot_re, rot_im = yield from _rot_forms(
        node, a_re, a_im, b_re, b_im, w_re, w_im
    )
    return sum_re, sum_im, rot_re, rot_im


def distributed_fft(machine, x):
    """FFT of ``x`` (length N = P · m, both powers of two).

    Returns ``(X, elapsed_ns)`` with ``X`` in natural order (the final
    bit-reversal data reshuffle is performed with a personalised
    all-to-all so its communication time is charged).
    """
    x = np.asarray(x, dtype=np.complex128)
    n_total = x.size
    p = len(machine)
    if n_total % p or n_total < p:
        raise ValueError("FFT size must be a multiple of the node count")
    m = n_total // p
    if m & (m - 1) or n_total & (n_total - 1):
        raise ValueError("FFT size and node count must be powers of two")
    d = machine.dimension

    blocks = {i: x[i * m:(i + 1) * m].copy() for i in range(p)}
    program = HypercubeProgram(machine)

    def main(ctx):
        node = ctx.node
        local = blocks[ctx.node_id]
        re = local.real.copy()
        im = local.imag.copy()
        base = ctx.node_id * m

        # Cross-node stages: L = N, N/2, ..., 2m.
        length = n_total
        for s in reversed(range(d)):
            half = length // 2
            partner = ctx.node_id ^ (1 << s)  # one hop: the butterfly
            # Exchange whole blocks (16 bytes per complex element).
            yield from ctx.send(partner, (re.copy(), im.copy()),
                                16 * m, tag=f"fft{s}")
            envelope = yield from ctx.recv(tag=f"fft{s}")
            other_re, other_im = envelope.payload
            j = base % length
            if j < half:  # we hold the 'a' half: a + b
                sre, sim = yield from _sum_forms(
                    node, re, im, other_re, other_im
                )
                re, im = np.asarray(sre), np.asarray(sim)
            else:         # we hold the 'b' half: (a − b)·w
                offs = (base % half) + np.arange(m)
                w = _twiddles(length, offs)
                rre, rim = yield from _rot_forms(
                    node, other_re, other_im, re, im, w.real, w.imag,
                )
                re, im = np.asarray(rre), np.asarray(rim)
            length = half

        # Local stages: L = m ... 2.
        length = m
        while length >= 2:
            half = length // 2
            new_re = re.copy()
            new_im = im.copy()
            for block_start in range(0, m, length):
                a = slice(block_start, block_start + half)
                b = slice(block_start + half, block_start + length)
                w = _twiddles(length, np.arange(half))
                sre, sim, rre, rim = yield from _butterfly_forms(
                    node, re[a], im[a], re[b], im[b], w.real, w.imag,
                )
                new_re[a], new_im[a] = sre, sim
                new_re[b], new_im[b] = rre, rim
            re, im = new_re, new_im
            # Memory traffic: the stage touched every element (2 reads
            # + 1 write per 128-element row on the row port).
            rows = -(-m // machine.specs.vector_length_64)
            yield from node.memory.row_port.access(3 * rows)
            length = half

        # Global bit-reversal reshuffle: element at local k has global
        # DIF position base+k and belongs at bitrev(base+k).
        perm = bit_reverse_permutation(n_total)
        outgoing = {dst: [] for dst in range(p)}
        for k in range(m):
            g = base + k
            target = int(perm[g])
            outgoing[target // m].append(
                (target % m, complex(re[k], im[k]))
            )
        received = yield from ctx.alltoall(
            outgoing, nbytes_each=max(8, 16 * m // p)
        )
        out = np.zeros(m, dtype=np.complex128)
        for _src, items in received.items():
            for pos, value in items:
                out[pos] = value
        return out

    results, elapsed = program.run(main)
    full = np.concatenate([results[i] for i in range(p)])
    return full, elapsed
