"""Gaussian elimination with *physical* row pivoting.

Paper §II (Memory): "An application might make use of this
extraordinary speed by moving data physically, rather than keeping
linked lists of pointers to vectors, as for example, in pivoting rows
of a matrix."  This solver does exactly that: a pivot swap is two/three
row-port moves (400 ns each) instead of an element-by-element exchange
through the CP (1.6 µs per element) — experiment E4 measures the gap.

The system is solved on a single node: the augmented matrix [A | b]
lives one matrix-row per memory row (row i in bank A, scratch rows in
bank B), elimination is one SAXPY per target row, and back
substitution uses the DOT form.

Division: the T Series has no divide unit; reciprocals are computed
with Newton–Raphson on the multiplier+adder (three iterations, each a
multiply–subtract–multiply), and that cost is charged per pivot.
"""

import numpy as np

#: Matrix rows at memory rows 0.., scratch/swap row in bank B.
MATRIX_BASE_ROW = 0
SWAP_SCRATCH_ROW = 300

#: Newton–Raphson reciprocal: 3 iterations × (2 multiplies + 1 subtract).
RECIPROCAL_FLOPS = 9


def solve_reference(a, b):
    """NumPy ground truth."""
    return np.linalg.solve(np.asarray(a, dtype=np.float64),
                           np.asarray(b, dtype=np.float64))


def reciprocal_ns(specs) -> int:
    """Scalar reciprocal latency: three NR iterations through the
    (unpipelined-for-scalars) multiplier and adder."""
    mul = specs.multiplier_stages_64 * specs.cycle_ns
    add = specs.adder_stages * specs.cycle_ns
    return 3 * (2 * mul + add)


def gauss_solve(node, a, b, use_row_moves=True):
    """Process: solve A·x = b on one node.

    Returns ``(x, stats)`` where ``stats`` counts pivot swaps and the
    time spent swapping.  ``use_row_moves=False`` swaps via CP
    gather/scatter instead (the paper's counterfactual).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n,):
        raise ValueError("need a square system")
    width = n + 1
    if width > node.vregs[0].capacity(64):
        raise ValueError(f"n={n} exceeds one row register")
    engine = node.engine
    specs = node.specs

    # Plant the augmented matrix, one matrix-row per memory row.
    augmented = np.hstack([a, b[:, None]])
    for i in range(n):
        node.write_row_floats(MATRIX_BASE_ROW + i, augmented[i])

    stats = {"swaps": 0, "swap_ns": 0, "pivot_scan_ns": 0}

    def read_element(i, j):
        return node.read_row_floats(MATRIX_BASE_ROW + i, width)[j]

    for k in range(n):
        # Partial pivoting: the CP scans column k (one 64-bit element
        # read = two word accesses each).
        column = np.array([abs(read_element(i, k)) for i in range(k, n)])
        scan_start = engine.now
        yield from node.memory.word_port.access(2 * (n - k))
        stats["pivot_scan_ns"] += engine.now - scan_start
        pivot = k + int(np.argmax(column))
        if column[pivot - k] == 0.0:
            raise ZeroDivisionError("singular matrix")
        if pivot != k:
            start = engine.now
            if use_row_moves:
                # Physical three-move swap through a vector register.
                yield from node.memory.row_move(
                    MATRIX_BASE_ROW + k, SWAP_SCRATCH_ROW, node.vregs[1]
                )
                yield from node.memory.row_move(
                    MATRIX_BASE_ROW + pivot, MATRIX_BASE_ROW + k,
                    node.vregs[1],
                )
                yield from node.memory.row_move(
                    SWAP_SCRATCH_ROW, MATRIX_BASE_ROW + pivot,
                    node.vregs[1],
                )
            else:
                # CP element-wise exchange: 2 gathers' worth of moves.
                yield from node.memory.word_port.access(2 * 4 * width)
                row_k = node.read_row_floats(MATRIX_BASE_ROW + k, width)
                row_p = node.read_row_floats(MATRIX_BASE_ROW + pivot, width)
                node.write_row_floats(MATRIX_BASE_ROW + k, row_p)
                node.write_row_floats(MATRIX_BASE_ROW + pivot, row_k)
            stats["swaps"] += 1
            stats["swap_ns"] += engine.now - start

        # Reciprocal of the pivot element (Newton–Raphson).
        yield engine.timeout(reciprocal_ns(specs))
        inv_pivot = 1.0 / read_element(k, k)

        # Eliminate below: row_i ← row_i − (a_ik/a_kk)·row_k, as one
        # fused chain per pivot — the pivot row loads once into reg 0
        # and every target row streams through a load/SAXPY/store
        # triple under a single row-port hold and pipeline fill.  The
        # a_ik factor reads (two word accesses each) batch ahead of
        # the chain; the row updates are independent, so reading every
        # factor first observes the same values the per-row loop did.
        if k + 1 < n:
            yield from node.memory.word_port.access(2 * (n - k - 1))
            chain = node.vector_chain(64)
            chain.load(MATRIX_BASE_ROW + k, reg=0)
            for i in range(k + 1, n):
                factor = read_element(i, k) * inv_pivot
                chain.load(MATRIX_BASE_ROW + i, reg=1)
                chain.op(
                    "SAXPY", [0, 1], scalars=(-factor,), length=width,
                    dst_reg=1,
                )
                chain.store(1, MATRIX_BASE_ROW + i)
            yield from node.run_chain(chain)

    # Back substitution with the DOT form.
    x = np.zeros(n)
    for k in reversed(range(n)):
        row = node.read_row_floats(MATRIX_BASE_ROW + k, width)
        yield from node.load_vector(MATRIX_BASE_ROW + k, reg=0)
        if k < n - 1:
            # dot(a[k, k+1:], x[k+1:]) through the DOT form.
            node.vregs[1].set_elements(
                np.concatenate([np.zeros(k + 1), x[k + 1:]]), 64
            )
            dot = yield from node.vector_op("DOT", [0, 1], length=n)
        else:
            dot = 0.0
        yield engine.timeout(reciprocal_ns(specs))
        x[k] = (row[n] - float(dot)) / row[k]
    return x, stats


def swap_cost_model(specs, width: int):
    """Analytic swap costs: (row_move_ns, gather_ns) for one pivot swap
    of ``width`` 64-bit elements."""
    row_moves = 3 * 2 * specs.row_access_ns            # three moves
    gather = 2 * width * specs.gather_ns_per_element_64
    return row_moves, gather
