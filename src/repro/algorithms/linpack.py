"""Distributed Gaussian elimination (LINPACK-style) over the cube.

The era's headline benchmark, done the T Series way: the augmented
matrix is row-cyclic distributed, pivot selection is a machine-wide
all-reduce, pivot rows move *physically* (row-port moves locally,
link transfers across nodes), the pivot row is broadcast down the
binomial tree, and every node eliminates its local rows with SAXPY
forms.

Arithmetic intensity per elimination step is ~2·(n/P) flops per
broadcast word, so — per the paper's 130-ops rule — the solver scales
once n/P is a few hundred; below that the pivot broadcasts dominate.
Both regimes are tested.
"""

import numpy as np

from repro.runtime.api import HypercubeProgram

#: Node memory layout: local matrix rows from here (bank A first).
LOCAL_BASE_ROW = 0
#: Staged pivot row (bank B, so SAXPY gets one operand per bank).
PIVOT_ROW_SLOT = 300


def linpack_reference(a, b):
    """NumPy ground truth."""
    return np.linalg.solve(np.asarray(a, dtype=np.float64),
                           np.asarray(b, dtype=np.float64))


def _owner(row: int, p: int) -> int:
    """Row-cyclic ownership."""
    return row % p


def distributed_solve(machine, a, b):
    """Solve A·x = b across the machine.

    Returns ``(x, elapsed_ns, stats)`` with ``stats`` counting pivot
    exchanges.  n+1 must fit a 64-bit vector register (n ≤ 127).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n,):
        raise ValueError("need a square system")
    p = len(machine)
    width = n + 1
    if width > machine.specs.vector_length_64:
        raise ValueError(f"n={n} exceeds one row register")

    augmented = np.hstack([a, b[:, None]])
    # Plant each node's local rows (global row g at local slot g // p).
    for g in range(n):
        node = machine.nodes[_owner(g, p)]
        node.write_row_floats(LOCAL_BASE_ROW + g // p, augmented[g])

    program = HypercubeProgram(machine)
    stats = {"swaps": 0, "cross_node_swaps": 0}

    def main(ctx):
        node = ctx.node
        me = ctx.node_id

        def local_slot(g):
            return LOCAL_BASE_ROW + g // p

        def read_local(g):
            return node.read_row_floats(local_slot(g), width)

        x = np.zeros(n)
        for k in range(n):
            # --- pivot search: local scan, then all-reduce argmax ---
            best_val, best_row = -1.0, -1
            for g in range(k, n):
                if _owner(g, p) != me:
                    continue
                yield from node.memory.word_port.access(2)
                val = abs(read_local(g)[k])
                if val > best_val:
                    best_val, best_row = val, g
            best_val, best_row = yield from ctx.allreduce(
                (best_val, best_row), 16, max
            )
            if best_val == 0.0:
                raise ZeroDivisionError("singular matrix")

            # --- physical pivot exchange ---
            if best_row != k:
                if me == 0:
                    stats["swaps"] += 1
                ok, op_ = _owner(k, p), _owner(best_row, p)
                if ok == op_:
                    if me == ok:
                        # Local three-move swap through a register.
                        yield from node.memory.row_move(
                            local_slot(k), PIVOT_ROW_SLOT, node.vregs[1]
                        )
                        yield from node.memory.row_move(
                            local_slot(best_row), local_slot(k),
                            node.vregs[1],
                        )
                        yield from node.memory.row_move(
                            PIVOT_ROW_SLOT, local_slot(best_row),
                            node.vregs[1],
                        )
                else:
                    if me == 0:
                        stats["cross_node_swaps"] += 1
                    if me == ok:
                        mine = read_local(k)
                        yield from ctx.send(op_, mine, width * 8,
                                            tag=f"swapk{k}")
                        env = yield from ctx.recv(tag=f"swapp{k}")
                        node.write_row_floats(local_slot(k), env.payload)
                    elif me == op_:
                        mine = read_local(best_row)
                        yield from ctx.send(ok, mine, width * 8,
                                            tag=f"swapp{k}")
                        env = yield from ctx.recv(tag=f"swapk{k}")
                        node.write_row_floats(
                            local_slot(best_row), env.payload
                        )

            # --- broadcast the pivot row, stage it in bank B ---
            root = _owner(k, p)
            pivot = yield from ctx.broadcast(
                root, read_local(k) if me == root else None, width * 8
            )
            node.write_row_floats(PIVOT_ROW_SLOT, pivot)
            yield from node.load_vector(PIVOT_ROW_SLOT, reg=0)

            # --- eliminate local rows below k ---
            inv_pivot = 1.0 / pivot[k]
            for g in range(k + 1, n):
                if _owner(g, p) != me:
                    continue
                yield from node.memory.word_port.access(2)
                factor = read_local(g)[k] * inv_pivot
                yield from node.load_vector(local_slot(g), reg=1)
                yield from node.vector_op(
                    "SAXPY", [0, 1], scalars=(-factor,), length=width,
                    dst_reg=1,
                )
                yield from node.store_vector(1, local_slot(g))

        # --- back substitution: owners compute, broadcast each x_k ---
        for k in reversed(range(n)):
            root = _owner(k, p)
            if me == root:
                row = read_local(k)
                yield from node.load_vector(local_slot(k), reg=0)
                if k < n - 1:
                    node.vregs[1].set_elements(
                        np.concatenate([np.zeros(k + 1), x[k + 1:],
                                        np.zeros(width - n)]), 64
                    )
                    dot = yield from node.vector_op(
                        "DOT", [0, 1], length=width
                    )
                else:
                    dot = 0.0
                value = (row[n] - float(dot)) / row[k]
            else:
                value = None
            x[k] = yield from ctx.broadcast(root, value, 8)
        return x

    results, elapsed = program.run(main)
    x = results[0]
    for other in results.values():
        np.testing.assert_array_equal(other, x)
    return x, elapsed, stats
