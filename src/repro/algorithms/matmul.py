"""Distributed dense matrix multiply.

C = A·B with A (and C) row-block distributed and B broadcast — the
classic rank-1-update formulation that maps straight onto the T Series
SAXPY form: each output row is built as

    C[i, :] = Σ_k  A[i, k] · B[k, :]

i.e. one SAXPY per (i, k) with the scalar A[i,k] held in the
multiplier's input register and B[k, :] streaming from a bank-B row
while the accumulator streams from bank A.  The broadcast of B and the
gather of C go over the hypercube collectives, so communication is
charged at real link rates.

Sizes: N (columns of B) must fit one row register (≤128 in 64-bit
mode).
"""

import numpy as np

from repro.runtime.api import HypercubeProgram

#: Row layout: accumulator rows in bank A, B panel in bank B.
ACC_BASE_ROW = 0
B_BASE_ROW = 256


def matmul_reference(a, b):
    """NumPy ground truth."""
    return np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64)


def matmul_time_model(m_rows, k, n, p, specs):
    """Predicted ns for :func:`distributed_matmul` on ``p`` nodes.

    Components: the binomial broadcast of B (log₂ p sequential link
    transfers), per-node compute (each local row is **one fused
    chain**: the accumulator load plus K B-row loads charged
    back-to-back on the row port, then K SAXPYs streamed through one
    pipeline fill — ``fill + K·N − 1`` cycles, not K fills), and the
    binomial gather of C (payload doubling up the tree).  The model
    exposes the balance economics: B costs K·N words per node and C
    costs M·N/p words regardless of how much compute M adds, so
    intensity caps at ~2K flops per C-word — the reason small-K matmul
    can never outrun the links (bench E12).
    """
    from repro.links.frame import FrameSpec
    from repro.runtime.messages import HEADER_BYTES

    frame = FrameSpec.from_specs(specs)

    def link_ns(nbytes):
        return specs.dma_startup_ns + frame.transfer_ns(
            nbytes + HEADER_BYTES
        )

    stages = max(0, p.bit_length() - 1)
    bcast = stages * link_ns(k * n * 8)
    rows_local = -(-m_rows // p)
    fill = specs.multiplier_stages_64 + specs.adder_stages
    per_row = (1 + k) * specs.row_access_ns + (
        fill + k * n - 1
    ) * specs.cycle_ns
    compute = rows_local * per_row
    gather = sum(
        link_ns(m_rows * n * 8 * (1 << d) // p) for d in range(stages)
    )
    return bcast + compute + gather


def _row_partition(rows, nodes):
    base, extra = divmod(rows, nodes)
    parts = []
    start = 0
    for i in range(nodes):
        count = base + (1 if i < extra else 0)
        parts.append((start, count))
        start += count
    return parts


def distributed_matmul(machine, a, b, precision=64):
    """Multiply across the machine.

    Returns ``(c, elapsed_ns, measured_mflops)``.  ``a`` is M×K, ``b``
    is K×N with N ≤ the vector length (128 for 64-bit).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    m_rows, k_inner = a.shape
    k2, n_cols = b.shape
    if k_inner != k2:
        raise ValueError("inner dimensions disagree")
    elems = machine.specs.row_bytes // (precision // 8)
    if n_cols > elems:
        raise ValueError(f"N={n_cols} exceeds the vector length {elems}")
    if k_inner > 512:
        raise ValueError("K too large for the bank-B panel layout")

    parts = _row_partition(m_rows, len(machine))
    # Node 0 owns B initially; A rows are planted directly (they would
    # arrive with the problem decomposition).
    a_blocks = {
        i: a[start:start + count] for i, (start, count) in enumerate(parts)
    }
    program = HypercubeProgram(machine)
    flops_before = machine.total_flops()

    def main(ctx):
        node = ctx.node
        # Broadcast the B panel from node 0 (K rows of N doubles).
        panel = yield from ctx.broadcast(
            0, b if ctx.node_id == 0 else None, int(b.nbytes)
        )
        # Stage the panel into bank-B rows.
        for k in range(k_inner):
            node.write_row_floats(B_BASE_ROW + k, panel[k], precision)
        my_a = a_blocks[ctx.node_id]
        out = np.zeros((len(my_a), n_cols))
        for i in range(len(my_a)):
            # One fused chain per output row: the accumulator load
            # plus K B-row-load/SAXPY pairs dispatch as a single
            # streamed pipeline — one row-port hold, one pipeline
            # fill, one completion event (see ProcessorNode.run_chain)
            # instead of 2K+1 round trips through the event engine.
            node.write_row_floats(ACC_BASE_ROW, np.zeros(n_cols), precision)
            chain = node.vector_chain(precision)
            chain.load(ACC_BASE_ROW, reg=0)
            for k in range(k_inner):
                chain.load(B_BASE_ROW + k, reg=1)
                chain.op(
                    "SAXPY", [1, 0], scalars=(float(my_a[i, k]),),
                    length=n_cols, dst_reg=0,
                )
            yield from node.run_chain(chain)
            out[i] = node.vregs[0].elements(precision, count=n_cols)
        gathered = yield from ctx.gather(
            0, out, int(out.nbytes) or 8
        )
        return gathered

    results, elapsed = program.run(main)
    blocks = results[0]
    c = np.vstack([blocks[i] for i in range(len(machine))
                   if len(blocks[i])])
    flops = machine.total_flops() - flops_before
    mflops = flops / (elapsed / 1000.0) if elapsed else 0.0
    return c, elapsed, mflops
