"""All-pairs N-body on a ring pipeline — the Caltech-era workload.

The paper cites Fox & Otto's concurrent-processor decompositions; the
canonical one is gravitational N-body on a ring: bodies are block
distributed, a travelling copy of each block circulates around the
Gray-coded ring (P−1 single-hop shifts), and every node accumulates
the forces of the visiting block on its residents.

All the arithmetic runs through vector forms — including the
inverse-square-root, which uses the Newton–Raphson routine because
the hardware has neither divide nor sqrt.  Intensity is ~m flops per
transferred word, so blocks past the balance threshold scale.
"""

import numpy as np

from repro.fpu.routines import vector_rsqrt
from repro.runtime.api import HypercubeProgram
from repro.runtime.mapping import RingMapping

#: Plummer softening, squared (keeps self-interaction finite too).
SOFTENING_SQ = 1e-4


def nbody_reference(positions, masses):
    """Direct-summation accelerations (same softening), NumPy."""
    positions = np.asarray(positions, dtype=np.float64)
    masses = np.asarray(masses, dtype=np.float64)
    n = len(masses)
    acc = np.zeros_like(positions)
    for i in range(n):
        d = positions - positions[i]
        r2 = (d ** 2).sum(axis=1) + SOFTENING_SQ
        inv_r3 = r2 ** -1.5
        acc[i] = (masses[:, None] * d * inv_r3[:, None]).sum(axis=0)
    return acc


def distributed_nbody(machine, positions, masses):
    """Compute all-pairs accelerations across the machine.

    Returns ``(accelerations, elapsed_ns)``.  The body count must
    divide evenly over the nodes.
    """
    positions = np.asarray(positions, dtype=np.float64)
    masses = np.asarray(masses, dtype=np.float64)
    n = len(masses)
    p = len(machine)
    if n % p or positions.shape != (n, 2):
        raise ValueError("need n×2 positions dividing over the nodes")
    m = n // p
    ring = RingMapping(p) if p > 1 else None

    # Ring-rank r owns bodies [r·m, (r+1)·m).
    def rank_of_node(node_id):
        return ring.rank_of(node_id) if ring else 0

    program = HypercubeProgram(machine)

    def main(ctx):
        node = ctx.node
        vau = node.vau
        rank = rank_of_node(ctx.node_id)
        lo = rank * m
        my_pos = positions[lo:lo + m].copy()
        acc = np.zeros((m, 2))

        def accumulate(visit_pos, visit_mass):
            # For each resident, vector ops over the visiting block.
            for i in range(m):
                dx = yield from vau.execute(
                    "VSSUB", [visit_pos[:, 0]], scalars=(my_pos[i, 0],)
                )
                dy = yield from vau.execute(
                    "VSSUB", [visit_pos[:, 1]], scalars=(my_pos[i, 1],)
                )
                dx2 = yield from vau.execute("VMUL", [dx, dx])
                dy2 = yield from vau.execute("VMUL", [dy, dy])
                r2 = yield from vau.execute("VADD", [dx2, dy2])
                r2s = yield from vau.execute(
                    "VSADD", [r2], scalars=(SOFTENING_SQ,)
                )
                inv_r = yield from vector_rsqrt(vau, np.asarray(r2s))
                inv_r2 = yield from vau.execute("VMUL", [inv_r, inv_r])
                inv_r3 = yield from vau.execute("VMUL", [inv_r2, inv_r])
                w = yield from vau.execute("VMUL", [visit_mass, inv_r3])
                fx = yield from vau.execute("DOT", [w, np.asarray(dx)])
                fy = yield from vau.execute("DOT", [w, np.asarray(dy)])
                acc[i, 0] += float(fx)
                acc[i, 1] += float(fy)

        visit_pos = my_pos.copy()
        visit_mass = masses[lo:lo + m].copy()
        for shift in range(p):
            yield from accumulate(visit_pos, visit_mass)
            if shift < p - 1:
                nxt = ring.node_of((rank + 1) % p)
                yield from ctx.send(
                    nxt, (visit_pos, visit_mass),
                    int(visit_pos.nbytes + visit_mass.nbytes),
                    tag=f"nbody{shift}",
                )
                envelope = yield from ctx.recv(tag=f"nbody{shift}")
                visit_pos, visit_mass = envelope.payload
        return acc

    results, elapsed = program.run(main)
    acc = np.zeros((n, 2))
    for node_id, block in results.items():
        rank = rank_of_node(node_id)
        acc[rank * m:(rank + 1) * m] = block
    return acc, elapsed
