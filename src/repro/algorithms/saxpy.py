"""Distributed SAXPY — the paper's canonical full-speed kernel.

y ← α·x + y over vectors split across the machine in 128-element
(64-bit) rows.  Per row the node loads x into one vector register
(bank A), y into the other (bank B), runs the SAXPY form, and stores
the result row — the exact datapath of Figure 1, with the dual banks
supplying both operands each cycle.
"""

import numpy as np

from repro.runtime.api import HypercubeProgram

#: Memory layout (rows): x blocks in bank A, y in bank B, results after.
X_BASE_ROW = 0        # bank A (rows 0..255)
Y_BASE_ROW = 256      # bank B
OUT_BASE_ROW = 640    # bank B, above the y blocks


def saxpy_reference(alpha, x, y):
    """NumPy ground truth."""
    return alpha * np.asarray(x, dtype=np.float64) + np.asarray(
        y, dtype=np.float64
    )


def partition_rows(total_rows: int, nodes: int):
    """Contiguous block partition: list of (start_row, count) per node."""
    base = total_rows // nodes
    extra = total_rows % nodes
    out = []
    start = 0
    for i in range(nodes):
        count = base + (1 if i < extra else 0)
        out.append((start, count))
        start += count
    return out


def scatter_operands(machine, alpha, x, y, precision=64):
    """Plant x and y blocks in node memories; returns the partition."""
    elems_per_row = machine.specs.row_bytes // (precision // 8)
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y must have equal length")
    if x.size % elems_per_row:
        raise ValueError(
            f"vector length must be a multiple of {elems_per_row}"
        )
    total_rows = x.size // elems_per_row
    parts = partition_rows(total_rows, len(machine))
    for node, (start, count) in zip(machine.nodes, parts):
        for r in range(count):
            lo = (start + r) * elems_per_row
            hi = lo + elems_per_row
            node.write_row_floats(X_BASE_ROW + r, x[lo:hi], precision)
            node.write_row_floats(Y_BASE_ROW + r, y[lo:hi], precision)
    return parts


def collect_result(machine, parts, length, precision=64):
    """Read result rows back into one vector."""
    elems_per_row = machine.specs.row_bytes // (precision // 8)
    out = np.empty(length, dtype=np.float64)
    for node, (start, count) in zip(machine.nodes, parts):
        for r in range(count):
            lo = (start + r) * elems_per_row
            out[lo:lo + elems_per_row] = node.read_row_floats(
                OUT_BASE_ROW + r, count=elems_per_row, precision=precision
            )
    return out


def distributed_saxpy(machine, alpha, x, y, precision=64):
    """Run SAXPY across the machine.

    Returns ``(result, elapsed_ns, measured_mflops)``.
    """
    parts = scatter_operands(machine, alpha, x, y, precision)
    program = HypercubeProgram(machine)
    counts = {i: parts[i][1] for i in range(len(machine))}
    flops_before = machine.total_flops()

    def main(ctx):
        count = counts[ctx.node_id]
        node = ctx.node
        for r in range(count):
            yield from node.load_vector(X_BASE_ROW + r, reg=0)
            yield from node.load_vector(Y_BASE_ROW + r, reg=1)
            yield from node.vector_op(
                "SAXPY", [0, 1], scalars=(alpha,), precision=precision,
                dst_reg=0,
            )
            yield from node.store_vector(0, OUT_BASE_ROW + r)
        return count

    _results, elapsed = program.run(main)
    result = collect_result(machine, parts, np.asarray(x).size, precision)
    flops = machine.total_flops() - flops_before
    mflops = flops / (elapsed / 1000.0) if elapsed else 0.0
    return result, elapsed, mflops


def saxpy_single_node_time_model(n_elements: int, specs,
                                 precision: int = 64) -> int:
    """Analytic per-node time: per 128-element row, two loads + SAXPY
    + one store, sequential (no double buffering)."""
    elems = specs.row_bytes // (precision // 8)
    rows = -(-n_elements // elems)
    mul = (specs.multiplier_stages_64 if precision == 64
           else specs.multiplier_stages_32)
    fill = mul + specs.adder_stages
    per_row = (
        2 * specs.row_access_ns
        + (fill + elems - 1) * specs.cycle_ns
        + specs.row_access_ns
    )
    return rows * per_row
