"""Block bitonic sort on the hypercube.

Each node holds a block of keys; the bitonic network runs over cube
dimensions, so every compare-split exchange is a single link hop
(the Figure 3 argument again, this time for sorting networks).
Compare-split arithmetic is charged through the vector unit's
VMIN/VMAX forms plus a merge-cleanup pass; key movement is charged at
link rates.

The paper's memory section also notes sorting *records* by moving rows
physically — :func:`record_sort_time_model` prices that idiom.
"""

import math

import numpy as np

from repro.runtime.api import HypercubeProgram


def sort_reference(keys):
    """NumPy ground truth."""
    return np.sort(np.asarray(keys, dtype=np.float64))


def _compare_split_forms(node, mine, theirs, keep_low):
    """Process: merge two sorted blocks, keep one half.

    Charged as a VMIN + VMAX pair over the block plus log2(m) cleanup
    passes (the bitonic-merge cost of re-sorting the kept half).
    """
    m = len(mine)
    merged = np.sort(np.concatenate([mine, theirs]))
    kept = merged[:m] if keep_low else merged[m:]
    reversed_theirs = theirs[::-1].copy()
    low = yield from node.vau.execute("VMIN", [mine, reversed_theirs])
    high = yield from node.vau.execute("VMAX", [mine, reversed_theirs])
    del low, high  # timing carriers; values come from the exact merge
    passes = max(1, int(math.log2(m))) if m > 1 else 1
    for _ in range(passes - 1):
        yield from node.vau.execute("VMIN", [kept, kept])
    return kept


def _local_sort_forms(node, block):
    """Process: initial local sort, charged as a bitonic network —
    log2(m)·(log2(m)+1)/2 passes of length-m compare forms."""
    m = len(block)
    result = np.sort(block)
    if m > 1:
        stages = int(math.log2(m))
        for _ in range(stages * (stages + 1) // 2):
            yield from node.vau.execute("VMIN", [result, result])
    return result


def bitonic_sort(machine, keys):
    """Sort ``keys`` across the machine.

    Returns ``(sorted_keys, elapsed_ns)``.  The key count must divide
    evenly over the nodes.
    """
    keys = np.asarray(keys, dtype=np.float64)
    p = len(machine)
    if keys.size % p or keys.size == 0:
        raise ValueError("key count must divide over the nodes")
    m = keys.size // p
    d = machine.dimension
    blocks = {i: keys[i * m:(i + 1) * m].copy() for i in range(p)}
    program = HypercubeProgram(machine)

    def main(ctx):
        node = ctx.node
        me = ctx.node_id
        block = yield from _local_sort_forms(node, blocks[me])
        for i in range(d):
            ascending = ((me >> (i + 1)) & 1) == 0
            for j in reversed(range(i + 1)):
                partner = me ^ (1 << j)
                tag = f"sort{i}.{j}"
                yield from ctx.send(partner, block.copy(), 8 * m, tag=tag)
                envelope = yield from ctx.recv(tag=tag)
                theirs = envelope.payload
                keep_low = ascending == (me < partner)
                block = yield from _compare_split_forms(
                    node, block, theirs, keep_low
                )
        return block

    results, elapsed = program.run(main)
    out = np.concatenate([results[i] for i in range(p)])
    return out, elapsed


def record_sort_time_model(specs, records: int, record_bytes: int = None):
    """Price moving whole records physically vs. via CP pointers.

    Returns ``(row_move_ns_per_record, cp_move_ns_per_record)`` — the
    paper's "sorting records" argument for the 2560 MB/s row path.
    """
    record_bytes = record_bytes or specs.row_bytes
    rows = -(-record_bytes // specs.row_bytes)
    row_move = 2 * rows * specs.row_access_ns
    cp_move = (record_bytes // 8) * specs.gather_ns_per_element_64
    return row_move * records, cp_move * records
