"""Jacobi 5-point stencil on a mesh embedding.

A G×G grid is block-decomposed over a Px×Py process mesh, which the
Gray-code :class:`~repro.runtime.mapping.MeshMapping` places so every
halo exchange is a single link hop (Figure 3's "Meshes").  Each
iteration exchanges four halos and updates the interior with

    new = 0.25 · (north + south + east + west)

computed through the vector-form unit row by row (three VADDs and a
VSMUL per row).
"""

import numpy as np

from repro.runtime.api import HypercubeProgram
from repro.runtime.mapping import MeshMapping


def jacobi_reference(grid, iterations):
    """NumPy ground truth (fixed zero boundary)."""
    g = np.asarray(grid, dtype=np.float64).copy()
    for _ in range(iterations):
        new = g.copy()
        new[1:-1, 1:-1] = 0.25 * (
            g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:]
        )
        g = new
    return g


def distributed_jacobi(machine, grid, iterations, mesh_shape=None):
    """Run ``iterations`` Jacobi sweeps across the machine.

    Returns ``(grid, elapsed_ns)``.  The grid must divide evenly over
    the process mesh (default: the squarest power-of-two factorisation
    of the machine).
    """
    grid = np.asarray(grid, dtype=np.float64)
    size = len(machine)
    if mesh_shape is None:
        bits = machine.dimension
        bx = bits // 2
        mesh_shape = (1 << bx, 1 << (bits - bx))
    mapping = MeshMapping(mesh_shape)
    if mapping.size != size:
        raise ValueError("mesh shape must cover the whole machine")
    px, py = mapping.shape
    g_rows, g_cols = grid.shape
    if g_rows % px or g_cols % py:
        raise ValueError("grid must divide evenly over the process mesh")
    bx, by = g_rows // px, g_cols // py

    blocks = {}
    for cx in range(px):
        for cy in range(py):
            node_id = mapping.node_of((cx, cy))
            blocks[node_id] = grid[
                cx * bx:(cx + 1) * bx, cy * by:(cy + 1) * by
            ].copy()

    program = HypercubeProgram(machine)
    coords_of = {mapping.node_of((cx, cy)): (cx, cy)
                 for cx in range(px) for cy in range(py)}

    def main(ctx):
        node = ctx.node
        cx, cy = coords_of[ctx.node_id]
        block = blocks[ctx.node_id]
        for it in range(iterations):
            # Halo exchange with up to four mesh neighbours (each a
            # single hop under the Gray-code placement).
            halos = {}
            sides = {
                "north": ((cx - 1, cy), block[0, :], by),
                "south": ((cx + 1, cy), block[-1, :], by),
                "west": ((cx, cy - 1), block[:, 0], bx),
                "east": ((cx, cy + 1), block[:, -1], bx),
            }
            opposite = {"north": "south", "south": "north",
                        "east": "west", "west": "east"}
            for side, ((nx, ny), edge, count) in sides.items():
                if 0 <= nx < px and 0 <= ny < py:
                    dst = mapping.node_of((nx, ny))
                    yield from ctx.send(
                        dst, edge.copy(), 8 * count,
                        tag=f"halo{it}.{opposite[side]}",
                    )
            for side, ((nx, ny), _edge, count) in sides.items():
                if 0 <= nx < px and 0 <= ny < py:
                    envelope = yield from ctx.recv(tag=f"halo{it}.{side}")
                    halos[side] = envelope.payload
                else:
                    halos[side] = np.zeros(count)  # fixed boundary

            # Build the padded block and update row-by-row with forms.
            padded = np.zeros((bx + 2, by + 2))
            padded[1:-1, 1:-1] = block
            padded[0, 1:-1] = halos["north"]
            padded[-1, 1:-1] = halos["south"]
            padded[1:-1, 0] = halos["west"]
            padded[1:-1, -1] = halos["east"]
            new = block.copy()
            for r in range(bx):
                up = padded[r, 1:-1]
                down = padded[r + 2, 1:-1]
                left = padded[r + 1, :-2]
                right = padded[r + 1, 2:]
                t1 = yield from node.vau.execute("VADD", [up, down])
                t2 = yield from node.vau.execute("VADD", [left, right])
                t3 = yield from node.vau.execute("VADD", [t1, t2])
                row = yield from node.vau.execute(
                    "VSMUL", [t3], scalars=(0.25,)
                )
                new[r] = row
            # Global-boundary rows/cols stay fixed.
            if cx == 0:
                new[0] = block[0]
            if cx == px - 1:
                new[-1] = block[-1]
            if cy == 0:
                new[:, 0] = block[:, 0]
            if cy == py - 1:
                new[:, -1] = block[:, -1]
            block = new
        return block

    results, elapsed = program.run(main)
    out = np.zeros_like(grid)
    for node_id, block in results.items():
        cx, cy = coords_of[node_id]
        out[cx * bx:(cx + 1) * bx, cy * by:(cy + 1) * by] = block
    return out, elapsed
