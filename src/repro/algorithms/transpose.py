"""Distributed matrix transpose — the all-to-all stress test.

A row-block-distributed matrix is transposed by the classic exchange:
node i sends its (i, j) tile to node j, every pair at once — the
densest communication pattern a hypercube sees, each message e-cube
routed with real store-and-forward timing.  Locally, tiles land in
memory rows and the on-node re-arrangement is charged to the row port
(the paper's physical-data-movement idiom once more).
"""

import numpy as np

from repro.runtime.api import HypercubeProgram


def transpose_reference(a):
    """NumPy ground truth."""
    return np.asarray(a, dtype=np.float64).T.copy()


def distributed_transpose(machine, a):
    """Transpose ``a`` (row-block in, row-block out).

    Returns ``(a_t, elapsed_ns)``.  Both dimensions must divide by the
    node count.
    """
    a = np.asarray(a, dtype=np.float64)
    rows, cols = a.shape
    p = len(machine)
    if rows % p or cols % p:
        raise ValueError("matrix dimensions must divide the node count")
    rb = rows // p   # row-block height per node

    blocks = {i: a[i * rb:(i + 1) * rb, :].copy() for i in range(p)}
    program = HypercubeProgram(machine)

    def main(ctx):
        node = ctx.node
        me = ctx.node_id
        mine = blocks[me]
        cb = cols // p   # tile width going to each destination
        # Tile (me, j): my rows, destination j's future rows.
        outgoing = {
            j: mine[:, j * cb:(j + 1) * cb].copy() for j in range(p)
        }
        payload_bytes = max(8, int(outgoing[0].nbytes))
        received = yield from ctx.alltoall(outgoing, payload_bytes)
        # Rebuild my block of the transpose: row r of Aᵀ is column r
        # of A; my rows of Aᵀ are indices me·cb .. me·cb+cb−1... each
        # received tile from src covers columns src·rb..+rb.
        out = np.empty((cb, rows))
        for src, tile in received.items():
            out[:, src * rb:(src + 1) * rb] = tile.T
        # Charge the local re-arrangement: every output element moved
        # once through the row port (rows of 128 elements).
        total_rows = -(-out.size // machine.specs.vector_length_64)
        yield from node.memory.row_port.access(2 * total_rows)
        return out

    results, elapsed = program.run(main)
    cb = cols // p
    out = np.empty((cols, rows))
    for i in range(p):
        out[i * cb:(i + 1) * cb, :] = results[i]
    return out, elapsed
