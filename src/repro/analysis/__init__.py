"""Analysis used by the benchmark harness.

Public surface:

* :mod:`repro.analysis.performance` — rates, efficiency, speedup.
* :mod:`repro.analysis.balance` — the 1 : 13 : 130 derivation.
* :mod:`repro.analysis.overlap` — gather/compute overlap curves.
* :mod:`repro.analysis.checkpoint_opt` — snapshot-interval optimum.
* :class:`Table`, :func:`series` — bench output formatting.
"""

from repro.analysis.balance import (
    PAPER_RATIO,
    PAPER_TIMES_US,
    balance_table,
    derived_ratio,
    derived_times_ns,
    ops_to_hide_gather,
    ops_to_hide_link,
)
from repro.analysis.checkpoint_opt import (
    best_interval,
    expected_overhead_fraction,
    interval_sweep,
    mtbf_for_interval,
    optimal_interval_band,
    simulate_checkpointing,
    young_interval_s,
)
from repro.analysis.overlap import (
    knee_ops,
    link_intensity_model,
    measure_overlap,
    overlap_efficiency_model,
    overlap_sweep,
)
from repro.analysis.performance import (
    bandwidth_mb_s,
    efficiency,
    mflops,
    parallel_efficiency,
    relative_error,
    seconds,
    speedup,
)
from repro.analysis.report import Table, series
from repro.analysis.scaled_speedup import (
    amdahl_speedup,
    gustafson_speedup,
    measured_scaled_saxpy,
    measured_scaled_stencil,
)
from repro.analysis.tracing import (
    TraceProbe,
    all_fabric_links,
    busiest_component,
    engine_stats,
    engine_stats_table,
    flops_breakdown,
    machine_utilization,
    node_utilization,
    recovery_stats,
    reliability_stats,
    service_stats,
    service_stats_table,
    sweep_timing_table,
    utilization_table,
)

__all__ = [
    "PAPER_RATIO",
    "PAPER_TIMES_US",
    "Table",
    "TraceProbe",
    "all_fabric_links",
    "amdahl_speedup",
    "balance_table",
    "gustafson_speedup",
    "measured_scaled_saxpy",
    "measured_scaled_stencil",
    "bandwidth_mb_s",
    "best_interval",
    "busiest_component",
    "engine_stats",
    "engine_stats_table",
    "flops_breakdown",
    "machine_utilization",
    "node_utilization",
    "utilization_table",
    "derived_ratio",
    "derived_times_ns",
    "efficiency",
    "expected_overhead_fraction",
    "interval_sweep",
    "knee_ops",
    "link_intensity_model",
    "measure_overlap",
    "mflops",
    "mtbf_for_interval",
    "ops_to_hide_gather",
    "ops_to_hide_link",
    "optimal_interval_band",
    "overlap_efficiency_model",
    "overlap_sweep",
    "parallel_efficiency",
    "recovery_stats",
    "relative_error",
    "reliability_stats",
    "seconds",
    "series",
    "service_stats",
    "service_stats_table",
    "sweep_timing_table",
    "simulate_checkpointing",
    "speedup",
    "young_interval_s",
]
