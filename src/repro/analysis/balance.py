"""The paper's balance-ratio analysis (§II, the 1 : 13 : 130 table).

"A convenient way to interpret the relative bandwidths is with respect
to the arithmetic processing time for 64-bit operations:

    (Arithmetic Time) : (Gather Time) : (Link Transfer Time)
         0.125 µs          1.6 µs           16 µs
            1       :        13      :       130"

These functions derive the three times from the machine model (not
from the table) so bench E5 can report paper-vs-derived side by side.
"""

from repro.links.frame import FrameSpec

#: The paper's published row, for comparison.
PAPER_RATIO = (1.0, 13.0, 130.0)
PAPER_TIMES_US = (0.125, 1.6, 16.0)


def derived_times_ns(specs):
    """(arithmetic, gather, link) ns per 64-bit operand from the model.

    * arithmetic: one pipe result per cycle;
    * gather: two reads + two writes through the word port;
    * link: eight framed bytes on the wire (the paper rounds the link
      rate down to a flat 0.5 MB/s, giving 16 µs; the framing model
      gives ≈13.9 µs — same decade, reported side by side).
    """
    frame = FrameSpec.from_specs(specs)
    return (
        specs.cycle_ns,
        specs.gather_ns_per_element_64,
        frame.transfer_ns(8),
    )


def derived_ratio(specs):
    """The derived times normalised to arithmetic time."""
    arith, gather, link = derived_times_ns(specs)
    return (1.0, gather / arith, link / arith)


def ops_to_hide_gather(specs) -> float:
    """Vector operations per element needed to hide its gather
    (the paper: 'a vector should enter into about 13 operations')."""
    return specs.gather_ns_per_element_64 / specs.cycle_ns


def ops_to_hide_link(specs) -> float:
    """Operations per 64-bit word needed to hide its link transfer
    (the paper: 'roughly 130 operations ... from every 64-bit word')."""
    frame = FrameSpec.from_specs(specs)
    return frame.transfer_ns(8) / specs.cycle_ns


def balance_table(specs):
    """Rows of (quantity, paper_value, derived_value) for bench E5."""
    arith, gather, link = derived_times_ns(specs)
    derived = derived_ratio(specs)
    return [
        ("arithmetic_us", PAPER_TIMES_US[0], arith / 1000.0),
        ("gather_us", PAPER_TIMES_US[1], gather / 1000.0),
        ("link_us", PAPER_TIMES_US[2], link / 1000.0),
        ("ratio_gather", PAPER_RATIO[1], derived[1]),
        ("ratio_link", PAPER_RATIO[2], derived[2]),
    ]
