"""Checkpoint-interval analysis (the paper's "about 10 minutes").

The paper asserts 10 minutes is "a good compromise between time spent
to record memory and interval between restart points".  With a 15 s
snapshot, Young's approximation

    T_opt ≈ sqrt(2 · C · MTBF)

puts the optimum near 10 minutes for an MTBF around 3.3 hours — a
plausible figure for a rack of mid-80s hardware.  Bench E9 sweeps the
interval under simulated failures and checks that (a) the measured
optimum matches Young's, and (b) 10 minutes sits within a few percent
of optimal overhead across a broad MTBF range, i.e. the paper's advice
is sound.
"""

import math

import numpy as np


def young_interval_s(snapshot_s: float, mtbf_s: float) -> float:
    """Young's approximation of the optimal checkpoint interval."""
    if snapshot_s <= 0 or mtbf_s <= 0:
        raise ValueError("snapshot time and MTBF must be positive")
    return math.sqrt(2.0 * snapshot_s * mtbf_s)


def mtbf_for_interval(snapshot_s: float, interval_s: float) -> float:
    """The MTBF for which a given interval is Young-optimal."""
    return interval_s ** 2 / (2.0 * snapshot_s)


def expected_overhead_fraction(interval_s: float, snapshot_s: float,
                               mtbf_s: float, restart_s: float = 0.0
                               ) -> float:
    """First-order expected overhead of checkpointing at an interval.

    Per cycle of useful work T: snapshot cost C, plus expected rework
    (T + C)/2 and restart R when a failure lands in the cycle
    (probability ≈ (T + C)/MTBF).
    """
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    cycle = interval_s + snapshot_s
    p_fail = min(1.0, cycle / mtbf_s)
    lost = p_fail * (cycle / 2.0 + restart_s)
    return (snapshot_s + lost) / interval_s


def simulate_checkpointing(work_s: float, interval_s: float,
                           snapshot_s: float, mtbf_s: float,
                           restart_s: float = 60.0, seed: int = 0
                           ) -> dict:
    """Event-driven availability simulation (seconds granularity).

    Runs ``work_s`` of useful computation with snapshots every
    ``interval_s``; exponential failures roll the state back to the
    last snapshot and charge a restart.  Returns wall time, counts,
    and the overhead fraction.
    """
    if min(work_s, interval_s, snapshot_s, mtbf_s) <= 0:
        raise ValueError("all durations must be positive")
    rng = np.random.default_rng(seed)
    wall = 0.0
    done = 0.0          # committed (checkpointed) work
    progress = 0.0      # work since the last checkpoint
    snapshots = 0
    failures = 0
    next_failure = float(rng.exponential(mtbf_s))

    while done < work_s:
        # Next milestone: finish, snapshot, or failure.
        to_snapshot = interval_s - progress
        to_finish = work_s - done - progress
        step = min(to_snapshot, to_finish)
        if wall + step < next_failure:
            wall += step
            progress += step
            if progress >= interval_s and done + progress < work_s:
                # Take a snapshot (failures during it lose the cycle).
                if wall + snapshot_s < next_failure:
                    wall += snapshot_s
                    done += progress
                    progress = 0.0
                    snapshots += 1
                else:
                    wall = next_failure + restart_s
                    progress = 0.0
                    failures += 1
                    next_failure = wall + float(rng.exponential(mtbf_s))
            elif done + progress >= work_s:
                done += progress
                progress = 0.0
        else:
            # Failure mid-work: lose progress since the last snapshot.
            wall = next_failure + restart_s
            progress = 0.0
            failures += 1
            next_failure = wall + float(rng.exponential(mtbf_s))

    return {
        "wall_s": wall,
        "snapshots": snapshots,
        "failures": failures,
        "overhead_fraction": (wall - work_s) / work_s,
    }


def interval_sweep(work_s: float, intervals_s, snapshot_s: float,
                   mtbf_s: float, restart_s: float = 60.0,
                   seeds=(0, 1, 2)) -> list:
    """Mean overhead per interval: [(interval, overhead_fraction)]."""
    rows = []
    for interval in intervals_s:
        overheads = [
            simulate_checkpointing(
                work_s, interval, snapshot_s, mtbf_s, restart_s, seed
            )["overhead_fraction"]
            for seed in seeds
        ]
        rows.append((interval, sum(overheads) / len(overheads)))
    return rows


def best_interval(rows) -> float:
    """Interval with the lowest overhead in a sweep."""
    return min(rows, key=lambda r: r[1])[0]


def optimal_interval_band(intervals_s, snapshot_s: float, mtbf_s: float,
                          restart_s: float = 0.0,
                          tolerance: float = 0.25):
    """The analytic optimum's *band* over a candidate grid.

    Young's curve is flat near its minimum, so a measured optimum on a
    coarse grid can legitimately land one notch away from the analytic
    argmin.  This returns ``(lo_s, hi_s)``: the grid intervals whose
    *predicted* overhead (via :func:`expected_overhead_fraction`) is
    within ``(1 + tolerance)`` of the best predicted overhead.  An
    experiment's measured optimum is consistent with the model when it
    falls inside the band.
    """
    if not intervals_s:
        raise ValueError("need at least one candidate interval")
    predicted = [
        (interval,
         expected_overhead_fraction(interval, snapshot_s, mtbf_s,
                                    restart_s))
        for interval in intervals_s
    ]
    floor = min(overhead for _, overhead in predicted)
    inside = [interval for interval, overhead in predicted
              if overhead <= floor * (1.0 + tolerance)]
    return (min(inside), max(inside))
