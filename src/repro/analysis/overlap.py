"""Gather/compute overlap analysis (the paper's ~13-ops rule).

The CP gathers operands through the random-access port while the
vector unit computes out of the row-fed registers — different ports,
genuine overlap.  If each gathered element feeds ``f`` vector
operations, arithmetic hides the gather when

    f · 125 ns  ≥  1600 ns   ⇔   f ≥ 12.8 ≈ 13.

:func:`overlap_efficiency_model` is the analytic curve;
:func:`measure_overlap` produces the same curve from simulation by
actually racing a gather against vector work on one node — the knee
must land at ~13 either way (bench E6).
"""

import numpy as np

from repro.core.node import ProcessorNode
from repro.events import Engine


def overlap_efficiency_model(ops_per_element: float, specs) -> float:
    """Fraction of peak arithmetic rate sustained at a given intensity.

    With f ops per gathered element, each element costs
    max(f·cycle, gather) of wall time for f·cycle of useful pipe time.
    """
    if ops_per_element <= 0:
        return 0.0
    useful = ops_per_element * specs.cycle_ns
    wall = max(useful, specs.gather_ns_per_element_64)
    return useful / wall


def knee_ops(specs) -> float:
    """The intensity where the model reaches 100% (≈12.8 → 'about 13')."""
    return specs.gather_ns_per_element_64 / specs.cycle_ns


def measure_overlap(ops_per_element: int, specs, elements: int = 512):
    """Simulate a gather racing vector work at a given intensity.

    Per 128-element batch the CP gathers the *next* batch while the
    vector unit performs ``ops_per_element`` VADD passes over the
    current one.  Returns (elapsed_ns, useful_vector_ns, efficiency).
    """
    if ops_per_element < 1:
        raise ValueError("need at least one op per element")
    engine = Engine()
    node = ProcessorNode(engine, specs)
    batch = specs.vector_length_64
    batches = elements // batch
    if batches < 1:
        raise ValueError("elements must cover at least one batch")
    addresses = [64 * i for i in range(batch)]
    data = np.ones(batch)

    def worker():
        for _ in range(batches):
            ops = [
                node.start_vector_op("VADD", [0, 1])
                for _ in range(ops_per_element)
            ]
            yield from node.gather(addresses, 0x80000)
            yield engine.all_of(ops)

    node.vregs[0].set_elements(data, 64)
    node.vregs[1].set_elements(data, 64)
    proc = engine.process(worker())
    engine.run(until=proc)
    elapsed = engine.now
    useful = node.vau.busy_ns
    return elapsed, useful, useful / elapsed if elapsed else 0.0


def overlap_sweep(specs, intensities, elements: int = 512):
    """Measured efficiency across intensities: list of
    (ops_per_element, model_efficiency, measured_efficiency)."""
    rows = []
    for f in intensities:
        _elapsed, _useful, measured = measure_overlap(f, specs, elements)
        rows.append((f, overlap_efficiency_model(f, specs), measured))
    return rows


def link_intensity_model(flops_per_word: float, specs) -> float:
    """Same overlap argument for link traffic: ~130 flops per 64-bit
    word moved between nodes sustains peak."""
    from repro.links.frame import FrameSpec

    if flops_per_word <= 0:
        return 0.0
    useful = flops_per_word * specs.cycle_ns
    wall = max(useful, FrameSpec.from_specs(specs).transfer_ns(8))
    return useful / wall
