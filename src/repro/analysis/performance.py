"""Performance accounting helpers used by benches and experiments."""

from repro.core.specs import NS_PER_S


def mflops(flops: int, elapsed_ns: int) -> float:
    """Million floating-point operations per second."""
    if elapsed_ns <= 0:
        return 0.0
    return flops / (elapsed_ns / 1000.0)


def efficiency(measured_mflops: float, peak_mflops: float) -> float:
    """Fraction of peak achieved."""
    if peak_mflops <= 0:
        return 0.0
    return measured_mflops / peak_mflops


def speedup(serial_ns: int, parallel_ns: int) -> float:
    """Classic speedup."""
    if parallel_ns <= 0:
        return 0.0
    return serial_ns / parallel_ns


def parallel_efficiency(serial_ns: int, parallel_ns: int,
                        processors: int) -> float:
    """Speedup per processor."""
    if processors <= 0:
        return 0.0
    return speedup(serial_ns, parallel_ns) / processors


def bandwidth_mb_s(nbytes: int, elapsed_ns: int) -> float:
    """Bytes over time, in the paper's decimal MB/s."""
    if elapsed_ns <= 0:
        return 0.0
    return nbytes / elapsed_ns * 1000.0


def seconds(elapsed_ns: int) -> float:
    """Nanoseconds → seconds."""
    return elapsed_ns / NS_PER_S


def relative_error(measured: float, expected: float) -> float:
    """|measured − expected| / |expected| (0 when both are zero)."""
    if expected == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - expected) / abs(expected)
