"""Plain-text tables for the benchmark harness.

Every bench regenerates a table or figure from the paper; these
helpers print them in a consistent fixed-width format so the bench
output reads like the paper's evaluation section.
"""


def _jsonable(value):
    """Coerce a cell to a JSON-serialisable value (numpy scalars and
    other numerics become Python ints/floats; everything else a str)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


class Table:
    """A fixed-width table with a title."""

    def __init__(self, title: str, headers):
        self.title = title
        self.headers = list(headers)
        self.rows = []
        #: Unformatted cell values, row by row (for JSON emission).
        self.raw_rows = []

    def add(self, *cells):
        """Append one row (must match the header width)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.raw_rows.append(list(cells))
        self.rows.append([_format_cell(c) for c in cells])
        return self

    def to_dict(self) -> dict:
        """A JSON-ready view: title, headers, and raw row values."""
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[_jsonable(c) for c in row] for row in self.raw_rows],
        }

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            h.ljust(w) for h, w in zip(self.headers, widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(
                c.rjust(w) for c, w in zip(row, widths)
            ))
        return "\n".join(lines)

    def show(self) -> str:
        """Print and return the rendering."""
        text = self.render()
        print()
        print(text)
        return text

    def __str__(self):
        return self.render()


def series(title: str, pairs, x_label="x", y_label="y") -> Table:
    """A two-column table for figure-style (x, y) series."""
    table = Table(title, [x_label, y_label])
    for x, y in pairs:
        table.add(x, y)
    return table
