"""Fixed-size vs scaled speedup.

The paper closes on "performance scalable over three orders of
magnitude" — and its first author went on to formalise *why* that is
achievable even when fixed-size (Amdahl) speedup is not: scale the
problem with the machine (Gustafson, "Reevaluating Amdahl's Law",
1988).  This module provides both laws and measured scaled-speedup
harnesses over the simulator, connecting the 1986 machine to the 1988
argument it motivated.
"""

import numpy as np

from repro.algorithms.saxpy import distributed_saxpy
from repro.algorithms.stencil import distributed_jacobi


def amdahl_speedup(serial_fraction: float, processors: int) -> float:
    """Fixed-size speedup: 1 / (s + (1−s)/P)."""
    if not 0 <= serial_fraction <= 1:
        raise ValueError("serial fraction must be in [0, 1]")
    if processors < 1:
        raise ValueError("need at least one processor")
    return 1.0 / (serial_fraction + (1 - serial_fraction) / processors)


def gustafson_speedup(serial_fraction: float, processors: int) -> float:
    """Scaled speedup: s + (1−s)·P."""
    if not 0 <= serial_fraction <= 1:
        raise ValueError("serial fraction must be in [0, 1]")
    if processors < 1:
        raise ValueError("need at least one processor")
    return serial_fraction + (1 - serial_fraction) * processors


def measured_scaled_saxpy(machine_factory, dims, elements_per_node):
    """Scaled-speedup measurement: work grows with the machine.

    For each cube dimension, runs a SAXPY of ``elements_per_node × P``
    elements on P nodes and reports
    (P, elapsed_ns, scaled_speedup = P · t_ref / t_P) where t_ref is
    the single-node time on the single-node problem.  Perfectly
    scalable work keeps elapsed constant, so scaled speedup = P.
    """
    rows = []
    t_ref = None
    for dim in dims:
        machine = machine_factory(dim)
        p = len(machine)
        n = elements_per_node * p
        _r, elapsed, _m = distributed_saxpy(
            machine, 2.0, np.ones(n), np.ones(n)
        )
        if t_ref is None:
            t_ref = elapsed
        rows.append((p, elapsed, p * t_ref / elapsed))
    return rows


def measured_scaled_stencil(machine_factory, dims, block: int = 8,
                            iterations: int = 2):
    """Scaled stencil: the global grid grows with the machine (a
    ``block``-wide strip per node along one axis)."""
    rows = []
    t_ref = None
    for dim in dims:
        machine = machine_factory(dim)
        p = len(machine)
        bits = machine.dimension
        px, py = 1 << (bits // 2), 1 << (bits - bits // 2)
        grid = np.ones((block * px, block * py))
        _r, elapsed = distributed_jacobi(
            machine, grid, iterations, mesh_shape=(px, py)
        )
        if t_ref is None:
            t_ref = elapsed
        rows.append((p, elapsed, p * t_ref / elapsed))
    return rows
