"""Machine utilisation and simulator-kernel profiling.

Every hardware component keeps busy-time counters; this module rolls
them up into per-node and machine-wide utilisation tables, so an
experiment can say *where the time went* — pipes, ports, or wires.
This is how benches like E11 show "the row port is nowhere near the
bottleneck" with a number.

It also rolls up the event kernel's own profiling counters
(:func:`engine_stats`), so a perf investigation can say where the
*simulator's* wall-clock time goes: how many events were processed,
how many schedules paid for a heap push, and how many rode the
zero-delay URGENT fast lane instead.
"""

from repro.analysis.report import Table


class TraceProbe:
    """A structural event trace: timestamped marks from model code.

    The conformance layer (:mod:`repro.testing`) runs the same model
    on the fast and the reference kernel and demands identical traces;
    a probe is the capture side of that contract.  Model code calls
    :meth:`mark` at interesting points (a rendezvous completed, a
    transfer finished, a process observed a value) and the probe
    records ``(simulated_ns, label, payload)`` tuples.

    Payloads must be JSON-able (ints, strings, lists) so traces can be
    pinned as golden files and diffed across kernels and refactors.
    """

    def __init__(self, engine):
        self.engine = engine
        self.records = []

    def mark(self, label, *payload):
        """Record one trace point at the current simulated time."""
        self.records.append([self.engine.now, label, list(payload)])

    def as_json(self) -> list:
        """The trace as a JSON-able list (a copy)."""
        return [list(r) for r in self.records]

    def __len__(self):
        return len(self.records)

    def __repr__(self):
        return f"<TraceProbe records={len(self.records)}>"


def node_utilization(node) -> dict:
    """Busy fractions of one node's components (0..1)."""
    engine = node.engine
    now = engine.now or 1
    wires = [w for port in node.comm.ports for w in (port.tx, port.rx)]
    return {
        "adder": node.vau.adder.busy_ns / now,
        "multiplier": node.vau.multiplier.busy_ns / now,
        "vector_unit": node.vau.busy_ns / now,
        "word_port": node.memory.word_port.busy_ns / now,
        "row_port": node.memory.row_port.busy_ns / now,
        "links": (sum(w.busy_ns for w in wires) / len(wires) / now
                  if wires else 0.0),
    }


def machine_utilization(machine) -> dict:
    """Mean busy fractions across all nodes."""
    per_node = [node_utilization(n) for n in machine.nodes]
    keys = per_node[0].keys()
    return {
        key: sum(d[key] for d in per_node) / len(per_node)
        for key in keys
    }


def utilization_table(machine, title="Machine utilisation") -> Table:
    """A rendered utilisation summary."""
    util = machine_utilization(machine)
    table = Table(title, ["component", "mean busy fraction"])
    for key in ("adder", "multiplier", "vector_unit", "word_port",
                "row_port", "links"):
        table.add(key, util[key])
    return table


def busiest_component(machine) -> str:
    """Name of the component with the highest mean utilisation —
    the bottleneck indicator."""
    util = machine_utilization(machine)
    util.pop("vector_unit")  # aggregate of adder+multiplier
    return max(util, key=util.get)


def engine_stats(engine) -> dict:
    """The event kernel's profiling counters, rolled up.

    Keys: ``events_processed`` (events and resume records fired),
    ``heap_pushes`` (schedules through the priority queue),
    ``fast_lane_hits`` (zero-delay URGENT schedules that bypassed the
    heap), ``fast_lane_fraction`` (lane hits over all schedules),
    ``events_per_sim_us`` (event density in simulated time),
    ``fast_kernel`` (False when ``REPRO_SLOW_KERNEL`` forced the
    pure-heap reference path), ``kernel_tier`` (the engine's tier:
    reference, fast, turbo, or vector), ``fault_events`` (records in
    the engine's installed :class:`~repro.events.FaultLog`; 0 without
    one), ``cp_cache`` — the decoded-chain and translated-block
    counters summed over every CP registered with the engine via
    ``as_process`` (all-zero when no CP ran, or on the reference
    tier, which caches nothing), ``columnar`` — the vector tier's
    SoA queue counters (``array_pops`` — pops served from a sorted
    ready run, ``heap_pops`` — retail-heap fallback pops,
    ``bulk_flushes``/``bulk_flushed`` — vectorized staging sorts and
    the entries they ordered, ``retail_flushed`` — entries that fell
    back to per-entry heap pushes, ``staged_pops`` — pops served
    straight from the staging columns without any flush,
    ``side_table_size`` — object residency in the event side-tables
    right now; ``None`` on other tiers), and ``vau_batch`` — the
    batched micro-sequencer counters summed over every vector unit
    built on the engine (``chains``, ``batched_forms``,
    ``batched_elements``, ``screens_elided`` are all-zero on tiers
    that dispatch per-op; ``vau_chain_model``/``chain_ops_fused``
    count model-layer fused chains and the ops they fused, and tick
    identically on every tier).
    """
    scheduled = engine.heap_pushes + engine.lane_hits
    fault_log = engine.fault_log
    cp_cache = {
        "cpus": len(engine.cp_cpus),
        "decoded_hits": 0,
        "decoded_misses": 0,
        "decoded_invalidations": 0,
        "block_hits": 0,
        "block_translations": 0,
        "block_chains": 0,
        "block_invalidations": 0,
    }
    for cpu in engine.cp_cpus:
        counters = cpu.cache_stats()
        for key in cp_cache:
            if key != "cpus":
                cp_cache[key] += counters[key]
    cq = getattr(engine, "_cq", None)
    columnar = cq.stats() if cq is not None else None
    vau_batch = {
        "vaus": len(getattr(engine, "vaus", ())),
        "chains": 0,
        "batched_forms": 0,
        "batched_elements": 0,
        "screens_elided": 0,
        "vau_chain_model": 0,
        "chain_ops_fused": 0,
    }
    for vau in getattr(engine, "vaus", ()):
        vau_batch["chains"] += vau.chains
        vau_batch["batched_forms"] += vau.batched_forms
        vau_batch["batched_elements"] += vau.batched_elements
        vau_batch["screens_elided"] += vau.screens_elided
        vau_batch["vau_chain_model"] += vau.model_chains
        vau_batch["chain_ops_fused"] += vau.model_chain_ops
    return {
        "events_processed": engine.events_processed,
        "heap_pushes": engine.heap_pushes,
        "fast_lane_hits": engine.lane_hits,
        "fast_lane_fraction": (
            engine.lane_hits / scheduled if scheduled else 0.0
        ),
        "events_per_sim_us": (
            engine.events_processed / (engine.now / 1000.0)
            if engine.now else 0.0
        ),
        "fast_kernel": engine.fast_kernel,
        "kernel_tier": engine.kernel_tier,
        "fault_events": len(fault_log) if fault_log is not None else 0,
        "cp_cache": cp_cache,
        "columnar": columnar,
        "vau_batch": vau_batch,
    }


def engine_stats_table(engine, title="Event-kernel profile") -> Table:
    """A rendered summary of one engine's profiling counters."""
    stats = engine_stats(engine)
    table = Table(title, ["counter", "value"])
    for key in ("events_processed", "heap_pushes", "fast_lane_hits",
                "fast_lane_fraction", "events_per_sim_us", "fast_kernel",
                "kernel_tier", "fault_events"):
        table.add(key, stats[key])
    cp_cache = stats["cp_cache"]
    if cp_cache["cpus"]:
        for key in sorted(cp_cache):
            table.add(f"cp_{key}", cp_cache[key])
    columnar = stats["columnar"]
    if columnar is not None:
        for key in sorted(columnar):
            table.add(f"columnar_{key}", columnar[key])
    vau_batch = stats["vau_batch"]
    if vau_batch["vaus"]:
        for key in sorted(vau_batch):
            table.add(f"vau_{key}", vau_batch[key])
    return table


def all_fabric_links(machine):
    """Every FabricSublink in the machine: hypercube, module threads,
    and the system ring."""
    links = [machine.sublinks[key] for key in sorted(machine.sublinks)]
    for module in machine.modules:
        links.extend(module.thread)
    links.extend(machine.ring_links)
    return links


def reliability_stats(transport) -> dict:
    """Roll-up of a :class:`~repro.runtime.transport.ReliableTransport`
    run: delivery, retry/redelivery, checksum and staging-parity
    counters, plus machine-wide frame corruption/loss totals."""
    machine = transport.machine
    links = all_fabric_links(machine)
    return {
        "delivered": transport.delivered,
        "retries": transport.retries,
        "redeliveries": transport.redeliveries,
        "checksum_failures": transport.checksum_failures,
        "acks_sent": transport.acks_sent,
        "naks_sent": transport.naks_sent,
        "stale_drops": transport.stale_drops,
        "halted_drops": transport.halted_drops,
        "sends_failed": transport.sends_failed,
        "relay_parity_faults": transport.relay_parity_faults,
        "mailbox_flushes": transport.mailbox_flushes,
        "epoch": transport.epoch,
        "frames_corrupted": sum(l.frames_corrupted for l in links),
        "frames_lost": sum(l.frames_lost for l in links),
    }


def recovery_stats(run) -> dict:
    """Roll-up of a :class:`~repro.system.recovery.FaultTolerantRun`:
    the run's own stats plus detection latencies and per-recovery
    restore costs."""
    stats = dict(run.stats())
    stats["detection_latency_ns"] = [
        d.latency_ns for d in run.monitor.detections
    ]
    stats["mean_detection_latency_ns"] = run.monitor.mean_latency_ns()
    stats["restore_ns"] = [
        r.restore_ns for r in run.coordinator.recoveries
    ]
    stats["recovery_elapsed_ns"] = [
        r.elapsed_ns for r in run.coordinator.recoveries
    ]
    return stats


def _latency_rollup(samples) -> dict:
    """Mean/max/total over a per-job latency list (seconds)."""
    samples = list(samples)
    return {
        "jobs": len(samples),
        "total_s": sum(samples),
        "mean_s": (sum(samples) / len(samples)) if samples else 0.0,
        "max_s": max(samples) if samples else 0.0,
    }


def service_stats(service) -> dict:
    """Roll-up of a :class:`~repro.service.SimulationService` run.

    Accepts the service itself or its raw ``stats()`` dict.  Keys:
    submission counters (``submissions``, ``cache_hits``,
    ``coalesced``, ``executed``, ``failed``, ``cancelled``,
    ``rejected``), the served-without-simulating rate
    (``served_from_cache_fraction`` — cache hits over terminal
    submissions), dedup proof (``coalesced``), queue pressure
    (``queue_depth``, ``queue_depth_hwm``), per-job latency rollups
    (``queue_latency``, ``run_latency``), and the cache tier's own
    counters under ``cache`` (memory/disk hits, misses, stores,
    corruption and size evictions) or ``None`` when the service runs
    uncached.
    """
    raw = service if isinstance(service, dict) else service.stats()
    if "queue_latency" in raw:
        return raw  # already rolled up — idempotent
    answered = raw["cache_hits"] + raw["executed"] + raw["failed"]
    return {
        "submissions": raw["submissions"],
        "cache_hits": raw["cache_hits"],
        "coalesced": raw["coalesced"],
        "executed": raw["executed"],
        "failed": raw["failed"],
        "cancelled": raw["cancelled"],
        "rejected": raw["rejected"],
        "quota_rejected": raw.get("quota_rejected", 0),
        "shed": raw.get("shed", 0),
        "worker_retries": raw.get("worker_retries", 0),
        "retried_ok": raw.get("retried_ok", 0),
        "served_from_cache_fraction": (
            raw["cache_hits"] / answered if answered else 0.0
        ),
        "queue_depth": raw["queue_depth"],
        "queue_depth_hwm": raw["queue_depth_hwm"],
        "queue_latency": _latency_rollup(raw["queued_s"]),
        "run_latency": _latency_rollup(raw["run_s"]),
        "cache": raw["cache"],
        "tenants": raw.get("tenants", {}),
        "journal": raw.get("journal"),
        "net": raw.get("net"),
    }


def service_stats_table(service, title="Service profile") -> Table:
    """A rendered summary of one service's counters."""
    stats = service_stats(service)
    table = Table(title, ["counter", "value"])
    for key in ("submissions", "cache_hits", "coalesced", "executed",
                "failed", "cancelled", "rejected", "quota_rejected",
                "shed", "worker_retries", "retried_ok",
                "served_from_cache_fraction", "queue_depth",
                "queue_depth_hwm"):
        table.add(key, stats.get(key, 0))
    for family in ("queue_latency", "run_latency"):
        rollup = stats[family]
        for key in ("total_s", "mean_s", "max_s"):
            table.add(f"{family}_{key}", rollup[key])
    cache = stats["cache"]
    if cache is not None:
        for key in ("memory_hits", "disk_hits", "misses", "stores",
                    "corrupt_evictions", "size_evictions"):
            table.add(f"cache_{key}", cache[key])
    journal = stats.get("journal")
    if journal is not None:
        for key in ("segments", "size_bytes", "appends", "fsyncs",
                    "rotations", "compactions"):
            table.add(f"journal_{key}", journal[key])
    net = stats.get("net")
    if net is not None:
        for key in ("connections", "active_connections", "frames_in",
                    "frames_out", "http_requests", "rejected_auth",
                    "shed", "protocol_errors",
                    "streaming_subscribers", "stream_events"):
            table.add(f"net_{key}", net.get(key, 0))
    for tenant, counters in (stats.get("tenants") or {}).items():
        table.add(
            f"tenant[{tenant}]",
            f"sub {counters['submitted']} adm {counters['admitted']} "
            f"quota- {counters['quota_rejected']} "
            f"shed {counters['shed']}",
        )
    return table


def sweep_timing_table(sweep, title="Per-cell wall-clock summary"):
    """The :meth:`~repro.parallel.SweepResult.timing_summary` block
    as a table — diagnostic only; the numbers never enter a sweep's
    merged comparison payload.  Accepts a ``SweepResult`` or an
    already-computed summary dict."""
    summary = (sweep.timing_summary()
               if hasattr(sweep, "timing_summary") else sweep)
    table = Table(title, ["metric", "value"])
    for key in ("cells", "jobs", "sweep_wall_s", "total_cell_s",
                "mean_cell_s", "min_cell_s", "max_cell_s",
                "slowest_cell_index"):
        value = summary[key]
        table.add(key, "-" if value is None else value)
    return table


def flops_breakdown(machine) -> dict:
    """Per-node FLOP counts plus the machine totals."""
    per_node = {n.node_id: n.vau.flops for n in machine.nodes}
    total = sum(per_node.values())
    return {
        "per_node": per_node,
        "total": total,
        "imbalance": (
            max(per_node.values()) / (total / len(per_node))
            if total else 1.0
        ),
    }
