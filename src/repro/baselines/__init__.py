"""Architectural baselines: the shared-memory bus machine and the
scalar node.

Public surface:

* :class:`SharedBusMachine`, :class:`SharedBusConfig` — P vector
  processors sharing one bus (the paper's §I foil).
* :class:`ScalarNode` — the vector-less node.
* :class:`ScalingPoint`, :class:`Comparison` — result containers.
"""

from repro.baselines.models import Comparison, ScalingPoint
from repro.baselines.scalar_node import ScalarNode
from repro.baselines.shared_bus import SharedBusConfig, SharedBusMachine

__all__ = [
    "Comparison",
    "ScalarNode",
    "ScalingPoint",
    "SharedBusConfig",
    "SharedBusMachine",
]
