"""Shared result types for baseline comparisons.

The paper's evaluation is architectural: *who wins, and where does the
crossover fall* between the homogeneous distributed machine and its
foils (a shared-memory bus machine; a scalar node).  These helpers
hold the comparison results the benches print.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ScalingPoint:
    """One point on a scaling curve."""

    processors: int
    elapsed_ns: int
    mflops: float

    @property
    def mflops_per_processor(self) -> float:
        return self.mflops / self.processors if self.processors else 0.0


@dataclass(frozen=True)
class Comparison:
    """Two scaling curves and their crossover."""

    label_a: str
    label_b: str
    curve_a: tuple
    curve_b: tuple

    def winner_at(self, processors: int) -> str:
        """Which side is faster at a processor count present in both."""
        a = {p.processors: p.elapsed_ns for p in self.curve_a}
        b = {p.processors: p.elapsed_ns for p in self.curve_b}
        if processors not in a or processors not in b:
            raise ValueError(f"no data at P={processors}")
        return self.label_a if a[processors] <= b[processors] else self.label_b

    def crossover(self):
        """Smallest shared processor count where side A wins, or None."""
        b = {p.processors: p.elapsed_ns for p in self.curve_b}
        for point in sorted(self.curve_a, key=lambda p: p.processors):
            if point.processors in b and \
                    point.elapsed_ns < b[point.processors]:
                return point.processors
        return None
