"""The scalar (vector-less) node — the other foil.

Same control processor, same memory, no vector pipes: every SAXPY
element costs word-port traffic (2 reads + 1 write of 64 bits = six
word accesses) plus scalar trips through the unpipelined adder and
multiplier.  Comparing against the vector node isolates the paper's
"pipelined vector arithmetic" contribution from its "parallelism"
contribution.
"""

from repro.events import Engine
from repro.memory.dram import DualPortMemory


class ScalarNode:
    """A node that computes one element at a time."""

    def __init__(self, specs, engine=None):
        self.specs = specs
        self.engine = engine or Engine()
        self.memory = DualPortMemory(self.engine, specs)
        self.flops = 0

    def scalar_op_ns(self) -> int:
        """One multiply–add through unpipelined units (latency, not
        throughput: no vectors to fill the pipes)."""
        mul = self.specs.multiplier_stages_64 * self.specs.cycle_ns
        add = self.specs.adder_stages * self.specs.cycle_ns
        return mul + add

    def saxpy_ns_per_element(self, precision: int = 64) -> int:
        """Memory traffic + arithmetic for one y[i] ← αx[i] + y[i]."""
        words = precision // 32
        memory = 3 * words * self.specs.word_access_ns
        return memory + self.scalar_op_ns()

    def saxpy(self, total_elements: int, precision: int = 64):
        """Simulate the elementwise loop; returns elapsed ns."""
        words = precision // 32

        def worker():
            for _ in range(total_elements):
                yield from self.memory.word_port.access(3 * words)
                yield self.engine.timeout(self.scalar_op_ns())
                self.flops += 2

        start = self.engine.now
        proc = self.engine.process(worker())
        self.engine.run(until=proc)
        return self.engine.now - start

    def vector_speedup(self, precision: int = 64) -> float:
        """Predicted vector-over-scalar ratio on long SAXPY."""
        vector_per_element = self.specs.cycle_ns  # one result per cycle
        return self.saxpy_ns_per_element(precision) / vector_per_element

    def __repr__(self):
        return "<ScalarNode>"
