"""The shared-memory bus machine — the paper's architectural foil.

Paper §I: "Shared memory systems are expensive when scaled to large
dimensions because of the rapid growth of the interconnection network;
the distance from memory to the processing elements also degrades
performance by increasing latency."

We model the cheap end of that design space: P vector processors (the
*same* 16 MFLOPS pipes as a T node, to isolate the memory-system
question) sharing one global memory over a single bus.  Every operand
and result crosses the bus; arbitration latency grows with log₂ P
(a realistic multi-stage arbiter).  Streaming kernels saturate the bus
at a few processors, while the distributed machine keeps every
operand in node-local memory and scales linearly — experiment E10.
"""

import math
from dataclasses import dataclass

from repro.events import Engine, Mutex
from repro.fpu.pipeline import PipelineTiming


@dataclass(frozen=True)
class SharedBusConfig:
    """Bus parameters (a generously fast mid-80s backplane)."""

    #: Sustained bus bandwidth shared by all processors.
    bus_bandwidth_mb_s: float = 40.0
    #: Base arbitration/address latency per bus transaction.
    arbitration_base_ns: int = 200
    #: Extra arbitration per doubling of processor count.
    arbitration_per_level_ns: int = 100
    #: Transaction (burst) size.
    burst_bytes: int = 1024

    def arbitration_ns(self, processors: int) -> int:
        levels = max(0, math.ceil(math.log2(max(1, processors))))
        return self.arbitration_base_ns + levels * \
            self.arbitration_per_level_ns

    def burst_ns(self, processors: int) -> int:
        transfer = self.burst_bytes / self.bus_bandwidth_mb_s * 1000.0
        return self.arbitration_ns(processors) + round(transfer)


class SharedBusMachine:
    """P vector processors on one bus."""

    def __init__(self, processors: int, specs, config=None, engine=None):
        if processors < 1:
            raise ValueError("need at least one processor")
        self.processors = processors
        self.specs = specs
        self.config = config or SharedBusConfig()
        self.engine = engine or Engine()
        self.bus = Mutex(self.engine, name="bus")
        self.bytes_moved = 0

    def _bus_transfer(self, nbytes: int):
        """Process: move ``nbytes`` over the shared bus in bursts."""
        burst = self.config.burst_bytes
        while nbytes > 0:
            take = min(burst, nbytes)
            with self.bus.request() as req:
                yield req
                yield self.engine.timeout(self.config.burst_ns(
                    self.processors
                ))
            self.bytes_moved += take
            nbytes -= take

    def saxpy(self, total_elements: int, precision: int = 64):
        """Simulate y ← αx + y split over the processors.

        Returns elapsed ns.  Per 128-element chunk a processor pulls
        two operand rows over the bus, computes at full pipe speed, and
        pushes the result row back.
        """
        elem_bytes = precision // 8
        chunk_elems = self.specs.row_bytes // elem_bytes
        mul = (self.specs.multiplier_stages_64 if precision == 64
               else self.specs.multiplier_stages_32)
        pipe = PipelineTiming(
            mul + self.specs.adder_stages, self.specs.cycle_ns
        )
        chunks = -(-total_elements // chunk_elems)
        per_proc = [chunks // self.processors] * self.processors
        for i in range(chunks % self.processors):
            per_proc[i] += 1

        def worker(count):
            for _ in range(count):
                yield from self._bus_transfer(2 * self.specs.row_bytes)
                yield self.engine.timeout(pipe.vector_ns(chunk_elems))
                yield from self._bus_transfer(self.specs.row_bytes)

        start = self.engine.now
        procs = [
            self.engine.process(worker(count)) for count in per_proc
        ]
        self.engine.run(until=self.engine.all_of(procs))
        return self.engine.now - start

    def saxpy_time_model(self, total_elements: int,
                         precision: int = 64) -> float:
        """Analytic lower bound: max(bus time, compute time)."""
        elem_bytes = precision // 8
        traffic = 3 * total_elements * elem_bytes
        bursts = -(-traffic // self.config.burst_bytes)
        bus_ns = bursts * self.config.burst_ns(self.processors)
        compute_ns = total_elements * self.specs.cycle_ns / self.processors
        return max(bus_ns, compute_ns)

    def saturation_processors(self, precision: int = 64) -> float:
        """Processor count beyond which the bus is the bottleneck."""
        per_proc_demand = 3 * (precision // 8) / self.specs.cycle_ns * 1000.0
        return self.config.bus_bandwidth_mb_s / per_proc_demand

    def __repr__(self):
        return f"<SharedBusMachine P={self.processors}>"
