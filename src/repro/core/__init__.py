"""The T Series machine model: specs, configurations, nodes, modules.

The paper's primary contribution is the *composition*: a homogeneous
binary n-cube of nodes, each of which is itself a composition of the
control processor, dual-ported memory, vector arithmetic unit and
links.  This package holds that composition; the parts live in their
own substrate packages.
"""

from repro.core.specs import TSeriesSpecs, PAPER_SPECS, NS_PER_S, MB
from repro.core.config import (
    MachineConfig,
    MODULE,
    CABINET,
    FOUR_CABINET,
    MAX_USABLE,
)
from repro.core.node import BankConflictError, ProcessorNode
from repro.core.module import Module
from repro.core.streaming import VectorStreamer
from repro.core.machine import (
    ROLE_HYPERCUBE,
    ROLE_IO,
    ROLE_SYSTEM,
    SublinkPlan,
    TSeriesMachine,
)

__all__ = [
    "BankConflictError",
    "CABINET",
    "FOUR_CABINET",
    "MAX_USABLE",
    "MB",
    "MODULE",
    "MachineConfig",
    "Module",
    "NS_PER_S",
    "PAPER_SPECS",
    "ProcessorNode",
    "ROLE_HYPERCUBE",
    "ROLE_IO",
    "ROLE_SYSTEM",
    "SublinkPlan",
    "TSeriesMachine",
    "TSeriesSpecs",
    "VectorStreamer",
]
