"""Machine configurations and the paper's scaling tables (§III).

A :class:`MachineConfig` names a T Series size by its cube dimension
and derives every figure in the paper's configuration discussion —
node/module/cabinet counts, peak GFLOPS, total memory, disk count —
from the per-node specs.  The homogeneity claim of the paper is exactly
this derivability: "the specifications of any sized FPS T Series can be
derived from the properties of the individual modules."
"""

from dataclasses import dataclass, field

from repro.core.specs import TSeriesSpecs, PAPER_SPECS


@dataclass(frozen=True)
class MachineConfig:
    """A T Series configuration: a binary ``dimension``-cube of nodes.

    Parameters
    ----------
    dimension : int
        Cube dimension n; the machine has 2**n nodes.  The paper allows
        up to a 14-cube structurally and a 12-cube with external I/O.
    specs : TSeriesSpecs
        Per-node hardware parameters (defaults to the paper's).
    """

    dimension: int
    specs: TSeriesSpecs = field(default=PAPER_SPECS)

    def __post_init__(self):
        if self.dimension < 0:
            raise ValueError("cube dimension must be >= 0")
        if self.dimension > self.specs.max_cube_dimension:
            raise ValueError(
                f"dimension {self.dimension} exceeds the T Series maximum "
                f"({self.specs.max_cube_dimension}-cube)"
            )

    # -- counts -----------------------------------------------------------
    @property
    def node_count(self) -> int:
        """2**n processor nodes."""
        return 1 << self.dimension

    @property
    def module_count(self) -> int:
        """Modules of 8 nodes; sub-module configs occupy one module."""
        return max(1, self.node_count // self.specs.nodes_per_module)

    @property
    def cabinet_count(self) -> int:
        """Cabinets of two modules (16 nodes, a 4-cube)."""
        return max(1, self.module_count // self.specs.modules_per_cabinet)

    @property
    def system_disk_count(self) -> int:
        """One system disk per module."""
        return self.module_count

    # -- capacity ---------------------------------------------------------
    @property
    def peak_mflops(self) -> float:
        """Aggregate peak floating-point rate."""
        return self.node_count * self.specs.peak_mflops_per_node

    @property
    def peak_gflops(self) -> float:
        """Aggregate peak rate in GFLOPS."""
        return self.peak_mflops / 1000.0

    @property
    def memory_bytes(self) -> int:
        """Total user RAM."""
        return self.node_count * self.specs.memory_bytes

    @property
    def memory_mbytes(self) -> float:
        """Total user RAM in binary MB."""
        return self.memory_bytes / float(1 << 20)

    # -- communication ------------------------------------------------------
    @property
    def max_hops(self) -> int:
        """Network diameter: n hops between antipodal nodes."""
        return self.dimension

    @property
    def usable(self) -> bool:
        """True if the config leaves 2 sublinks/node for external I/O
        (paper: 12-cube is the largest usable machine)."""
        return self.dimension <= self.specs.max_usable_cube_dimension

    @property
    def compute_links_required(self) -> int:
        """Hypercube connections each node must dedicate (n)."""
        return self.dimension

    def link_budget(self) -> dict:
        """Per-node sublink accounting, per §III.

        Returns a dict with 'total', 'system', 'io', 'hypercube', and
        'spare' sublink counts.  Raises ValueError if the configuration
        does not fit the 16-sublink budget.
        """
        s = self.specs
        spare = (
            s.sublinks_per_node
            - s.system_sublinks_per_node
            - s.io_sublinks_per_node
            - self.dimension
        )
        if spare < 0:
            raise ValueError(
                f"a {self.dimension}-cube needs {self.dimension} hypercube "
                f"sublinks but only {s.compute_sublinks_per_node} remain"
            )
        return {
            "total": s.sublinks_per_node,
            "system": s.system_sublinks_per_node,
            "io": s.io_sublinks_per_node,
            "hypercube": self.dimension,
            "spare": spare,
        }

    def summary(self) -> dict:
        """All derived figures, as printed by the E8 bench."""
        return {
            "dimension": self.dimension,
            "nodes": self.node_count,
            "modules": self.module_count,
            "cabinets": self.cabinet_count,
            "system_disks": self.system_disk_count,
            "peak_mflops": self.peak_mflops,
            "peak_gflops": self.peak_gflops,
            "memory_mbytes": self.memory_mbytes,
            "max_hops": self.max_hops,
            "usable": self.usable,
        }


#: Named configurations the paper calls out.
MODULE = MachineConfig(3)            # 8 nodes, 128 MFLOPS, 8 MB
CABINET = MachineConfig(4)           # 16 nodes (a tesseract)
FOUR_CABINET = MachineConfig(6)      # 64 nodes, 1 GFLOPS, 64 MB
MAX_USABLE = MachineConfig(12)       # 4096 nodes, >65 GFLOPS, 4 GB
