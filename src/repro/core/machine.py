"""The assembled T Series machine.

Construction wires everything the paper describes:

* ``2**n`` :class:`~repro.core.node.ProcessorNode` objects connected as
  a binary n-cube over fabric sublinks, one cube dimension per sublink
  slot, spread across the four physical links;
* modules of eight nodes, each with a
  :class:`~repro.system.system_board.SystemBoard` and disk, joined to
  their nodes by the communications thread;
* the system ring joining the boards, independent of the n-cube.

Slot plan (matches the paper's link-budget arithmetic exactly):
dimension ``d`` rides slot ``(d % 4) * 4 + d // 4`` — so the three
intra-module dimensions (0–2) land on three *different* physical links
("the module requires three links for intramodule hypercube network
communications"), the two system slots (11, 15) land on two different
links ("the system board connections require two links"), and with two
I/O slots (3, 7) reserved the largest usable machine is a 12-cube;
releasing them permits the structural maximum, a 14-cube.
"""

from repro.core.config import MachineConfig
from repro.core.node import ProcessorNode
from repro.core.module import Module
from repro.core.specs import PAPER_SPECS
from repro.events import Engine
from repro.links.fabric import connect
from repro.system.system_board import (
    NODE_SLOT_AWAY_FROM_BOARD,
    NODE_SLOT_TOWARD_BOARD,
    SLOT_RING_NEXT,
    SLOT_RING_PREV,
    SLOT_THREAD_DOWN,
    SLOT_THREAD_UP,
    SystemBoard,
)
from repro.topology.hypercube import Hypercube

#: Sublink roles on the fabric.
ROLE_HYPERCUBE = "hypercube"
ROLE_SYSTEM = "system"
ROLE_IO = "io"


class SublinkPlan:
    """The per-node sublink slot assignment."""

    SYSTEM_SLOTS = (NODE_SLOT_AWAY_FROM_BOARD, NODE_SLOT_TOWARD_BOARD)
    IO_SLOTS = (3, 7)

    def __init__(self, dimension: int, reserve_io: bool = True):
        self.dimension = dimension
        self.reserve_io = reserve_io
        limit = 12 if reserve_io else 14
        if dimension > limit:
            raise ValueError(
                f"a {dimension}-cube does not fit the sublink budget "
                f"({'with' if reserve_io else 'without'} I/O reserved, "
                f"max {limit})"
            )
        self._slots = [self.slot_of(d) for d in range(dimension)]
        taken = set(self._slots) | set(self.SYSTEM_SLOTS)
        if reserve_io:
            taken |= set(self.IO_SLOTS)
        if len(taken) != dimension + 2 + (2 if reserve_io else 0):
            raise AssertionError("sublink slot collision")  # pragma: no cover

    @staticmethod
    def slot_of(dimension: int) -> int:
        """Sublink slot carrying cube dimension ``dimension``."""
        return (dimension % 4) * 4 + dimension // 4

    def budget(self) -> dict:
        """Slot accounting, mirroring MachineConfig.link_budget."""
        spare = 16 - self.dimension - 2 - (2 if self.reserve_io else 0)
        return {
            "total": 16,
            "hypercube": self.dimension,
            "system": 2,
            "io": 2 if self.reserve_io else 0,
            "spare": spare,
        }


class TSeriesMachine:
    """A complete, wired T Series."""

    def __init__(self, config, engine=None, reserve_io=True,
                 with_system=True):
        if isinstance(config, int):
            config = MachineConfig(config)
        self.config = config
        self.specs = config.specs
        self.engine = engine or Engine()
        self.cube = Hypercube(config.dimension)
        self.plan = SublinkPlan(config.dimension, reserve_io=reserve_io)
        self.nodes = [
            ProcessorNode(self.engine, self.specs, node_id=i)
            for i in range(config.node_count)
        ]
        self.sublinks = {}  # (low_node, high_node) → FabricSublink
        self._wire_hypercube()
        self.modules = []
        self.boards = []
        self.ring_links = []
        if with_system:
            self._build_modules()
            self._wire_ring()

    # -- wiring ----------------------------------------------------------

    def _wire_hypercube(self):
        for u, v in self.cube.edges():
            d = (u ^ v).bit_length() - 1
            slot = self.plan.slot_of(d)
            link = connect(
                self.nodes[u].comm, slot,
                self.nodes[v].comm, slot,
                role=ROLE_HYPERCUBE,
                name=f"cube{u}-{v}",
            )
            self.sublinks[(u, v)] = link

    def _build_modules(self):
        per_module = min(len(self.nodes), self.specs.nodes_per_module)
        for m in range(0, len(self.nodes), per_module):
            module_id = m // per_module
            nodes = self.nodes[m:m + per_module]
            board = SystemBoard(self.engine, self.specs, module_id)
            module = Module(module_id, nodes, board)
            self._wire_thread(module)
            self.modules.append(module)
            self.boards.append(board)

    def _wire_thread(self, module):
        """Board → node 0 → … → last node → board."""
        nodes = module.nodes
        board = module.board
        module.thread.append(connect(
            board.comm, SLOT_THREAD_DOWN,
            nodes[0].comm, NODE_SLOT_TOWARD_BOARD,
            role=ROLE_SYSTEM,
            name=f"thread{module.module_id}.board-0",
        ))
        for k in range(len(nodes) - 1):
            module.thread.append(connect(
                nodes[k].comm, NODE_SLOT_AWAY_FROM_BOARD,
                nodes[k + 1].comm, NODE_SLOT_TOWARD_BOARD,
                role=ROLE_SYSTEM,
                name=f"thread{module.module_id}.{k}-{k + 1}",
            ))
        module.thread.append(connect(
            nodes[-1].comm, NODE_SLOT_AWAY_FROM_BOARD,
            board.comm, SLOT_THREAD_UP,
            role=ROLE_SYSTEM,
            name=f"thread{module.module_id}.{len(nodes) - 1}-board",
        ))

    def _wire_ring(self):
        """The system ring, independent of the n-cube."""
        count = len(self.boards)
        if count < 2:
            return
        for b in range(count):
            nxt = (b + 1) % count
            self.ring_links.append(connect(
                self.boards[b].comm, SLOT_RING_NEXT,
                self.boards[nxt].comm, SLOT_RING_PREV,
                role=ROLE_SYSTEM,
                name=f"ring.{b}-{nxt}",
            ))

    # -- access -----------------------------------------------------------

    @property
    def dimension(self) -> int:
        return self.config.dimension

    def __len__(self):
        return len(self.nodes)

    def node(self, node_id: int) -> ProcessorNode:
        """Node by id."""
        self.cube.check_node(node_id)
        return self.nodes[node_id]

    def module_of(self, node_id: int) -> Module:
        """The module containing a node."""
        self.cube.check_node(node_id)
        if not self.modules:
            raise RuntimeError("machine built with with_system=False")
        per_module = len(self.modules[0])
        return self.modules[node_id // per_module]

    def slot_of_dimension(self, d: int) -> int:
        """Which sublink slot carries cube dimension ``d``."""
        if not 0 <= d < self.dimension:
            raise ValueError(f"dimension {d} out of range")
        return self.plan.slot_of(d)

    def sublink_between(self, u: int, v: int):
        """The fabric sublink joining two neighbouring nodes."""
        key = (min(u, v), max(u, v))
        try:
            return self.sublinks[key]
        except KeyError:
            raise ValueError(f"nodes {u} and {v} are not neighbours") from None

    # -- metrics ------------------------------------------------------

    def total_flops(self) -> int:
        """FLOPs executed machine-wide."""
        return sum(n.vau.flops for n in self.nodes)

    def measured_mflops(self) -> float:
        """Machine-wide measured rate."""
        if self.engine.now == 0:
            return 0.0
        return self.total_flops() / (self.engine.now / 1000.0)

    def run(self, until=None):
        """Drive the shared engine."""
        return self.engine.run(until=until)

    def __repr__(self):
        return (
            f"<TSeriesMachine {self.dimension}-cube: {len(self.nodes)} "
            f"nodes, {len(self.modules)} modules>"
        )
