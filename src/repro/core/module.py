"""The eight-node module.

Paper §III: "Eight nodes are combined with disk storage and a system
board to form a module.  Such a module has 128 MFLOPS peak
floating-point performance, and 8 MB of user RAM."

The module object groups its nodes with their system board and records
the thread wiring (board → node 0 → node 1 → … → last node → board).
Snapshot data flows along this thread; the chain's first segment and
the disk are the ~15 s bottlenecks.
"""


class Module:
    """One module: up to eight nodes plus a system board."""

    def __init__(self, module_id, nodes, board):
        if not nodes:
            raise ValueError("a module needs at least one node")
        self.module_id = module_id
        self.nodes = list(nodes)
        self.board = board
        for node in self.nodes:
            node.module = self
        #: Thread sublinks, filled in by machine wiring:
        #: thread[0] joins the board to node 0; thread[k] joins node
        #: k−1 to node k; thread[-1] joins the last node back to the
        #: board.
        self.thread = []

    @property
    def node_ids(self):
        """Machine-global ids of this module's nodes."""
        return [n.node_id for n in self.nodes]

    @property
    def memory_bytes(self) -> int:
        """Total user RAM in the module (8 MB for a full module)."""
        return sum(n.specs.memory_bytes for n in self.nodes)

    @property
    def peak_mflops(self) -> float:
        """128 for a full module."""
        return sum(n.specs.peak_mflops_per_node for n in self.nodes)

    def position_of(self, node_id: int) -> int:
        """A node's position along the thread (0 = nearest the board)."""
        for pos, node in enumerate(self.nodes):
            if node.node_id == node_id:
                return pos
        raise ValueError(f"node {node_id} not in module {self.module_id}")

    def __len__(self):
        return len(self.nodes)

    def __repr__(self):
        return f"<Module {self.module_id} nodes={self.node_ids}>"
