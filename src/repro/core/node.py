"""The processor node: Figure 1 as a composition.

A node is a control processor, a 1 MB dual-ported memory, two vector
registers, the vector arithmetic unit, and a four-link adapter — all
on one board.  The composition rules the paper states are enforced
here:

* the vector unit runs **in parallel** with the CP (vector ops are
  started, not awaited, unless the caller chooses to wait);
* vector operands come from vector registers loaded row-at-a-time;
* CP gather/scatter uses the random-access port and therefore overlaps
  vector arithmetic (they touch different ports);
* the two vector inputs of a dual-input form should come from
  different banks — :meth:`ProcessorNode.check_banks` verifies the
  placement that makes full-speed SAXPY possible.
"""

import numpy as np

from repro.cp.gather import GatherScatterEngine
from repro.fpu.vector_forms import (
    FORMS,
    ChainRef,
    VectorArithmeticUnit,
    dtype_for,
)
from repro.links.fabric import NodeLinkSet
from repro.memory.dram import DualPortMemory
from repro.memory.vector_register import VectorRegister


class BankConflictError(Exception):
    """Two vector operands were placed in the same memory bank."""


class ChainBuilder:
    """A recorded row-load / vector-op / row-store sequence.

    Built with :meth:`ProcessorNode.vector_chain` and dispatched with
    :meth:`ProcessorNode.run_chain`.  The recorded program has the same
    observable semantics as issuing each step separately (``load_vector``
    / ``vector_op`` / ``store_vector``), but the whole sequence goes to
    the hardware as **one** streamed dispatch: every row access is
    charged in a single row-port hold and the arithmetic runs as one
    fused :meth:`~repro.fpu.vector_forms.VectorArithmeticUnit.execute_chain`
    — one pipeline fill and one completion event for the chain instead
    of one round trip through the event engine per op.  That is the
    paper's streaming model: "the programmer only needs to describe the
    input and output vectors and the vector form desired."

    The builder methods return ``self`` so steps can be chained.
    """

    __slots__ = ("node", "precision", "steps", "ops")

    def __init__(self, node, precision=64):
        self.node = node
        self.precision = precision
        #: Recorded steps: ("load", row, reg), ("op", form_name,
        #: src_regs, scalars, length, dst_reg), ("store", reg, row).
        self.steps = []
        #: Vector ops recorded so far (loads/stores excluded).
        self.ops = 0

    def load(self, row: int, reg: int = 0):
        """Record a row → register load (one row-port access)."""
        self.node.memory._check_row(row)
        if not 0 <= reg < len(self.node.vregs):
            raise ValueError(f"no vector register {reg}")
        self.steps.append(("load", row, reg))
        return self

    def op(self, form_name: str, src_regs, scalars=(), length: int = None,
           dst_reg: int = None):
        """Record a vector form over register contents.

        Semantics mirror :meth:`ProcessorNode.vector_op`: ``length``
        defaults to the full register and the result lands in
        ``dst_reg`` (default: the first source register) unless the
        form is a reduction.
        """
        form = FORMS[form_name]  # validates the name eagerly
        src_regs = list(src_regs)
        for r in src_regs:
            if not 0 <= r < len(self.node.vregs):
                raise ValueError(f"no vector register {r}")
        if length is None:
            length = self.node.vregs[0].capacity(self.precision)
        elif length > self.node.vregs[0].capacity(self.precision):
            raise ValueError(
                f"length {length} exceeds register capacity"
            )
        target = dst_reg if dst_reg is not None else (
            src_regs[0] if src_regs else 0
        )
        if not form.reduction and not 0 <= target < len(self.node.vregs):
            raise ValueError(f"no vector register {target}")
        self.steps.append(
            ("op", form_name, src_regs, tuple(scalars), length, target)
        )
        self.ops += 1
        return self

    def store(self, reg: int, row: int):
        """Record a register → row store (one row-port access)."""
        self.node.memory._check_row(row)
        if not 0 <= reg < len(self.node.vregs):
            raise ValueError(f"no vector register {reg}")
        self.steps.append(("store", reg, row))
        return self

    def run(self):
        """Process: dispatch the chain (see ProcessorNode.run_chain)."""
        return self.node.run_chain(self)

    def __len__(self):
        return len(self.steps)

    def __repr__(self):
        return (f"<ChainBuilder steps={len(self.steps)} ops={self.ops} "
                f"precision={self.precision}>")


class ProcessorNode:
    """One T Series node."""

    #: Vector registers per node (Figure 1 shows one per bank).
    VECTOR_REGISTERS = 2

    def __init__(self, engine, specs, node_id=0):
        self.engine = engine
        self.specs = specs
        self.node_id = node_id
        self.memory = DualPortMemory(engine, specs)
        self.vau = VectorArithmeticUnit(engine, specs)
        self.comm = NodeLinkSet(engine, specs, name=f"node{node_id}")
        self.comm.memory = self.memory  # for DMA cycle stealing (E15)
        self.gather_engine = GatherScatterEngine(engine, self.memory, specs)
        self.vregs = [
            VectorRegister(specs.row_bytes, index=i)
            for i in range(self.VECTOR_REGISTERS)
        ]
        #: Set by machine wiring: this node's module.
        self.module = None
        #: Node-halt fault state: a halted node's CP and vector units
        #: stop and its hypercube relays drop frames without ACKing.
        #: (The module's system thread is driven by the board-side
        #: adapter, so checkpoint/restore traffic still flows through
        #: a halted node — the paper's rationale for the thread.)
        self.halted = False
        self.halted_at = None

    def halt(self, now=None):
        """Mark this node dead (CP halt fault)."""
        if not self.halted:
            self.halted = True
            self.halted_at = self.engine.now if now is None else now

    # -- untimed element access (setup/verification) ---------------------

    def write_floats(self, address: int, values, precision: int = 64):
        """Plant float elements in memory (no simulated time)."""
        values = np.asarray(values, dtype=dtype_for(precision))
        self.memory.poke_bytes(address, values.view(np.uint8))

    def read_floats(self, address: int, count: int,
                    precision: int = 64) -> np.ndarray:
        """Read float elements from memory (no simulated time)."""
        nbytes = count * (precision // 8)
        return self.memory.peek_bytes(address, nbytes).view(
            dtype_for(precision)
        ).copy()

    def write_row_floats(self, row: int, values, precision: int = 64):
        """Fill one memory row with float elements (zero padded)."""
        values = np.asarray(values, dtype=dtype_for(precision))
        raw = np.zeros(self.specs.row_bytes, dtype=np.uint8)
        raw[:values.nbytes] = values.view(np.uint8)
        self.memory.write_row(row, raw)

    def read_row_floats(self, row: int, count: int = None,
                        precision: int = 64) -> np.ndarray:
        """Read one row as float elements."""
        data = self.memory.read_row(row).view(dtype_for(precision))
        return data[:count].copy() if count else data.copy()

    # -- vector pipeline: rows → registers → arithmetic → rows ----------

    def load_vector(self, row: int, reg: int = 0):
        """Process: load memory row into a vector register (400 ns)."""
        yield from self.memory.row_to_register(row, self.vregs[reg])

    def store_vector(self, reg: int, row: int):
        """Process: store a vector register into a memory row (400 ns)."""
        yield from self.memory.register_to_row(self.vregs[reg], row)

    def check_banks(self, row_a: int, row_b: int) -> None:
        """Enforce the dual-bank rule for two-input forms.

        Paper: "The division of memory into two banks permits two
        inputs in parallel to the arithmetic unit on each cycle."
        """
        bank_a = self.memory.bank_of_row(row_a)
        bank_b = self.memory.bank_of_row(row_b)
        if bank_a == bank_b:
            raise BankConflictError(
                f"rows {row_a} and {row_b} are both in bank {bank_a}; "
                "two-input vector forms need one operand per bank"
            )

    def vector_op(self, form_name: str, src_regs, scalars=(),
                  length: int = None, precision: int = 64,
                  dst_reg: int = None):
        """Process: run a vector form on register contents.

        ``src_regs`` are register indices; ``length`` defaults to the
        full register.  The result lands in ``dst_reg`` (default: the
        first source register) unless the form is a reduction, in which
        case the scalar result is returned.
        """
        form = FORMS[form_name]
        if length is None:
            length = self.vregs[0].capacity(precision)
        inputs = [
            self.vregs[r].elements(precision, count=length) for r in src_regs
        ]
        result = yield from self.vau.execute(
            form_name, inputs, scalars, precision
        )
        if form.reduction:
            return result
        target = dst_reg if dst_reg is not None else (
            src_regs[0] if src_regs else 0
        )
        self.vregs[target].set_elements(result, precision)
        return result

    def start_vector_op(self, form_name, src_regs, scalars=(),
                        length=None, precision=64, dst_reg=None):
        """Fire-and-forget vector op: returns its completion event.

        This is the paper's CP/vector-unit overlap: "The complete
        arithmetic unit operates in parallel with the node control
        processor."
        """
        return self.engine.process(
            self.vector_op(form_name, src_regs, scalars, length,
                           precision, dst_reg),
            name=f"{self.node_id}-{form_name}",
        )

    # -- chain dispatch: fused load/op/store pipelines -----------------

    def vector_chain(self, precision: int = 64) -> ChainBuilder:
        """A fresh :class:`ChainBuilder` targeting this node."""
        return ChainBuilder(self, precision)

    def run_chain(self, chain: ChainBuilder):
        """Process: dispatch a recorded chain as one streamed pipeline.

        Equivalent per-op program: each load is ``load_vector``, each
        op ``vector_op``, each store ``store_vector``, in order — same
        register/memory end state, bit-for-bit, and the same counter
        totals (row-port accesses, FLOPs, adder/multiplier results).
        The dispatch differs: all row accesses are charged under one
        row-port hold, and the ops run as one **fused**
        ``execute_chain`` — one pipeline fill for the whole chain, one
        completion event — with register dataflow threaded through
        :class:`~repro.fpu.vector_forms.ChainRef` placeholders instead
        of K engine round trips.  Loads snapshot memory at dispatch and
        stores commit at completion, so a chain is one atomic step of
        the node program (nothing else on this node runs mid-chain).

        Returns the list of per-op results (reductions included).
        """
        precision = chain.precision
        dtype = dtype_for(precision)
        memory = self.memory
        # Pass 1 — plan: replay the register dataflow symbolically.
        # Each register is bound to a memory row snapshot ("mem"), an
        # op result yet to be computed ("res", entry index, length), or
        # its pre-chain contents (no binding).
        bindings = {}
        row_cache = {}
        stored_rows = set()
        entries = []
        row_accesses = 0
        for step in chain.steps:
            kind = step[0]
            if kind == "load":
                _kind, row, reg = step
                if row in stored_rows:
                    # Loads snapshot memory at dispatch, so a re-load
                    # of a row this chain already stored would read
                    # stale data — split the program into two chains.
                    raise ValueError(
                        f"chain loads row {row} after storing it; "
                        "dispatch the store and the load in separate "
                        "chains"
                    )
                raw = row_cache.get(row)
                if raw is None:
                    raw = row_cache[row] = memory.read_row(row)
                bindings[reg] = ("mem", raw, row)
                row_accesses += 1
            elif kind == "op":
                _kind, form_name, src_regs, scalars, length, target = step
                inputs = []
                for r in src_regs:
                    bound = bindings.get(r)
                    if bound is None:
                        inputs.append(
                            self.vregs[r].elements(precision, count=length)
                        )
                    elif bound[0] == "mem":
                        inputs.append(bound[1].view(dtype)[:length])
                    else:
                        _tag, idx, res_len = bound
                        if length > res_len:
                            raise ValueError(
                                f"chain op reads {length} elements from "
                                f"register {r}, which holds a "
                                f"{res_len}-element chain result"
                            )
                        inputs.append(ChainRef(
                            idx, length if length != res_len else None
                        ))
                form = FORMS[form_name]
                entries.append((form_name, inputs, scalars))
                if not form.reduction:
                    bindings[target] = ("res", len(entries) - 1, length)
            else:  # store
                _kind, reg, row = step
                stored_rows.add(row)
                row_accesses += 1
        # Timed phase: one row-port hold for every load and store, then
        # one fused arithmetic dispatch for the whole op sequence.
        if row_accesses:
            yield from memory.row_port.access(row_accesses)
        if entries:
            results = yield from self.vau.execute_chain(
                entries, precision, fused=True
            )
        else:
            results = []
        # Pass 2 — commit: replay the steps against shadow register
        # bytes now that the results exist, applying stores in order,
        # then write the final register states back.
        shadows = {}
        rows_loaded = {}
        entry_index = 0
        for step in chain.steps:
            kind = step[0]
            if kind == "load":
                _kind, row, reg = step
                shadows[reg] = row_cache[row].copy()
                rows_loaded[reg] = row
            elif kind == "op":
                _kind, form_name, _src, _scalars, _length, target = step
                result = results[entry_index]
                if not FORMS[form_name].reduction:
                    shadow = shadows.get(target)
                    if shadow is None:
                        shadow = shadows[target] = (
                            self.vregs[target].raw.copy()
                        )
                    view = shadow.view(dtype)
                    view[:len(result)] = result
                    rows_loaded[target] = None
                entry_index += 1
            else:  # store
                _kind, reg, row = step
                shadow = shadows.get(reg)
                if shadow is None:
                    shadow = shadows[reg] = self.vregs[reg].raw.copy()
                    rows_loaded[reg] = self.vregs[reg].loaded_row
                memory.write_row(row, shadow)
        for reg, shadow in shadows.items():
            self.vregs[reg].load_bytes(shadow, row=rows_loaded.get(reg))
        return results

    # -- gather/scatter ------------------------------------------------

    def gather(self, src_addresses, dst_address, precision=64):
        """Process: CP gather (overlaps vector arithmetic)."""
        count = yield from self.gather_engine.gather(
            src_addresses, dst_address, precision
        )
        return count

    def scatter(self, src_address, dst_addresses, precision=64):
        """Process: CP scatter."""
        count = yield from self.gather_engine.scatter(
            src_address, dst_addresses, precision
        )
        return count

    # -- communication ----------------------------------------------------

    def send(self, slot: int, payload, nbytes: int):
        """Process: transmit a message on a sublink slot (DMA + wire)."""
        message = yield from self.comm.send(slot, payload, nbytes)
        return message

    def recv(self, slot: int):
        """Process: receive the next message on a sublink slot."""
        message = yield from self.comm.recv(slot)
        return message

    # -- metrics -------------------------------------------------------------

    def measured_mflops(self) -> float:
        """FLOPs per elapsed simulated time."""
        return self.vau.measured_mflops()

    def peak_mflops(self) -> float:
        """16 MFLOPS (two pipes at the 125 ns cycle)."""
        return self.specs.peak_mflops_per_node

    def __repr__(self):
        return f"<ProcessorNode {self.node_id}>"
