"""The processor node: Figure 1 as a composition.

A node is a control processor, a 1 MB dual-ported memory, two vector
registers, the vector arithmetic unit, and a four-link adapter — all
on one board.  The composition rules the paper states are enforced
here:

* the vector unit runs **in parallel** with the CP (vector ops are
  started, not awaited, unless the caller chooses to wait);
* vector operands come from vector registers loaded row-at-a-time;
* CP gather/scatter uses the random-access port and therefore overlaps
  vector arithmetic (they touch different ports);
* the two vector inputs of a dual-input form should come from
  different banks — :meth:`ProcessorNode.check_banks` verifies the
  placement that makes full-speed SAXPY possible.
"""

import numpy as np

from repro.cp.gather import GatherScatterEngine
from repro.fpu.vector_forms import FORMS, VectorArithmeticUnit, dtype_for
from repro.links.fabric import NodeLinkSet
from repro.memory.dram import DualPortMemory
from repro.memory.vector_register import VectorRegister


class BankConflictError(Exception):
    """Two vector operands were placed in the same memory bank."""


class ProcessorNode:
    """One T Series node."""

    #: Vector registers per node (Figure 1 shows one per bank).
    VECTOR_REGISTERS = 2

    def __init__(self, engine, specs, node_id=0):
        self.engine = engine
        self.specs = specs
        self.node_id = node_id
        self.memory = DualPortMemory(engine, specs)
        self.vau = VectorArithmeticUnit(engine, specs)
        self.comm = NodeLinkSet(engine, specs, name=f"node{node_id}")
        self.comm.memory = self.memory  # for DMA cycle stealing (E15)
        self.gather_engine = GatherScatterEngine(engine, self.memory, specs)
        self.vregs = [
            VectorRegister(specs.row_bytes, index=i)
            for i in range(self.VECTOR_REGISTERS)
        ]
        #: Set by machine wiring: this node's module.
        self.module = None
        #: Node-halt fault state: a halted node's CP and vector units
        #: stop and its hypercube relays drop frames without ACKing.
        #: (The module's system thread is driven by the board-side
        #: adapter, so checkpoint/restore traffic still flows through
        #: a halted node — the paper's rationale for the thread.)
        self.halted = False
        self.halted_at = None

    def halt(self, now=None):
        """Mark this node dead (CP halt fault)."""
        if not self.halted:
            self.halted = True
            self.halted_at = self.engine.now if now is None else now

    # -- untimed element access (setup/verification) ---------------------

    def write_floats(self, address: int, values, precision: int = 64):
        """Plant float elements in memory (no simulated time)."""
        values = np.asarray(values, dtype=dtype_for(precision))
        self.memory.poke_bytes(address, values.view(np.uint8))

    def read_floats(self, address: int, count: int,
                    precision: int = 64) -> np.ndarray:
        """Read float elements from memory (no simulated time)."""
        nbytes = count * (precision // 8)
        return self.memory.peek_bytes(address, nbytes).view(
            dtype_for(precision)
        ).copy()

    def write_row_floats(self, row: int, values, precision: int = 64):
        """Fill one memory row with float elements (zero padded)."""
        values = np.asarray(values, dtype=dtype_for(precision))
        raw = np.zeros(self.specs.row_bytes, dtype=np.uint8)
        raw[:values.nbytes] = values.view(np.uint8)
        self.memory.write_row(row, raw)

    def read_row_floats(self, row: int, count: int = None,
                        precision: int = 64) -> np.ndarray:
        """Read one row as float elements."""
        data = self.memory.read_row(row).view(dtype_for(precision))
        return data[:count].copy() if count else data.copy()

    # -- vector pipeline: rows → registers → arithmetic → rows ----------

    def load_vector(self, row: int, reg: int = 0):
        """Process: load memory row into a vector register (400 ns)."""
        yield from self.memory.row_to_register(row, self.vregs[reg])

    def store_vector(self, reg: int, row: int):
        """Process: store a vector register into a memory row (400 ns)."""
        yield from self.memory.register_to_row(self.vregs[reg], row)

    def check_banks(self, row_a: int, row_b: int) -> None:
        """Enforce the dual-bank rule for two-input forms.

        Paper: "The division of memory into two banks permits two
        inputs in parallel to the arithmetic unit on each cycle."
        """
        bank_a = self.memory.bank_of_row(row_a)
        bank_b = self.memory.bank_of_row(row_b)
        if bank_a == bank_b:
            raise BankConflictError(
                f"rows {row_a} and {row_b} are both in bank {bank_a}; "
                "two-input vector forms need one operand per bank"
            )

    def vector_op(self, form_name: str, src_regs, scalars=(),
                  length: int = None, precision: int = 64,
                  dst_reg: int = None):
        """Process: run a vector form on register contents.

        ``src_regs`` are register indices; ``length`` defaults to the
        full register.  The result lands in ``dst_reg`` (default: the
        first source register) unless the form is a reduction, in which
        case the scalar result is returned.
        """
        form = FORMS[form_name]
        if length is None:
            length = self.vregs[0].capacity(precision)
        inputs = [
            self.vregs[r].elements(precision, count=length) for r in src_regs
        ]
        result = yield from self.vau.execute(
            form_name, inputs, scalars, precision
        )
        if form.reduction:
            return result
        target = dst_reg if dst_reg is not None else (
            src_regs[0] if src_regs else 0
        )
        self.vregs[target].set_elements(result, precision)
        return result

    def start_vector_op(self, form_name, src_regs, scalars=(),
                        length=None, precision=64, dst_reg=None):
        """Fire-and-forget vector op: returns its completion event.

        This is the paper's CP/vector-unit overlap: "The complete
        arithmetic unit operates in parallel with the node control
        processor."
        """
        return self.engine.process(
            self.vector_op(form_name, src_regs, scalars, length,
                           precision, dst_reg),
            name=f"{self.node_id}-{form_name}",
        )

    # -- gather/scatter ------------------------------------------------

    def gather(self, src_addresses, dst_address, precision=64):
        """Process: CP gather (overlaps vector arithmetic)."""
        count = yield from self.gather_engine.gather(
            src_addresses, dst_address, precision
        )
        return count

    def scatter(self, src_address, dst_addresses, precision=64):
        """Process: CP scatter."""
        count = yield from self.gather_engine.scatter(
            src_address, dst_addresses, precision
        )
        return count

    # -- communication ----------------------------------------------------

    def send(self, slot: int, payload, nbytes: int):
        """Process: transmit a message on a sublink slot (DMA + wire)."""
        message = yield from self.comm.send(slot, payload, nbytes)
        return message

    def recv(self, slot: int):
        """Process: receive the next message on a sublink slot."""
        message = yield from self.comm.recv(slot)
        return message

    # -- metrics -------------------------------------------------------------

    def measured_mflops(self) -> float:
        """FLOPs per elapsed simulated time."""
        return self.vau.measured_mflops()

    def peak_mflops(self) -> float:
        """16 MFLOPS (two pipes at the 125 ns cycle)."""
        return self.specs.peak_mflops_per_node

    def __repr__(self):
        return f"<ProcessorNode {self.node_id}>"
