"""Hardware constants of the FPS T Series, straight from the paper.

Every timing and size used anywhere in the simulator is defined here,
in one frozen dataclass, so that experiments measuring "paper vs.
simulated" have a single authoritative source for the paper's side and
so a user can build what-if variants (``specs.replace(...)``) for the
ablation benches.

All times are integer **nanoseconds**; all sizes are **bytes** unless a
name says otherwise.  Derived quantities (bandwidths, peak MFLOPS, the
balance ratio) are properties computed from the primaries — the
benchmark harness checks that the *simulated* datapaths reproduce these
same numbers from behaviour, not from this table.
"""

import dataclasses
from dataclasses import dataclass

#: Nanoseconds per second, for bandwidth conversions.
NS_PER_S = 1_000_000_000

#: Bytes per megabyte in the paper's units (decimal MB, as used for
#: bandwidth figures such as "2560 MB/s").
MB = 1_000_000


@dataclass(frozen=True)
class TSeriesSpecs:
    """The per-node and per-module hardware parameters (paper §II–III)."""

    # -- clocks ------------------------------------------------------
    #: Vector arithmetic cycle: each pipe delivers one result per cycle.
    cycle_ns: int = 125
    #: Control-processor instruction rate, instructions per second.
    cp_mips: float = 7.5

    # -- memory --------------------------------------------------------
    #: Total dual-ported DRAM per node.
    memory_bytes: int = 1 << 20
    #: Row size: one vector-register load moves this many bytes at once.
    row_bytes: int = 1024
    #: Bank A size in 32-bit words (256 rows).
    bank_a_words: int = 64 * 1024
    #: Bank B size in 32-bit words (768 rows).
    bank_b_words: int = 192 * 1024
    #: Random-access port: time to read or write one 32-bit word.
    word_access_ns: int = 400
    #: Row port: time to move one full row to/from a vector register.
    row_access_ns: int = 400
    #: Parity: one parity bit per byte of memory.
    parity_bits_per_byte: int = 1

    # -- arithmetic ----------------------------------------------------
    #: Floating-point adder pipeline depth (32- and 64-bit).
    adder_stages: int = 6
    #: Multiplier pipeline depth in 32-bit mode.
    multiplier_stages_32: int = 5
    #: Multiplier pipeline depth in 64-bit mode.
    multiplier_stages_64: int = 7

    # -- links -----------------------------------------------------------
    #: Number of bidirectional serial links per node.
    links_per_node: int = 4
    #: Ways each link is multiplexed (links*mux = 16 sublinks).
    sublinks_per_link: int = 4
    #: Raw bit rate of a link in bits per second.  The paper's nominal
    #: MB/s figure is corrupted in the source text; 7.5 Mbit/s makes the
    #: *effective* unidirectional rate ≈0.577 MB/s, matching the paper's
    #: "over 0.5 MB/s per link".
    link_bit_rate: int = 7_500_000
    #: Framing: data bits per byte on the wire.
    link_data_bits: int = 8
    #: Framing: synchronisation bits prepended to each byte.
    link_sync_bits: int = 2
    #: Framing: stop bits appended to each byte.
    link_stop_bits: int = 1
    #: Acknowledge bits returned by the receiver per byte.
    link_ack_bits: int = 2
    #: DMA transfer startup latency.
    dma_startup_ns: int = 5_000
    #: Link-adapter port into memory (instructions/status + data).
    link_adapter_bw_mb_s: float = 10.0
    #: Model link DMA stealing random-access-port cycles from the CP
    #: (off by default: the paper says the CP is "degraded only
    #: slightly", and experiment E15 quantifies the worst case by
    #: turning this on).
    dma_memory_traffic: bool = False
    #: Words per burst when DMA steals port cycles (interleaving
    #: granularity against the CP).
    dma_burst_words: int = 64

    # -- module / system (paper §III) -----------------------------------
    #: Compute nodes per module.
    nodes_per_module: int = 8
    #: Modules per cabinet (two modules = 16 nodes = a 4-cube).
    modules_per_cabinet: int = 2
    #: Sublinks per node reserved for the system-board thread.
    system_sublinks_per_node: int = 2
    #: Sublinks per node reserved for mass storage / external I/O.
    io_sublinks_per_node: int = 2
    #: Links used for the intra-module hypercube network (a 3-cube).
    intramodule_links: int = 3
    #: Largest constructible configuration (links allow a 14-cube).
    max_cube_dimension: int = 14
    #: Largest usable configuration with 2 sublinks kept for I/O.
    max_usable_cube_dimension: int = 12
    #: External connection bandwidth per system board, MB/s.
    system_external_bw_mb_s: float = 0.5
    #: Time to record one memory snapshot, independent of configuration.
    snapshot_seconds: float = 15.0
    #: Recommended interval between snapshots.
    snapshot_interval_seconds: float = 600.0
    #: Disk transfer rate backing the snapshot figure: one module's 8 MB
    #: in ~15 s (per-module disks write in parallel, which is why the
    #: snapshot time is configuration-independent).
    disk_bw_mb_s: float = 8.0 / 15.0 * (1 << 20) / MB

    # -- derived: memory ------------------------------------------------
    @property
    def memory_words(self) -> int:
        """Memory viewed by the CP: 32-bit words (256K for 1 MB)."""
        return self.memory_bytes // 4

    @property
    def rows_total(self) -> int:
        """Total 1024-byte rows per node (1024 for 1 MB)."""
        return self.memory_bytes // self.row_bytes

    @property
    def bank_a_rows(self) -> int:
        """Rows in bank A (paper: 256 vectors in one bank)."""
        return self.bank_a_words * 4 // self.row_bytes

    @property
    def bank_b_rows(self) -> int:
        """Rows in bank B (paper: 768 vectors in the other)."""
        return self.bank_b_words * 4 // self.row_bytes

    @property
    def vector_length_32(self) -> int:
        """Elements per vector register in 32-bit mode (256)."""
        return self.row_bytes // 4

    @property
    def vector_length_64(self) -> int:
        """Elements per vector register in 64-bit mode (128)."""
        return self.row_bytes // 8

    @property
    def cp_memory_bw_mb_s(self) -> float:
        """CP effective bandwidth to RAM: 4 bytes per word access (10 MB/s)."""
        return 4 / self.word_access_ns * 1000  # bytes/ns → MB/s

    @property
    def row_bw_mb_s(self) -> float:
        """Memory↔vector-register bandwidth (2560 MB/s)."""
        return self.row_bytes / self.row_access_ns * 1000

    @property
    def vector_register_bw_mb_s(self) -> float:
        """Vector-register↔arithmetic bandwidth: two 64-bit inputs and one
        output per cycle (192 MB/s)."""
        return 3 * 8 / self.cycle_ns * 1000

    # -- derived: arithmetic ---------------------------------------------
    @property
    def peak_mflops_per_node(self) -> float:
        """Adder + multiplier each produce one result per cycle (16)."""
        return 2 * (NS_PER_S / self.cycle_ns) / 1e6

    @property
    def peak_mflops_per_module(self) -> float:
        """Eight nodes per module (128)."""
        return self.peak_mflops_per_node * self.nodes_per_module

    # -- derived: gather / links -------------------------------------------
    @property
    def gather_ns_per_element_64(self) -> int:
        """Move one 64-bit element CP-side: 2 reads + 2 writes (1600 ns)."""
        return 4 * self.word_access_ns

    @property
    def gather_ns_per_element_32(self) -> int:
        """Move one 32-bit element CP-side: 1 read + 1 write (800 ns)."""
        return 2 * self.word_access_ns

    @property
    def link_bits_per_byte(self) -> int:
        """Wire bits consumed per data byte including acks (13)."""
        return (
            self.link_data_bits
            + self.link_sync_bits
            + self.link_stop_bits
            + self.link_ack_bits
        )

    @property
    def link_ns_per_byte(self) -> float:
        """Time to move one data byte over a link, framing included."""
        return self.link_bits_per_byte / self.link_bit_rate * NS_PER_S

    @property
    def link_bw_mb_s(self) -> float:
        """Effective unidirectional link bandwidth (≈0.577, paper: >0.5)."""
        return 1000.0 / self.link_ns_per_byte

    @property
    def link_ns_per_word_64(self) -> float:
        """Time to move one 64-bit word over a link (≈13.9 µs; the paper
        rounds this path to 16 µs in its ratio table)."""
        return 8 * self.link_ns_per_byte

    @property
    def total_link_bw_mb_s(self) -> float:
        """All four links, one direction each (>2 MB/s; both directions
        active gives the paper's 'over 4 MB/s')."""
        return self.links_per_node * self.link_bw_mb_s

    @property
    def sublinks_per_node(self) -> int:
        """Total sublinks (16)."""
        return self.links_per_node * self.sublinks_per_link

    @property
    def compute_sublinks_per_node(self) -> int:
        """Sublinks left for the hypercube after system + I/O (12)."""
        return (
            self.sublinks_per_node
            - self.system_sublinks_per_node
            - self.io_sublinks_per_node
        )

    @property
    def balance_ratio(self) -> tuple:
        """The paper's (arithmetic : gather : link) ratio per 64-bit
        operand, normalised to arithmetic time — (1, 13, 130)-ish."""
        arith = self.cycle_ns
        gather = self.gather_ns_per_element_64
        # The paper uses 16 µs for the link term (0.5 MB/s exactly).
        link = 8 / 0.5e6 * NS_PER_S
        return (1.0, gather / arith, link / arith)

    # -- module/machine derived ------------------------------------------
    @property
    def module_memory_bytes(self) -> int:
        """User RAM per module (8 MB)."""
        return self.nodes_per_module * self.memory_bytes

    @property
    def intramodule_bw_mb_s(self) -> float:
        """Local inter-node bandwidth within a module: 8 nodes × 3
        hypercube links, both directions ('over 12 MB/s')."""
        return (
            self.nodes_per_module
            * self.intramodule_links
            * self.link_bw_mb_s
        )

    def replace(self, **changes) -> "TSeriesSpecs":
        """Return a variant spec with ``changes`` applied (for ablations)."""
        return dataclasses.replace(self, **changes)


#: The canonical machine described in the paper.
PAPER_SPECS = TSeriesSpecs()
