"""Streamed (double-buffered) vector execution.

Paper §II: "The output of the arithmetic unit shifts results into
either or both banks" — results return to memory directly, and the
row port is independent of the pipes, so the row transfers of the
*next* vector can overlap the arithmetic of the current one.

:class:`VectorStreamer` runs a two-input vector form over a sequence
of row triples with software double buffering: while the pipes chew on
batch *i*, the row port prefetches batch *i+1* and drains batch *i−1*.
The ablation bench (A1) quantifies the gain over the naive
load-compute-store sequence — the remaining few percent of Figure 2's
"full speed".
"""

import numpy as np

from repro.fpu.vector_forms import FORMS
from repro.memory.vector_register import VectorRegister


class VectorStreamer:
    """Double-buffered form execution over many rows."""

    def __init__(self, node):
        self.node = node
        self.engine = node.engine
        specs = node.specs
        # Two extra register pairs for the prefetch side.  (Figure 1
        # shows one register per bank; streaming uses each bank's
        # register plus the arithmetic unit's own input staging, which
        # we model as a second pair.)
        self._buffers = [
            (VectorRegister(specs.row_bytes, index=100 + 2 * i),
             VectorRegister(specs.row_bytes, index=101 + 2 * i))
            for i in range(2)
        ]

    def run(self, form_name, row_triples, scalars=(), precision=64):
        """Process: run ``form_name`` over [(row_a, row_b, row_out)].

        Each triple must keep its two inputs in different banks (the
        dual-bank rule).  Returns the number of triples processed.
        """
        form = FORMS[form_name]
        if form.vector_inputs != 2 or form.reduction:
            raise ValueError(
                "streaming supports two-input, vector-result forms"
            )
        node = self.node
        engine = self.engine
        triples = list(row_triples)
        for row_a, row_b, _out in triples:
            node.check_banks(row_a, row_b)

        memory = node.memory
        vau = node.vau

        def load_pair(index, slot):
            row_a, row_b, _out = triples[index]
            reg_a, reg_b = self._buffers[slot]
            yield from memory.row_to_register(row_a, reg_a)
            yield from memory.row_to_register(row_b, reg_b)

        def compute(index, slot):
            reg_a, reg_b = self._buffers[slot]
            result = yield from vau.execute(
                form_name,
                [reg_a.elements(precision), reg_b.elements(precision)],
                scalars, precision,
            )
            return result

        def store(index, result):
            _a, _b, row_out = triples[index]
            raw = np.zeros(node.specs.row_bytes, dtype=np.uint8)
            data = np.asarray(result)
            raw[:data.nbytes] = data.view(np.uint8)
            # Store through a scratch register (the write-back path).
            scratch = self._buffers[index % 2][0]
            scratch.load_bytes(raw)
            yield from memory.register_to_row(scratch, row_out)

        if not triples:
            return 0

        # Software pipeline: prefetch 0; then loop {start compute i,
        # prefetch i+1 (overlapped), finish compute, store i}.
        yield from load_pair(0, 0)
        pending_store = None
        for i in range(len(triples)):
            slot = i % 2
            compute_proc = engine.process(compute(i, slot))
            if pending_store is not None:
                yield from store(*pending_store)
                pending_store = None
            if i + 1 < len(triples):
                yield from load_pair(i + 1, 1 - slot)
            result = yield compute_proc
            pending_store = (i, result)
        yield from store(*pending_store)
        return len(triples)

    def naive_run(self, form_name, row_triples, scalars=(), precision=64):
        """Process: the unoverlapped load→compute→store sequence, for
        the ablation comparison."""
        node = self.node
        count = 0
        for row_a, row_b, row_out in row_triples:
            yield from node.load_vector(row_a, reg=0)
            yield from node.load_vector(row_b, reg=1)
            yield from node.vector_op(
                form_name, [0, 1], scalars=scalars, precision=precision,
                dst_reg=0,
            )
            yield from node.store_vector(0, row_out)
            count += 1
        return count
