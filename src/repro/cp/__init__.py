"""The control processor: ISA, assembler, interpreter, scheduler,
gather/scatter.

Public surface:

* :class:`Op`, :class:`Secondary`, :func:`encode_direct`,
  :func:`encode_secondary` — the instruction set.
* :func:`assemble`, :class:`Program`, :class:`AssemblyError` — the
  assembler.
* :class:`CPU`, :class:`ArrayMemory`, :class:`CPUError`,
  :func:`to_signed` — the interpreter.
* :class:`Scheduler`, priority constants, descriptor helpers — the
  two-level process scheduler.
* :class:`GatherScatterEngine` — CP-side gather/scatter timing model.
"""

from repro.cp.isa import (
    MNEMONICS,
    Op,
    Secondary,
    encode_direct,
    encode_secondary,
    instruction_length,
)
from repro.cp.assembler import AssemblyError, Program, assemble
from repro.cp.cpu import (
    ArrayMemory,
    CPU,
    CPUError,
    MASK32,
    to_signed,
    to_unsigned,
)
from repro.cp.scheduler import (
    HIGH,
    LOW,
    NOT_PROCESS,
    Scheduler,
    descriptor_priority,
    descriptor_wptr,
    make_descriptor,
)
from repro.cp.gather import GatherScatterEngine, gather_addresses_values
from repro.cp.disasm import DecodedInstruction, decode_one, disassemble, listing
from repro.cp.link_channels import (
    LINK_CHANNEL_BASE,
    RendezvousChannel,
    SlotChannel,
    attach_link_channel,
    link_channel_address,
)

__all__ = [
    "ArrayMemory",
    "AssemblyError",
    "CPU",
    "CPUError",
    "DecodedInstruction",
    "GatherScatterEngine",
    "decode_one",
    "disassemble",
    "listing",
    "HIGH",
    "LINK_CHANNEL_BASE",
    "LOW",
    "MASK32",
    "RendezvousChannel",
    "SlotChannel",
    "attach_link_channel",
    "link_channel_address",
    "MNEMONICS",
    "NOT_PROCESS",
    "Op",
    "Program",
    "Scheduler",
    "Secondary",
    "assemble",
    "descriptor_priority",
    "descriptor_wptr",
    "encode_direct",
    "encode_secondary",
    "gather_addresses_values",
    "instruction_length",
    "make_descriptor",
    "to_signed",
    "to_unsigned",
]
