"""A two-pass assembler for the control processor.

Syntax, one statement per line::

    ; comment
    .equ  CHAN, 0x100       ; named constant
    start:
        ldc   42            ; direct instruction, literal operand
        stl   1
        ldc   buffer        ; labels are absolute values
        j     loop          ; branch operands become relative offsets
        add                 ; secondary (no-operand) instruction
        terminate

Because operands are variable-length (PFIX/NFIX chains), label values
depend on instruction sizes and vice versa; the assembler iterates to
a fixpoint (sizes only ever grow, so it terminates).
"""

import re

from repro.cp.isa import MNEMONICS, Op, encode_direct, encode_secondary

#: Direct ops whose operand is a code-relative branch displacement.
RELATIVE_OPS = {Op.J, Op.CJ, Op.CALL}


class AssemblyError(Exception):
    """Syntax error, unknown mnemonic, or unresolved symbol."""

    def __init__(self, message, line=None):
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)
        self.line = line


class Program:
    """Assembled output: code image plus the symbol table."""

    def __init__(self, code: bytes, symbols: dict):
        self.code = code
        self.symbols = dict(symbols)

    def __len__(self):
        return len(self.code)

    def address_of(self, label: str) -> int:
        """Code address of a label."""
        try:
            return self.symbols[label]
        except KeyError:
            raise AssemblyError(f"unknown label {label!r}") from None


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$")
_EQU_RE = re.compile(
    r"^\.equ\s+([A-Za-z_][A-Za-z0-9_]*)\s*,\s*(\S+)\s*$", re.IGNORECASE
)


def _parse_literal(text: str):
    """Integer literal or None (for a symbol reference)."""
    try:
        return int(text, 0)
    except ValueError:
        return None


class _Statement:
    __slots__ = ("kind", "code", "operand", "line", "size")

    def __init__(self, kind, code, operand, line):
        self.kind = kind          # 'direct' | 'secondary'
        self.code = code          # Op or Secondary
        self.operand = operand    # int | str (symbol) | None
        self.line = line
        self.size = 1


def assemble(source: str) -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    statements = []
    symbols = {}
    pending_labels = []
    equs = {}

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        equ = _EQU_RE.match(line)
        if equ:
            name, value_text = equ.group(1), equ.group(2)
            value = _parse_literal(value_text)
            if value is None:
                if value_text not in equs:
                    raise AssemblyError(
                        f"undefined .equ reference {value_text!r}", lineno
                    )
                value = equs[value_text]
            equs[name] = value
            continue
        label = _LABEL_RE.match(line)
        if label:
            pending_labels.append((label.group(1), lineno))
            line = label.group(2).strip()
            if not line:
                continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1].strip() if len(parts) > 1 else None
        if mnemonic not in MNEMONICS:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", lineno)
        kind, code = MNEMONICS[mnemonic]
        if kind == "secondary":
            if operand_text is not None:
                raise AssemblyError(
                    f"{mnemonic} takes no operand", lineno
                )
            operand = None
        else:
            if code in (Op.PFIX, Op.NFIX):
                raise AssemblyError(
                    "pfix/nfix are emitted automatically", lineno
                )
            if operand_text is None:
                raise AssemblyError(f"{mnemonic} needs an operand", lineno)
            literal = _parse_literal(operand_text)
            operand = literal if literal is not None else operand_text
        statement = _Statement(kind, code, operand, lineno)
        for name, label_line in pending_labels:
            if name in symbols:
                raise AssemblyError(f"duplicate label {name!r}", label_line)
            symbols[name] = statement  # resolved to an address below
        pending_labels = []
        statements.append(statement)

    if pending_labels:
        # Trailing labels point just past the last instruction.
        pass

    def resolve(operand, address_of, next_addr, relative, line):
        if isinstance(operand, int):
            return operand
        if operand in equs:
            value = equs[operand]
        else:
            target = symbols.get(operand)
            if target is None:
                raise AssemblyError(f"undefined symbol {operand!r}", line)
            value = address_of[id(target)]
        return value - next_addr if relative else value

    # Iterate sizes to a fixpoint.
    for _round in range(64):
        address_of = {}
        addr = 0
        for st in statements:
            address_of[id(st)] = addr
            addr += st.size
        end_addr = addr
        changed = False
        encodings = []
        for st in statements:
            if st.kind == "secondary":
                enc = encode_secondary(st.code)
            else:
                relative = st.code in RELATIVE_OPS
                next_addr = address_of[id(st)] + st.size
                value = resolve(
                    st.operand, address_of, next_addr, relative, st.line
                )
                enc = encode_direct(st.code, value)
            encodings.append(enc)
            if len(enc) != st.size:
                st.size = len(enc)
                changed = True
        if not changed:
            code = b"".join(encodings)
            table = {
                name: address_of[id(st)] for name, st in symbols.items()
            }
            for name, _line in pending_labels:
                table[name] = end_addr
            table.update(equs)
            return Program(code, table)
    raise AssemblyError("assembler failed to converge (cyclic sizes?)")
