"""The control-processor interpreter.

A 32-bit, byte-addressed stack machine with the three-register
evaluation stack (Areg, Breg, Creg), workspace-pointer locals, the
PFIX/NFIX variable-length operand scheme, soft (memory-word) channels
with rendezvous semantics, and the two-priority scheduler — the
feature list the paper gives for the T Series node's control unit.

Two execution modes:

* :meth:`CPU.run` — untimed stepping, for ISA-level programs and tests.
* :meth:`CPU.as_process` — an engine process that charges simulated
  time per instruction (7.5 MIPS average; off-chip memory accesses at
  the 400 ns word-port rate), for whole-node simulations.

Decoded-instruction cache
-------------------------
Re-decoding the PFIX/NFIX prefix chain and walking the opcode
if-ladder on *every* execution of every instruction is the
interpreter's dominant cost.  Instruction execution is therefore split
into one bound method per opcode, and :meth:`CPU.step` keeps a
**decoded-instruction cache**: the first time an instruction at a
given PC executes, its whole prefix chain is decoded once into a
``(bound-method, operand, next_pc, byte_count, prefix_cycles, op)``
tuple; every later execution dispatches straight from the cache.
Architectural state (instruction and cycle counters, trace log,
Iptr/Oreg behaviour) is updated exactly as the byte-at-a-time
reference path would.

The cache is keyed by PC and is only consulted when ``Oreg == 0``,
which is true at every instruction-chain boundary — including jumps
into the middle of a prefix chain, which simply get their own cache
entry.  It is **invalidated on code-store writes**: the only supported
way to modify code after construction is :meth:`CPU.patch_code`, which
clears the whole cache (a conservative rule — a patched byte can
change the meaning of any chain that runs through it).

Basic-block translator (turbo kernel)
-------------------------------------
On the default *turbo* tier (see
:func:`repro.events.engine.kernel_tier`) the decoded cache grows into
a **basic-block translator**: starting from a chain boundary, a
straight-line run of *safe* chains — operations that only touch the
evaluation stack, workspace/data memory, the workspace pointer, and
the error flag — is decoded once into a block record with pre-summed
byte and cycle totals.  :meth:`step` then executes the whole block in
one call: per chain only ``Iptr`` is set and the pre-bound handler
invoked; the instruction and cycle counters advance by the pre-summed
totals afterwards.  A block ends at any branch, call, channel
operation, or scheduler/priority point (the *tail*, executed with
exact fast-path semantics), so architectural state at every chain
boundary a harness can observe is bit-identical to the other tiers.
:attr:`step_barrier` lets harnesses (self-modifying-code patching,
``as_process`` yield pacing) force control back at the first chain
boundary where ``instructions >= barrier`` — the same boundary the
chain-at-a-time tiers would stop at.  :meth:`patch_code` invalidates
exactly the blocks whose span overlaps the patched range.

Kernel tiers: ``REPRO_SLOW_KERNEL=1`` disables both caches, forcing
the byte-at-a-time reference path (used by the equivalence regression
tests and the wall-clock benchmark baseline); ``REPRO_TURBO_KERNEL=0``
disables only the block translator, keeping the PR-1 decoded cache
(the *fast* tier).
"""

from repro.cp.isa import CYCLE_COSTS, Op, Secondary
from repro.cp.scheduler import (
    HIGH,
    LOW,
    NOT_PROCESS,
    Scheduler,
    descriptor_priority,
    descriptor_wptr,
    make_descriptor,
)
from repro.events.engine import kernel_tier

MASK32 = 0xFFFFFFFF
MIN_INT = -(1 << 31)
MAX_INT = (1 << 31) - 1


def to_signed(value: int) -> int:
    """Interpret a 32-bit pattern as signed."""
    value &= MASK32
    return value - (1 << 32) if value >> 31 else value


def to_unsigned(value: int) -> int:
    """Wrap any integer to a 32-bit pattern."""
    return value & MASK32


class CPUError(Exception):
    """Illegal instruction, bad address, or deadlock."""


class ExternalIO(Exception):
    """Internal signal: an IN/OUT hit an external (link) channel.

    Raised by the step loop and caught by :meth:`CPU.as_process`,
    which performs the transfer through the engine-level channel
    object and resumes the CPU.  ``direction`` is 'in' or 'out'.
    """

    def __init__(self, direction, channel, pointer, count):
        super().__init__(direction)
        self.direction = direction
        self.channel = channel
        self.pointer = pointer
        self.count = count


class ArrayMemory:
    """A flat word-addressable memory for standalone CPU programs.

    Node integration replaces this with a view onto the node's
    :class:`~repro.memory.DualPortMemory`.
    """

    def __init__(self, size_bytes: int = 64 * 1024):
        if size_bytes % 4:
            raise ValueError("memory size must be word aligned")
        self.size = size_bytes
        self._words = [0] * (size_bytes // 4)

    def read_word(self, address: int) -> int:
        if address % 4 or not 0 <= address < self.size:
            raise CPUError(f"bad word read at {address:#x}")
        return self._words[address // 4]

    def write_word(self, address: int, value: int) -> None:
        if address % 4 or not 0 <= address < self.size:
            raise CPUError(f"bad word write at {address:#x}")
        self._words[address // 4] = to_unsigned(value)

    def read_bytes(self, address: int, count: int) -> bytes:
        out = bytearray()
        for i in range(count):
            word = self.read_word((address + i) & ~0x3)
            out.append((word >> (8 * ((address + i) & 0x3))) & 0xFF)
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        for i, b in enumerate(data):
            a = address + i
            word = self.read_word(a & ~0x3)
            shift = 8 * (a & 0x3)
            word = (word & ~(0xFF << shift)) | (b << shift)
            self.write_word(a & ~0x3, word)


class CPU:
    """The interpreter.

    Parameters
    ----------
    code : bytes
        The program image (lives in the 2 KB-style on-chip store; data
        lives in ``memory``).  Modify it only through
        :meth:`patch_code`, which invalidates the decoded cache.
    memory : object
        Word-addressed data memory (``read_word``/``write_word`` and
        the byte variants).
    entry : int
        Initial instruction pointer.
    wptr : int
        Initial workspace pointer (top of the initial workspace).
    priority : int
        Initial process priority (HIGH or LOW).
    """

    def __init__(self, code, memory=None, entry=0, wptr=None, priority=LOW,
                 trace=False):
        self.code = bytearray(code)
        self.memory = memory or ArrayMemory()
        self.areg = 0
        self.breg = 0
        self.creg = 0
        self.oreg = 0
        self.iptr = entry
        default_top = getattr(self.memory, "size", 1 << 20)
        self.wptr = wptr if wptr is not None else default_top - 256
        self.priority = priority
        self.error = False
        self.halted = False
        #: True if the CPU stopped because every process was blocked.
        self.deadlocked = False
        self.scheduler = Scheduler()
        self.scheduler.current = (self.wptr, priority)
        self.instructions = 0
        self.cycles = 0
        self.trace = trace
        self._trace_log = []
        #: External channel table: address → object with engine hooks
        #: (used by node integration; bare CPUs have none).
        self.external_channels = {}
        # Bound dispatch tables (index = primary opcode / secondary
        # number) and the PC-keyed decoded-instruction cache.
        self._primary = tuple(
            fn.__get__(self) if fn is not None else None
            for fn in self._PRIMARY_FUNCS
        )
        self._secondary = {
            sec: fn.__get__(self) for sec, fn in self._SECONDARY_FUNCS.items()
        }
        tier = kernel_tier()
        self.kernel_tier = tier
        self._decoded = {}
        self._use_cache = tier != "reference"
        # Turbo tier and above: translated basic blocks, keyed by start
        # PC, plus a negative cache of PCs where translation was not
        # worthwhile.
        self._use_blocks = tier in ("turbo", "vector")
        self._blocks = {}
        self._unblocked = set()
        #: When set, the turbo tier returns control from :meth:`step`
        #: at the first instruction-chain boundary where
        #: ``instructions >= step_barrier`` instead of running through
        #: it — the boundary the chain-at-a-time tiers would observe.
        self.step_barrier = None
        # Cache profiling counters (see cache_stats()).
        self.decoded_hits = 0
        self.decoded_misses = 0
        self.decoded_invalidations = 0
        self.block_hits = 0
        self.block_translations = 0
        self.block_chains = 0
        self.block_invalidations = 0
        self.block_imports = 0

    # -- code store ---------------------------------------------------------

    def patch_code(self, address: int, data) -> None:
        """Write ``data`` into the code store at ``address``.

        This is the only supported way to modify code after
        construction; it invalidates the entire decoded-instruction
        cache (a patched byte may sit in the middle of a cached prefix
        chain, and per-PC entries do not record their spans) and
        exactly the translated blocks whose recorded ``[start, end)``
        span overlaps the patched range.
        """
        data = bytes(data)
        if not 0 <= address <= len(self.code) - len(data):
            raise CPUError(
                f"code patch [{address:#x}, {address + len(data):#x}) "
                f"outside code store"
            )
        self.code[address:address + len(data)] = data
        self.decoded_invalidations += len(self._decoded)
        self._decoded.clear()
        if self._blocks:
            lo, hi = address, address + len(data)
            stale = [
                pc for pc, block in self._blocks.items()
                if block[6] < hi and block[7] > lo
            ]
            for pc in stale:
                del self._blocks[pc]
            self.block_invalidations += len(stale)
        # A patch can turn an untranslatable run into a translatable
        # one (and vice versa): retry everything.
        self._unblocked.clear()

    def cache_stats(self) -> dict:
        """Decoded-cache and translated-block counters, rolled up.

        * ``decoded_hits`` / ``decoded_misses`` — chain dispatches
          served from / decoded into the per-PC cache;
        * ``decoded_invalidations`` — cached chains dropped by
          :meth:`patch_code` (the whole cache clears per patch);
        * ``block_translations`` — basic blocks compiled;
        * ``block_chains`` — chains packed into those blocks;
        * ``block_hits`` — block executions (each replaces
          that many chain dispatches);
        * ``block_invalidations`` — blocks dropped by
          :meth:`patch_code` span overlap;
        * ``kernel_tier`` — the tier this CPU was built under.
        """
        return {
            "kernel_tier": self.kernel_tier,
            "decoded_hits": self.decoded_hits,
            "decoded_misses": self.decoded_misses,
            "decoded_invalidations": self.decoded_invalidations,
            "block_translations": self.block_translations,
            "block_chains": self.block_chains,
            "block_hits": self.block_hits,
            "block_invalidations": self.block_invalidations,
            "block_imports": self.block_imports,
        }

    #: Serialized block-table format version (see :meth:`export_blocks`).
    BLOCK_TABLE_SCHEMA = 1

    def export_blocks(self) -> dict:
        """Serialize the translated-block tables as a JSON-able dict.

        Block records hold bound handler methods, so the payload
        stores each chain's *identity* — ``(op, operand, next_pc,
        byte_count, prefix_cycles)`` — and :meth:`import_blocks`
        re-derives the handlers, static costs, and prefix sums from
        the same tables runtime translation uses.  A loaded table is
        therefore structurally identical to what
        :meth:`_translate_block` would build for the same code image;
        the payload carries the code digest so a stale artifact can
        never attach to different code.
        """
        import hashlib

        blocks = []
        for pc in sorted(self._blocks):
            chains, _tb, _tc, _cb, _cc, tail, _start, _end = \
                self._blocks[pc]
            blocks.append({
                "pc": pc,
                "chains": [
                    [Op[name].value, operand, next_pc, nbytes, prefix]
                    for (_h, operand, next_pc, nbytes, prefix,
                         name, _cost) in chains
                ],
                "tail": None if tail is None else list(
                    (tail[5], tail[1], tail[2], tail[3], tail[4])
                ),
            })
        return {
            "schema": self.BLOCK_TABLE_SCHEMA,
            "code_sha256": hashlib.sha256(bytes(self.code)).hexdigest(),
            "blocks": blocks,
            "unblocked": sorted(self._unblocked),
        }

    def import_blocks(self, payload: dict) -> int:
        """Install a serialized block table (see :meth:`export_blocks`).

        Every chain is re-validated against the safe-cost tables and
        its handlers rebound on this CPU, so a tampered or stale
        payload is rejected rather than mis-executed.  Counts as
        ``block_imports``, not ``block_translations`` — a warm start
        from an ahead-of-time artifact leaves the runtime translator
        untouched.  Returns the number of blocks installed.
        """
        import hashlib

        if not self._use_blocks:
            raise CPUError(
                "block import requires a block-translating kernel tier"
            )
        if payload.get("schema") != self.BLOCK_TABLE_SCHEMA:
            raise CPUError(
                f"unsupported block-table schema {payload.get('schema')!r}"
            )
        digest = hashlib.sha256(bytes(self.code)).hexdigest()
        if payload.get("code_sha256") != digest:
            raise CPUError("block table was built for different code")
        installed = {}
        for record in payload["blocks"]:
            chains = []
            cum_bytes = []
            cum_cycles = []
            total_bytes = 0
            total_cycles = 0
            for op, operand, next_pc, nbytes, prefix in record["chains"]:
                if op == Op.OPR:
                    handler = self._secondary.get(operand)
                    cost = self._SAFE_SECONDARY_COST.get(operand)
                else:
                    handler = self._primary[op]
                    cost = self._SAFE_PRIMARY_COST.get(op)
                if handler is None or cost is None:
                    raise CPUError("unsafe chain in imported block table")
                cum_bytes.append(total_bytes)
                cum_cycles.append(total_cycles)
                chains.append((handler, operand, next_pc, nbytes,
                               prefix, Op(op).name, cost))
                total_bytes += nbytes
                total_cycles += prefix + cost
            if len(chains) < 2:
                raise CPUError("imported block shorter than two chains")
            tail = record.get("tail")
            if tail is not None:
                op, operand, next_pc, nbytes, prefix = tail
                if op == Op.OPR:
                    handler = self._secondary.get(operand)
                else:
                    handler = self._primary[op]
                if handler is None:
                    raise CPUError("undecodable tail in imported block")
                tail = (handler, operand, next_pc, nbytes, prefix, op)
            pc = record["pc"]
            end = tail[2] if tail is not None else chains[-1][2]
            installed[pc] = (tuple(chains), total_bytes, total_cycles,
                             tuple(cum_bytes), tuple(cum_cycles),
                             tail, pc, end)
        self._blocks.update(installed)
        self._unblocked |= set(payload.get("unblocked", []))
        self.block_imports += len(installed)
        return len(installed)

    # -- conformance --------------------------------------------------------

    def snapshot_state(self, with_memory: bool = True) -> dict:
        """Architectural state as a JSON-able dict.

        This is the fingerprint the differential-testing oracle
        compares between the cached fast path and the byte-at-a-time
        reference path: registers, pointers, flags, the instruction and
        cycle counters, the scheduler queues, and (optionally) a digest
        of data memory.  Anything the two paths could silently disagree
        on belongs here.
        """
        import hashlib

        state = {
            "areg": to_signed(self.areg),
            "breg": to_signed(self.breg),
            "creg": to_signed(self.creg),
            "oreg": self.oreg,
            "iptr": self.iptr,
            "wptr": self.wptr,
            "priority": self.priority,
            "error": self.error,
            "halted": self.halted,
            "deadlocked": self.deadlocked,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "queues": {
                "high": list(self.scheduler.queues[HIGH]),
                "low": list(self.scheduler.queues[LOW]),
            },
            "code_sha256": hashlib.sha256(bytes(self.code)).hexdigest(),
        }
        words = getattr(self.memory, "_words", None)
        if with_memory and words is not None:
            digest = hashlib.sha256()
            for word in words:
                digest.update(word.to_bytes(4, "little"))
            state["memory_sha256"] = digest.hexdigest()
        return state

    @property
    def trace_log(self):
        """The per-instruction trace (requires ``trace=True``)."""
        return list(self._trace_log)

    # -- stack helpers ------------------------------------------------------

    def _push(self, value: int) -> None:
        self.creg = self.breg
        self.breg = self.areg
        self.areg = to_unsigned(value)

    def _pop(self) -> int:
        value = self.areg
        self.areg = self.breg
        self.breg = self.creg
        return value

    # -- process switching -------------------------------------------------

    def _save_iptr(self) -> None:
        """Save the resume point in the workspace (offset −1 word)."""
        self.memory.write_word(self.wptr - 4, self.iptr)

    def _deschedule(self, requeue: bool) -> None:
        """Stop running the current process; optionally requeue it."""
        self._save_iptr()
        if requeue:
            self.scheduler.enqueue(self.wptr, self.priority)
        self._switch_to_next()

    def _switch_to_next(self) -> None:
        nxt = self.scheduler.next_process()
        if nxt is None:
            # Nothing runnable.  Processes may be parked on channel
            # words (deadlock if no external event will free them).
            self.halted = True
            self.deadlocked = True
            return
        self.wptr, self.priority = nxt
        self.iptr = self.memory.read_word(self.wptr - 4)

    def _make_runnable(self, wptr: int, priority: int) -> None:
        self.scheduler.enqueue(wptr, priority)
        if priority == HIGH and self.priority == LOW:
            # Preemption: the high-priority process displaces us now.
            self._deschedule(requeue=True)

    # -- channels -----------------------------------------------------

    def _channel_io(self, is_input: bool) -> None:
        """The soft-channel rendezvous: IN and OUT.

        A channel is a memory word.  Idle it holds NOT_PROCESS; with
        one party waiting it holds that party's process descriptor
        (its data pointer parked in workspace offset −3).  The second
        party performs the copy and reschedules the first.
        """
        count = to_signed(self._pop())
        chan = self._pop()
        pointer = self._pop()
        if count < 0:
            raise CPUError("negative channel transfer count")
        if chan in self.external_channels:
            # Hand the transfer to the engine-mode driver; untimed
            # run() has no engine to block on.
            raise ExternalIO(
                "in" if is_input else "out",
                self.external_channels[chan], pointer, count,
            )
        word = self.memory.read_word(chan)
        if word == NOT_PROCESS:
            # First to arrive: park and deschedule.
            self.memory.write_word(
                chan, make_descriptor(self.wptr, self.priority)
            )
            self.memory.write_word(self.wptr - 12, pointer)
            self.memory.write_word(self.wptr - 16, count)
            self._deschedule(requeue=False)
            return
        # Second to arrive: the copy direction follows our role.
        partner_wptr = descriptor_wptr(word)
        partner_priority = descriptor_priority(word)
        partner_ptr = self.memory.read_word(partner_wptr - 12)
        partner_count = to_signed(self.memory.read_word(partner_wptr - 16))
        if partner_count != count:
            raise CPUError(
                f"channel length mismatch: {count} vs {partner_count}"
            )
        if is_input:
            data = self.memory.read_bytes(partner_ptr, count)
            self.memory.write_bytes(pointer, data)
        else:
            data = self.memory.read_bytes(pointer, count)
            self.memory.write_bytes(partner_ptr, data)
        self.memory.write_word(chan, NOT_PROCESS)
        self._make_runnable(partner_wptr, partner_priority)

    # -- the decode/execute cycle ---------------------------------------

    def _decode(self, pc: int):
        """Decode the full instruction chain starting at ``pc``.

        Returns ``(handler, operand, next_pc, byte_count,
        prefix_cycles, op)`` or ``None`` when the chain cannot be
        decoded (PC out of bounds, chain running off the end of the
        code store, or an unknown secondary) — those cases fall back to
        the byte-wise path so the error surfaces exactly as it always
        did.
        """
        code = self.code
        size = len(code)
        oreg = 0
        cursor = pc
        prefix_cycles = 0
        while True:
            if not 0 <= cursor < size:
                return None
            byte = code[cursor]
            op = byte >> 4
            oreg |= byte & 0xF
            cursor += 1
            if op == Op.PFIX:
                oreg <<= 4
                prefix_cycles += 1
                continue
            if op == Op.NFIX:
                oreg = (~oreg) << 4
                prefix_cycles += 1
                continue
            break
        if op == Op.OPR:
            handler = self._secondary.get(oreg)
        else:
            handler = self._primary[op]
        if handler is None:
            return None
        return (handler, oreg, cursor, cursor - pc, prefix_cycles, op)

    def step(self) -> int:
        """Decode and execute one instruction; returns its cycle cost.

        On the cached fast path one call executes a whole prefix chain
        plus its final opcode and returns the chain's total cost; on
        the turbo tier one call may execute a whole translated basic
        block (bounded by :attr:`step_barrier`); the reference path
        (cache disabled, or mid-chain ``Oreg`` state) executes a single
        code byte per call, exactly as the hardware decodes.
        Architectural state at every chain boundary advances
        identically on all tiers.
        """
        if self.halted:
            raise CPUError("CPU is halted")
        if self._use_cache and self.oreg == 0:
            iptr = self.iptr
            if self._use_blocks:
                block = self._blocks.get(iptr)
                if block is None and iptr not in self._unblocked:
                    block = self._translate_block(iptr)
                if block is not None:
                    return self._run_block(block)
            decoded = self._decoded
            entry = decoded.get(iptr)
            if entry is None:
                self.decoded_misses += 1
                entry = self._decode(iptr)
                if entry is not None:
                    decoded[iptr] = entry
            else:
                self.decoded_hits += 1
            if entry is not None:
                handler, operand, next_pc, nbytes, prefix_cycles, op = entry
                self.iptr = next_pc
                self.instructions += nbytes
                self.cycles += prefix_cycles
                cost = handler(operand)
                self.cycles += cost
                if self.trace:
                    self._trace_log.append(
                        (self.instructions, Op(op).name, operand,
                         to_signed(self.areg))
                    )
                return prefix_cycles + cost
        return self._step_byte()

    # -- the turbo tier: basic-block translation ------------------------

    #: Longest straight-line run packed into one block.
    BLOCK_CHAIN_CAP = 64

    def _translate_block(self, pc: int):
        """Compile the straight-line run of safe chains at ``pc``.

        Returns the block record, or None (and remembers the PC in the
        negative cache) when fewer than two safe chains start there —
        those PCs use the plain decoded-chain dispatch.  The record is
        a tuple::

            (chains, total_bytes, total_cycles, cum_bytes, cum_cycles,
             tail, start, end)

        ``chains`` holds ``(handler, operand, next_pc, byte_count,
        prefix_cycles, op_name, cost)`` per safe chain, with ``cost``
        from the static safe-cost tables (pinned against the handlers
        by a regression test).  ``cum_bytes``/``cum_cycles`` are
        exclusive prefix sums for exception fix-up.  ``tail`` is the
        decoded unsafe chain ending the run (or None at a decode
        boundary), and ``[start, end)`` is the code-store span covered
        — including the tail — used for patch invalidation.
        """
        chains = []
        cum_bytes = []
        cum_cycles = []
        total_bytes = 0
        total_cycles = 0
        tail = None
        cursor = pc
        safe_primary = self._SAFE_PRIMARY_COST
        safe_secondary = self._SAFE_SECONDARY_COST
        while len(chains) < self.BLOCK_CHAIN_CAP:
            entry = self._decode(cursor)
            if entry is None:
                break
            handler, operand, next_pc, nbytes, prefix_cycles, op = entry
            if op == Op.OPR:
                cost = safe_secondary.get(operand)
            else:
                cost = safe_primary.get(op)
            if cost is None:
                tail = entry
                break
            cum_bytes.append(total_bytes)
            cum_cycles.append(total_cycles)
            chains.append((handler, operand, next_pc, nbytes,
                           prefix_cycles, Op(op).name, cost))
            total_bytes += nbytes
            total_cycles += prefix_cycles + cost
            cursor = next_pc
        if len(chains) < 2:
            self._unblocked.add(pc)
            return None
        end = tail[2] if tail is not None else cursor
        block = (tuple(chains), total_bytes, total_cycles,
                 tuple(cum_bytes), tuple(cum_cycles), tail, pc, end)
        self._blocks[pc] = block
        self.block_translations += 1
        self.block_chains += len(chains)
        return block

    def _run_block(self, block) -> int:
        """Execute one translated block; returns its total cycle cost."""
        chains, total_bytes, total_cycles, cum_bytes, cum_cycles, \
            tail, start, end = block
        barrier = self.step_barrier
        if barrier is not None and self.instructions + (end - start) \
                >= barrier:
            return self._run_block_careful(block, barrier)
        self.block_hits += 1
        if self.trace:
            trace_log = self._trace_log
            for entry in chains:
                self.iptr = entry[2]
                self.instructions += entry[3]
                self.cycles += entry[4]
                entry[0](entry[1])
                self.cycles += entry[6]
                trace_log.append(
                    (self.instructions, entry[5], entry[1],
                     to_signed(self.areg))
                )
        else:
            i = 0
            try:
                for entry in chains:
                    self.iptr = entry[2]
                    entry[0](entry[1])
                    i += 1
            except BaseException:
                # Restore the exact chain-at-a-time state at the
                # failing chain: full cost of completed chains, plus
                # this chain's bytes and prefix cycles (the fast path
                # charges those before invoking the handler).
                self.instructions += cum_bytes[i] + chains[i][3]
                self.cycles += cum_cycles[i] + chains[i][4]
                raise
            self.instructions += total_bytes
            self.cycles += total_cycles
        cost = total_cycles
        if tail is not None:
            cost += self._exec_chain(tail)
        return cost

    def _run_block_careful(self, block, barrier: int) -> int:
        """Chain-at-a-time block execution honouring ``step_barrier``.

        Returns control at the first chain boundary where
        ``instructions >= barrier`` — bit-identically to how the
        chain-at-a-time tiers pace a harness's between-step checks.
        """
        chains, _tb, _tc, _cb, _cc, tail, _start, _end = block
        self.block_hits += 1
        total = 0
        trace = self.trace
        for entry in chains:
            self.iptr = entry[2]
            self.instructions += entry[3]
            self.cycles += entry[4]
            entry[0](entry[1])
            self.cycles += entry[6]
            if trace:
                self._trace_log.append(
                    (self.instructions, entry[5], entry[1],
                     to_signed(self.areg))
                )
            total += entry[4] + entry[6]
            if self.instructions >= barrier:
                return total
        if tail is not None:
            total += self._exec_chain(tail)
        return total

    def _exec_chain(self, entry) -> int:
        """Execute one decoded chain with exact fast-path semantics."""
        handler, operand, next_pc, nbytes, prefix_cycles, op = entry
        self.iptr = next_pc
        self.instructions += nbytes
        self.cycles += prefix_cycles
        cost = handler(operand)
        self.cycles += cost
        if self.trace:
            self._trace_log.append(
                (self.instructions, Op(op).name, operand,
                 to_signed(self.areg))
            )
        return prefix_cycles + cost

    def _step_byte(self) -> int:
        """The byte-at-a-time reference decode path."""
        if not 0 <= self.iptr < len(self.code):
            raise CPUError(f"Iptr {self.iptr:#x} outside code")
        byte = self.code[self.iptr]
        op = byte >> 4
        nibble = byte & 0xF
        self.iptr += 1
        self.instructions += 1
        self.oreg |= nibble

        if op == Op.PFIX:
            self.oreg <<= 4
            self.cycles += 1
            return 1
        if op == Op.NFIX:
            self.oreg = (~self.oreg) << 4
            self.cycles += 1
            return 1

        operand = self.oreg
        self.oreg = 0
        cost = self._execute(op, operand)
        self.cycles += cost
        if self.trace:
            self._trace_log.append(
                (self.instructions, Op(op).name, operand,
                 to_signed(self.areg))
            )
        return cost

    def _execute(self, op: int, operand: int) -> int:
        handler = self._primary[op] if 0 <= op < 16 else None
        if handler is None:  # pragma: no cover - all 16 opcodes handled
            raise CPUError(f"undecodable opcode {op:#x}")
        return handler(operand)

    # -- primary opcode handlers -------------------------------------------
    #
    # One bound method per direct opcode.  Each takes the (fully
    # prefixed) operand and returns its cycle cost; the decoded cache
    # stores these bound methods directly.

    def _op_ldc(self, operand: int) -> int:
        self._push(operand)
        return CYCLE_COSTS["default"]

    def _op_ldl(self, operand: int) -> int:
        self._push(self.memory.read_word(self.wptr + 4 * operand))
        return CYCLE_COSTS["default"]

    def _op_stl(self, operand: int) -> int:
        self.memory.write_word(self.wptr + 4 * operand, self._pop())
        return CYCLE_COSTS["default"]

    def _op_ldlp(self, operand: int) -> int:
        self._push(self.wptr + 4 * operand)
        return CYCLE_COSTS["default"]

    def _op_ldnl(self, operand: int) -> int:
        self.areg = self.memory.read_word(
            to_unsigned(self.areg) + 4 * operand
        )
        return CYCLE_COSTS["default"]

    def _op_stnl(self, operand: int) -> int:
        address = self._pop()
        value = self._pop()
        self.memory.write_word(to_unsigned(address) + 4 * operand, value)
        return CYCLE_COSTS["default"]

    def _op_ldnlp(self, operand: int) -> int:
        self.areg = to_unsigned(self.areg + 4 * operand)
        return CYCLE_COSTS["default"]

    def _op_adc(self, operand: int) -> int:
        result = to_signed(self.areg) + operand
        if not MIN_INT <= result <= MAX_INT:
            self.error = True
        self.areg = to_unsigned(result)
        return CYCLE_COSTS["default"]

    def _op_eqc(self, operand: int) -> int:
        self.areg = 1 if to_signed(self.areg) == operand else 0
        return CYCLE_COSTS["default"]

    def _op_j(self, operand: int) -> int:
        self.iptr += operand
        # Descheduling point: timeslice low-priority processes.
        if self.scheduler.timeslice_expired():
            self._deschedule(requeue=True)
        return CYCLE_COSTS["branch"]

    def _op_cj(self, operand: int) -> int:
        if to_signed(self.areg) == 0:
            self.iptr += operand
        else:
            self._pop()
        return CYCLE_COSTS["branch"]

    def _op_call(self, operand: int) -> int:
        mem = self.memory
        self.wptr -= 16
        mem.write_word(self.wptr, self.iptr)
        mem.write_word(self.wptr + 4, self.areg)
        mem.write_word(self.wptr + 8, self.breg)
        mem.write_word(self.wptr + 12, self.creg)
        self.iptr += operand
        return CYCLE_COSTS["call"]

    def _op_ajw(self, operand: int) -> int:
        self.wptr += 4 * operand
        return CYCLE_COSTS["default"]

    def _op_opr(self, operand: int) -> int:
        return self._operate(operand)

    def _operate(self, sec: int) -> int:
        handler = self._secondary.get(sec)
        if handler is None:
            raise CPUError(f"unknown secondary opcode {sec:#x}")
        return handler(sec)

    # -- secondary (OPR) handlers ------------------------------------------
    #
    # Each takes the secondary number (ignored — it is fixed per
    # handler; the uniform signature keeps cache dispatch branch-free)
    # and returns its cycle cost.

    def _sec_rev(self, _sec=None) -> int:
        self.areg, self.breg = self.breg, self.areg
        return CYCLE_COSTS["default"]

    def _sec_add(self, _sec=None) -> int:
        result = to_signed(self.breg) + to_signed(self.areg)
        if not MIN_INT <= result <= MAX_INT:
            self.error = True
        self._binary(result)
        return CYCLE_COSTS["default"]

    def _sec_sub(self, _sec=None) -> int:
        result = to_signed(self.breg) - to_signed(self.areg)
        if not MIN_INT <= result <= MAX_INT:
            self.error = True
        self._binary(result)
        return CYCLE_COSTS["default"]

    def _sec_diff(self, _sec=None) -> int:
        self._binary(self.breg - self.areg)  # modulo, no error
        return CYCLE_COSTS["default"]

    def _sec_mul(self, _sec=None) -> int:
        result = to_signed(self.breg) * to_signed(self.areg)
        if not MIN_INT <= result <= MAX_INT:
            self.error = True
        self._binary(result)
        return CYCLE_COSTS["mul"]

    def _sec_div(self, _sec=None) -> int:
        a, b = to_signed(self.areg), to_signed(self.breg)
        if a == 0 or (a == -1 and b == MIN_INT):
            self.error = True
            self._binary(0)
        else:
            self._binary(int(b / a))  # trunc toward zero
        return CYCLE_COSTS["div"]

    def _sec_rem(self, _sec=None) -> int:
        a, b = to_signed(self.areg), to_signed(self.breg)
        if a == 0:
            self.error = True
            self._binary(0)
        else:
            self._binary(b - int(b / a) * a)
        return CYCLE_COSTS["div"]

    def _sec_gt(self, _sec=None) -> int:
        self._binary(
            1 if to_signed(self.breg) > to_signed(self.areg) else 0
        )
        return CYCLE_COSTS["default"]

    def _sec_and(self, _sec=None) -> int:
        self._binary(self.breg & self.areg)
        return CYCLE_COSTS["default"]

    def _sec_or(self, _sec=None) -> int:
        self._binary(self.breg | self.areg)
        return CYCLE_COSTS["default"]

    def _sec_xor(self, _sec=None) -> int:
        self._binary(self.breg ^ self.areg)
        return CYCLE_COSTS["default"]

    def _sec_not(self, _sec=None) -> int:
        self.areg = to_unsigned(~self.areg)
        return CYCLE_COSTS["default"]

    def _sec_shl(self, _sec=None) -> int:
        shift = to_signed(self.areg)
        self._binary(self.breg << shift if 0 <= shift < 32 else 0)
        return CYCLE_COSTS["default"]

    def _sec_shr(self, _sec=None) -> int:
        shift = to_signed(self.areg)
        self._binary(self.breg >> shift if 0 <= shift < 32 else 0)
        return CYCLE_COSTS["default"]

    def _sec_mint(self, _sec=None) -> int:
        self._push(0x80000000)
        return CYCLE_COSTS["default"]

    def _sec_dup(self, _sec=None) -> int:
        self._push(self.areg)
        return CYCLE_COSTS["default"]

    def _sec_ret(self, _sec=None) -> int:
        self.iptr = self.memory.read_word(self.wptr)
        self.wptr += 16
        return CYCLE_COSTS["call"]

    def _sec_gcall(self, _sec=None) -> int:
        self.areg, self.iptr = self.iptr, to_unsigned(self.areg)
        return CYCLE_COSTS["default"]

    def _sec_gajw(self, _sec=None) -> int:
        self.areg, self.wptr = self.wptr, to_unsigned(self.areg)
        return CYCLE_COSTS["default"]

    def _sec_ldpi(self, _sec=None) -> int:
        self.areg = to_unsigned(self.areg + self.iptr)
        return CYCLE_COSTS["default"]

    def _sec_startp(self, _sec=None) -> int:
        # Simulator deviation from the transputer: B holds the new
        # process's *absolute* start address rather than an
        # Iptr-relative offset — our assembler resolves labels to
        # absolute addresses, which keeps PAR setup code simple.
        new_wptr = to_unsigned(self._pop())
        start = to_unsigned(self._pop())
        self.memory.write_word(new_wptr - 4, start)
        self._make_runnable(new_wptr, self.priority)
        return CYCLE_COSTS["process"]

    def _sec_endp(self, _sec=None) -> int:
        mem = self.memory
        join = to_unsigned(self._pop())
        count = to_signed(mem.read_word(join + 4))
        if count <= 1:
            # Last to finish: continue the successor.
            mem.write_word(join + 4, 0)
            self.wptr = join
            self.iptr = mem.read_word(join)
        else:
            mem.write_word(join + 4, count - 1)
            self._switch_to_next()
        return CYCLE_COSTS["process"]

    def _sec_stopp(self, _sec=None) -> int:
        self._deschedule(requeue=False)
        return CYCLE_COSTS["process"]

    def _sec_runp(self, _sec=None) -> int:
        descriptor = to_unsigned(self._pop())
        self._make_runnable(
            descriptor_wptr(descriptor), descriptor_priority(descriptor)
        )
        return CYCLE_COSTS["process"]

    def _sec_in(self, _sec=None) -> int:
        self._channel_io(is_input=True)
        return CYCLE_COSTS["io_setup"]

    def _sec_out(self, _sec=None) -> int:
        self._channel_io(is_input=False)
        return CYCLE_COSTS["io_setup"]

    def _sec_outword(self, _sec=None) -> int:
        # outword: A = word, B = channel.  Stage the word in the
        # workspace (offset 0) and run the OUT protocol on it.
        word = self._pop()
        chan = self._pop()
        self.memory.write_word(self.wptr, word)
        self._push(self.wptr)  # pointer
        self._push(chan)
        self._push(4)  # count
        # Stack is now (A=count, B=chan, C=ptr) — as OUT expects.
        self._channel_io(is_input=False)
        return CYCLE_COSTS["io_setup"]

    def _sec_alt(self, _sec=None) -> int:
        # Simplified: alternation handled at the Occam DSL level.
        return CYCLE_COSTS["default"]

    def _sec_testerr(self, _sec=None) -> int:
        self._push(1 if self.error else 0)
        self.error = False
        return CYCLE_COSTS["default"]

    def _sec_seterr(self, _sec=None) -> int:
        self.error = True
        return CYCLE_COSTS["default"]

    def _sec_stoperr(self, _sec=None) -> int:
        if self.error:
            self._deschedule(requeue=False)
        return CYCLE_COSTS["default"]

    def _sec_terminate(self, _sec=None) -> int:
        self.halted = True
        return CYCLE_COSTS["default"]

    def _binary(self, result: int) -> None:
        """Replace B and A with one result (the binary-op stack shape)."""
        self.areg = to_unsigned(result)
        self.breg = self.creg

    # -- drivers -----------------------------------------------------------

    def run(self, max_steps: int = 1_000_000) -> int:
        """Untimed execution until TERMINATE or deadlock.

        Returns the instruction count.  Raises :class:`CPUError` if the
        step budget is exhausted (runaway program) or the program
        touches an external (link) channel, which needs engine mode.
        """
        for _ in range(max_steps):
            if self.halted:
                return self.instructions
            try:
                self.step()
            except ExternalIO as io:
                raise CPUError(
                    "external channel I/O requires engine mode "
                    "(as_process)"
                ) from io
        raise CPUError(f"exceeded {max_steps} steps")

    def as_process(self, engine, specs, yield_every: int = 64):
        """Engine process: run with simulated time.

        Charges ``specs``-derived nanoseconds per instruction cycle and
        yields to the engine every ``yield_every`` executed code bytes
        so other node components interleave.  IN/OUT on registered
        external channels (see :attr:`external_channels` and
        :mod:`repro.cp.link_channels`) block on the engine-level
        channel — this is how an assembly program talks over the
        node's serial links.

        Time owed to the engine is tracked as *cycle-counter deltas*
        (``self.cycles`` minus what has already been charged), so the
        accounting is identical whether :meth:`step` executes one byte
        or one whole decoded chain per call.  The turbo tier is paced
        through :attr:`step_barrier`: a translated block that would run
        through the next yield point instead returns at the first chain
        boundary past it — exactly where the chain-at-a-time tiers
        yield — so the engine-side event interleaving is bit-identical
        across tiers.
        """
        if self not in engine.cp_cpus:
            engine.cp_cpus.append(self)
        cycle_ns = max(1, round(1000.0 / specs.cp_mips))
        charged = self.cycles
        marker = self.instructions
        self.step_barrier = marker + yield_every
        while not self.halted:
            try:
                self.step()
            except ExternalIO as io:
                # Flush accumulated CPU time, then do the transfer at
                # engine pace (DMA + wire or rendezvous).
                pending = self.cycles - charged
                if pending:
                    yield engine.timeout(pending * cycle_ns)
                    charged = self.cycles
                    marker = self.instructions
                    self.step_barrier = marker + yield_every
                if io.direction == "out":
                    data = self.memory.read_bytes(io.pointer, io.count)
                    yield from io.channel.send(data)
                else:
                    data = yield from io.channel.recv()
                    if len(data) != io.count:
                        raise CPUError(
                            f"external channel delivered {len(data)} "
                            f"bytes, IN expected {io.count}"
                        )
                    self.memory.write_bytes(io.pointer, bytes(data))
                continue
            if self.instructions - marker >= yield_every:
                yield engine.timeout((self.cycles - charged) * cycle_ns)
                charged = self.cycles
                marker = self.instructions
                self.step_barrier = marker + yield_every
        self.step_barrier = None
        if self.cycles != charged:
            yield engine.timeout((self.cycles - charged) * cycle_ns)
        return self.instructions

    def __repr__(self):
        return (
            f"<CPU iptr={self.iptr:#x} A={to_signed(self.areg)} "
            f"B={to_signed(self.breg)} C={to_signed(self.creg)} "
            f"{'halted' if self.halted else 'running'}>"
        )


#: Primary dispatch: index = direct opcode.  PFIX/NFIX are handled in
#: the decode loop itself and never dispatched.
CPU._PRIMARY_FUNCS = (
    CPU._op_j,      # 0x0
    CPU._op_ldlp,   # 0x1
    None,           # 0x2 PFIX
    CPU._op_ldnl,   # 0x3
    CPU._op_ldc,    # 0x4
    CPU._op_ldnlp,  # 0x5
    None,           # 0x6 NFIX
    CPU._op_ldl,    # 0x7
    CPU._op_adc,    # 0x8
    CPU._op_call,   # 0x9
    CPU._op_cj,     # 0xA
    CPU._op_ajw,    # 0xB
    CPU._op_eqc,    # 0xC
    CPU._op_stl,    # 0xD
    CPU._op_stnl,   # 0xE
    CPU._op_opr,    # 0xF
)

#: Block-safe primary opcodes → static cycle cost.  Safe means: no
#: control transfer, no scheduler interaction, no channel I/O — the
#: operation only touches the evaluation stack, workspace/data memory,
#: the workspace pointer, and the error flag, so a translated block
#: may run it without surfacing a chain boundary.  The costs mirror
#: what each handler returns (pinned by a regression test).
CPU._SAFE_PRIMARY_COST = {
    Op.LDLP: CYCLE_COSTS["default"],
    Op.LDNL: CYCLE_COSTS["default"],
    Op.LDC: CYCLE_COSTS["default"],
    Op.LDNLP: CYCLE_COSTS["default"],
    Op.LDL: CYCLE_COSTS["default"],
    Op.ADC: CYCLE_COSTS["default"],
    Op.AJW: CYCLE_COSTS["default"],
    Op.EQC: CYCLE_COSTS["default"],
    Op.STL: CYCLE_COSTS["default"],
    Op.STNL: CYCLE_COSTS["default"],
}

#: Block-safe secondary opcodes → static cycle cost.  Excluded (block
#: enders): RET/GCALL (control transfer), STARTP/ENDP/STOPP/RUNP/
#: STOPERR (scheduler), IN/OUT/OUTWORD (channel I/O, may raise
#: ExternalIO or deschedule), TERMINATE (halts).
CPU._SAFE_SECONDARY_COST = {
    Secondary.REV: CYCLE_COSTS["default"],
    Secondary.ADD: CYCLE_COSTS["default"],
    Secondary.SUB: CYCLE_COSTS["default"],
    Secondary.DIFF: CYCLE_COSTS["default"],
    Secondary.MUL: CYCLE_COSTS["mul"],
    Secondary.DIV: CYCLE_COSTS["div"],
    Secondary.REM: CYCLE_COSTS["div"],
    Secondary.GT: CYCLE_COSTS["default"],
    Secondary.AND: CYCLE_COSTS["default"],
    Secondary.OR: CYCLE_COSTS["default"],
    Secondary.XOR: CYCLE_COSTS["default"],
    Secondary.NOT: CYCLE_COSTS["default"],
    Secondary.SHL: CYCLE_COSTS["default"],
    Secondary.SHR: CYCLE_COSTS["default"],
    Secondary.MINT: CYCLE_COSTS["default"],
    Secondary.DUP: CYCLE_COSTS["default"],
    Secondary.GAJW: CYCLE_COSTS["default"],
    Secondary.LDPI: CYCLE_COSTS["default"],
    Secondary.ALT: CYCLE_COSTS["default"],
    Secondary.TESTERR: CYCLE_COSTS["default"],
    Secondary.SETERR: CYCLE_COSTS["default"],
}

#: Secondary dispatch: secondary number → handler.
CPU._SECONDARY_FUNCS = {
    Secondary.REV: CPU._sec_rev,
    Secondary.ADD: CPU._sec_add,
    Secondary.SUB: CPU._sec_sub,
    Secondary.DIFF: CPU._sec_diff,
    Secondary.MUL: CPU._sec_mul,
    Secondary.DIV: CPU._sec_div,
    Secondary.REM: CPU._sec_rem,
    Secondary.GT: CPU._sec_gt,
    Secondary.AND: CPU._sec_and,
    Secondary.OR: CPU._sec_or,
    Secondary.XOR: CPU._sec_xor,
    Secondary.NOT: CPU._sec_not,
    Secondary.SHL: CPU._sec_shl,
    Secondary.SHR: CPU._sec_shr,
    Secondary.MINT: CPU._sec_mint,
    Secondary.DUP: CPU._sec_dup,
    Secondary.RET: CPU._sec_ret,
    Secondary.GCALL: CPU._sec_gcall,
    Secondary.GAJW: CPU._sec_gajw,
    Secondary.LDPI: CPU._sec_ldpi,
    Secondary.STARTP: CPU._sec_startp,
    Secondary.ENDP: CPU._sec_endp,
    Secondary.STOPP: CPU._sec_stopp,
    Secondary.RUNP: CPU._sec_runp,
    Secondary.IN: CPU._sec_in,
    Secondary.OUT: CPU._sec_out,
    Secondary.OUTWORD: CPU._sec_outword,
    Secondary.ALT: CPU._sec_alt,
    Secondary.TESTERR: CPU._sec_testerr,
    Secondary.SETERR: CPU._sec_seterr,
    Secondary.STOPERR: CPU._sec_stoperr,
    Secondary.TERMINATE: CPU._sec_terminate,
}
