"""The control-processor interpreter.

A 32-bit, byte-addressed stack machine with the three-register
evaluation stack (Areg, Breg, Creg), workspace-pointer locals, the
PFIX/NFIX variable-length operand scheme, soft (memory-word) channels
with rendezvous semantics, and the two-priority scheduler — the
feature list the paper gives for the T Series node's control unit.

Two execution modes:

* :meth:`CPU.run` — untimed stepping, for ISA-level programs and tests.
* :meth:`CPU.as_process` — an engine process that charges simulated
  time per instruction (7.5 MIPS average; off-chip memory accesses at
  the 400 ns word-port rate), for whole-node simulations.
"""

from repro.cp.isa import CYCLE_COSTS, Op, Secondary
from repro.cp.scheduler import (
    HIGH,
    LOW,
    NOT_PROCESS,
    Scheduler,
    descriptor_priority,
    descriptor_wptr,
    make_descriptor,
)

MASK32 = 0xFFFFFFFF
MIN_INT = -(1 << 31)
MAX_INT = (1 << 31) - 1


def to_signed(value: int) -> int:
    """Interpret a 32-bit pattern as signed."""
    value &= MASK32
    return value - (1 << 32) if value >> 31 else value


def to_unsigned(value: int) -> int:
    """Wrap any integer to a 32-bit pattern."""
    return value & MASK32


class CPUError(Exception):
    """Illegal instruction, bad address, or deadlock."""


class ExternalIO(Exception):
    """Internal signal: an IN/OUT hit an external (link) channel.

    Raised by the step loop and caught by :meth:`CPU.as_process`,
    which performs the transfer through the engine-level channel
    object and resumes the CPU.  ``direction`` is 'in' or 'out'.
    """

    def __init__(self, direction, channel, pointer, count):
        super().__init__(direction)
        self.direction = direction
        self.channel = channel
        self.pointer = pointer
        self.count = count


class ArrayMemory:
    """A flat word-addressable memory for standalone CPU programs.

    Node integration replaces this with a view onto the node's
    :class:`~repro.memory.DualPortMemory`.
    """

    def __init__(self, size_bytes: int = 64 * 1024):
        if size_bytes % 4:
            raise ValueError("memory size must be word aligned")
        self.size = size_bytes
        self._words = [0] * (size_bytes // 4)

    def read_word(self, address: int) -> int:
        if address % 4 or not 0 <= address < self.size:
            raise CPUError(f"bad word read at {address:#x}")
        return self._words[address // 4]

    def write_word(self, address: int, value: int) -> None:
        if address % 4 or not 0 <= address < self.size:
            raise CPUError(f"bad word write at {address:#x}")
        self._words[address // 4] = to_unsigned(value)

    def read_bytes(self, address: int, count: int) -> bytes:
        out = bytearray()
        for i in range(count):
            word = self.read_word((address + i) & ~0x3)
            out.append((word >> (8 * ((address + i) & 0x3))) & 0xFF)
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        for i, b in enumerate(data):
            a = address + i
            word = self.read_word(a & ~0x3)
            shift = 8 * (a & 0x3)
            word = (word & ~(0xFF << shift)) | (b << shift)
            self.write_word(a & ~0x3, word)


class CPU:
    """The interpreter.

    Parameters
    ----------
    code : bytes
        The program image (lives in the 2 KB-style on-chip store; data
        lives in ``memory``).
    memory : object
        Word-addressed data memory (``read_word``/``write_word`` and
        the byte variants).
    entry : int
        Initial instruction pointer.
    wptr : int
        Initial workspace pointer (top of the initial workspace).
    priority : int
        Initial process priority (HIGH or LOW).
    """

    def __init__(self, code, memory=None, entry=0, wptr=None, priority=LOW,
                 trace=False):
        self.code = bytes(code)
        self.memory = memory or ArrayMemory()
        self.areg = 0
        self.breg = 0
        self.creg = 0
        self.oreg = 0
        self.iptr = entry
        default_top = getattr(self.memory, "size", 1 << 20)
        self.wptr = wptr if wptr is not None else default_top - 256
        self.priority = priority
        self.error = False
        self.halted = False
        #: True if the CPU stopped because every process was blocked.
        self.deadlocked = False
        self.scheduler = Scheduler()
        self.scheduler.current = (self.wptr, priority)
        self.instructions = 0
        self.cycles = 0
        self.trace = trace
        self._trace_log = []
        #: External channel table: address → object with engine hooks
        #: (used by node integration; bare CPUs have none).
        self.external_channels = {}

    # -- stack helpers ------------------------------------------------------

    def _push(self, value: int) -> None:
        self.creg = self.breg
        self.breg = self.areg
        self.areg = to_unsigned(value)

    def _pop(self) -> int:
        value = self.areg
        self.areg = self.breg
        self.breg = self.creg
        return value

    # -- process switching -------------------------------------------------

    def _save_iptr(self) -> None:
        """Save the resume point in the workspace (offset −1 word)."""
        self.memory.write_word(self.wptr - 4, self.iptr)

    def _deschedule(self, requeue: bool) -> None:
        """Stop running the current process; optionally requeue it."""
        self._save_iptr()
        if requeue:
            self.scheduler.enqueue(self.wptr, self.priority)
        self._switch_to_next()

    def _switch_to_next(self) -> None:
        nxt = self.scheduler.next_process()
        if nxt is None:
            # Nothing runnable.  Processes may be parked on channel
            # words (deadlock if no external event will free them).
            self.halted = True
            self.deadlocked = True
            return
        self.wptr, self.priority = nxt
        self.iptr = self.memory.read_word(self.wptr - 4)

    def _make_runnable(self, wptr: int, priority: int) -> None:
        self.scheduler.enqueue(wptr, priority)
        if priority == HIGH and self.priority == LOW:
            # Preemption: the high-priority process displaces us now.
            self._deschedule(requeue=True)

    # -- channels -----------------------------------------------------

    def _channel_io(self, is_input: bool) -> None:
        """The soft-channel rendezvous: IN and OUT.

        A channel is a memory word.  Idle it holds NOT_PROCESS; with
        one party waiting it holds that party's process descriptor
        (its data pointer parked in workspace offset −3).  The second
        party performs the copy and reschedules the first.
        """
        count = to_signed(self._pop())
        chan = self._pop()
        pointer = self._pop()
        if count < 0:
            raise CPUError("negative channel transfer count")
        if chan in self.external_channels:
            # Hand the transfer to the engine-mode driver; untimed
            # run() has no engine to block on.
            raise ExternalIO(
                "in" if is_input else "out",
                self.external_channels[chan], pointer, count,
            )
        word = self.memory.read_word(chan)
        if word == NOT_PROCESS:
            # First to arrive: park and deschedule.
            self.memory.write_word(
                chan, make_descriptor(self.wptr, self.priority)
            )
            self.memory.write_word(self.wptr - 12, pointer)
            self.memory.write_word(self.wptr - 16, count)
            self._deschedule(requeue=False)
            return
        # Second to arrive: the copy direction follows our role.
        partner_wptr = descriptor_wptr(word)
        partner_priority = descriptor_priority(word)
        partner_ptr = self.memory.read_word(partner_wptr - 12)
        partner_count = to_signed(self.memory.read_word(partner_wptr - 16))
        if partner_count != count:
            raise CPUError(
                f"channel length mismatch: {count} vs {partner_count}"
            )
        if is_input:
            data = self.memory.read_bytes(partner_ptr, count)
            self.memory.write_bytes(pointer, data)
        else:
            data = self.memory.read_bytes(pointer, count)
            self.memory.write_bytes(partner_ptr, data)
        self.memory.write_word(chan, NOT_PROCESS)
        self._make_runnable(partner_wptr, partner_priority)

    # -- the decode/execute cycle ---------------------------------------

    def step(self) -> int:
        """Decode and execute one instruction; returns its cycle cost."""
        if self.halted:
            raise CPUError("CPU is halted")
        if not 0 <= self.iptr < len(self.code):
            raise CPUError(f"Iptr {self.iptr:#x} outside code")
        byte = self.code[self.iptr]
        op = byte >> 4
        nibble = byte & 0xF
        self.iptr += 1
        self.instructions += 1
        self.oreg |= nibble

        if op == Op.PFIX:
            self.oreg <<= 4
            self.cycles += 1
            return 1
        if op == Op.NFIX:
            self.oreg = (~self.oreg) << 4
            self.cycles += 1
            return 1

        operand = self.oreg
        self.oreg = 0
        cost = self._execute(op, operand)
        self.cycles += cost
        if self.trace:
            self._trace_log.append(
                (self.instructions, Op(op).name, operand,
                 to_signed(self.areg))
            )
        return cost

    def _execute(self, op: int, operand: int) -> int:
        mem = self.memory
        if op == Op.LDC:
            self._push(operand)
        elif op == Op.LDL:
            self._push(mem.read_word(self.wptr + 4 * operand))
        elif op == Op.STL:
            mem.write_word(self.wptr + 4 * operand, self._pop())
        elif op == Op.LDLP:
            self._push(self.wptr + 4 * operand)
        elif op == Op.LDNL:
            self.areg = mem.read_word(to_unsigned(self.areg) + 4 * operand)
        elif op == Op.STNL:
            address = self._pop()
            value = self._pop()
            mem.write_word(to_unsigned(address) + 4 * operand, value)
        elif op == Op.LDNLP:
            self.areg = to_unsigned(self.areg + 4 * operand)
        elif op == Op.ADC:
            result = to_signed(self.areg) + operand
            if not MIN_INT <= result <= MAX_INT:
                self.error = True
            self.areg = to_unsigned(result)
        elif op == Op.EQC:
            self.areg = 1 if to_signed(self.areg) == operand else 0
        elif op == Op.J:
            self.iptr += operand
            # Descheduling point: timeslice low-priority processes.
            if self.scheduler.timeslice_expired():
                self._deschedule(requeue=True)
            return CYCLE_COSTS["branch"]
        elif op == Op.CJ:
            if to_signed(self.areg) == 0:
                self.iptr += operand
            else:
                self._pop()
            return CYCLE_COSTS["branch"]
        elif op == Op.CALL:
            self.wptr -= 16
            mem.write_word(self.wptr, self.iptr)
            mem.write_word(self.wptr + 4, self.areg)
            mem.write_word(self.wptr + 8, self.breg)
            mem.write_word(self.wptr + 12, self.creg)
            self.iptr += operand
            return CYCLE_COSTS["call"]
        elif op == Op.AJW:
            self.wptr += 4 * operand
        elif op == Op.OPR:
            return self._operate(operand)
        else:  # pragma: no cover - all 16 opcodes handled
            raise CPUError(f"undecodable opcode {op:#x}")
        return CYCLE_COSTS["default"]

    def _operate(self, sec: int) -> int:
        mem = self.memory
        if sec == Secondary.REV:
            self.areg, self.breg = self.breg, self.areg
        elif sec == Secondary.ADD:
            result = to_signed(self.breg) + to_signed(self.areg)
            if not MIN_INT <= result <= MAX_INT:
                self.error = True
            self._binary(result)
        elif sec == Secondary.SUB:
            result = to_signed(self.breg) - to_signed(self.areg)
            if not MIN_INT <= result <= MAX_INT:
                self.error = True
            self._binary(result)
        elif sec == Secondary.DIFF:
            self._binary(self.breg - self.areg)  # modulo, no error
        elif sec == Secondary.MUL:
            result = to_signed(self.breg) * to_signed(self.areg)
            if not MIN_INT <= result <= MAX_INT:
                self.error = True
            self._binary(result)
            return CYCLE_COSTS["mul"]
        elif sec == Secondary.DIV:
            a, b = to_signed(self.areg), to_signed(self.breg)
            if a == 0 or (a == -1 and b == MIN_INT):
                self.error = True
                self._binary(0)
            else:
                self._binary(int(b / a))  # trunc toward zero
            return CYCLE_COSTS["div"]
        elif sec == Secondary.REM:
            a, b = to_signed(self.areg), to_signed(self.breg)
            if a == 0:
                self.error = True
                self._binary(0)
            else:
                self._binary(b - int(b / a) * a)
            return CYCLE_COSTS["div"]
        elif sec == Secondary.GT:
            self._binary(1 if to_signed(self.breg) > to_signed(self.areg)
                         else 0)
        elif sec == Secondary.AND:
            self._binary(self.breg & self.areg)
        elif sec == Secondary.OR:
            self._binary(self.breg | self.areg)
        elif sec == Secondary.XOR:
            self._binary(self.breg ^ self.areg)
        elif sec == Secondary.NOT:
            self.areg = to_unsigned(~self.areg)
        elif sec == Secondary.SHL:
            shift = to_signed(self.areg)
            self._binary(self.breg << shift if 0 <= shift < 32 else 0)
        elif sec == Secondary.SHR:
            shift = to_signed(self.areg)
            self._binary(self.breg >> shift if 0 <= shift < 32 else 0)
        elif sec == Secondary.MINT:
            self._push(0x80000000)
        elif sec == Secondary.DUP:
            self._push(self.areg)
        elif sec == Secondary.RET:
            self.iptr = mem.read_word(self.wptr)
            self.wptr += 16
            return CYCLE_COSTS["call"]
        elif sec == Secondary.GCALL:
            self.areg, self.iptr = self.iptr, to_unsigned(self.areg)
        elif sec == Secondary.GAJW:
            self.areg, self.wptr = self.wptr, to_unsigned(self.areg)
        elif sec == Secondary.LDPI:
            self.areg = to_unsigned(self.areg + self.iptr)
        elif sec == Secondary.STARTP:
            # Simulator deviation from the transputer: B holds the new
            # process's *absolute* start address rather than an
            # Iptr-relative offset — our assembler resolves labels to
            # absolute addresses, which keeps PAR setup code simple.
            new_wptr = to_unsigned(self._pop())
            start = to_unsigned(self._pop())
            mem.write_word(new_wptr - 4, start)
            self._make_runnable(new_wptr, self.priority)
            return CYCLE_COSTS["process"]
        elif sec == Secondary.ENDP:
            join = to_unsigned(self._pop())
            count = to_signed(mem.read_word(join + 4))
            if count <= 1:
                # Last to finish: continue the successor.
                mem.write_word(join + 4, 0)
                self.wptr = join
                self.iptr = mem.read_word(join)
            else:
                mem.write_word(join + 4, count - 1)
                self._switch_to_next()
            return CYCLE_COSTS["process"]
        elif sec == Secondary.STOPP:
            self._deschedule(requeue=False)
            return CYCLE_COSTS["process"]
        elif sec == Secondary.RUNP:
            descriptor = to_unsigned(self._pop())
            self._make_runnable(
                descriptor_wptr(descriptor), descriptor_priority(descriptor)
            )
            return CYCLE_COSTS["process"]
        elif sec == Secondary.IN:
            self._channel_io(is_input=True)
            return CYCLE_COSTS["io_setup"]
        elif sec == Secondary.OUT:
            self._channel_io(is_input=False)
            return CYCLE_COSTS["io_setup"]
        elif sec == Secondary.OUTWORD:
            # outword: A = word, B = channel.  Stage the word in the
            # workspace (offset 0) and run the OUT protocol on it.
            word = self._pop()
            chan = self._pop()
            self.memory.write_word(self.wptr, word)
            self._push(self.wptr)  # pointer
            self._push(chan)
            self._push(4)  # count
            # Stack is now (A=count, B=chan, C=ptr) — as OUT expects.
            self._channel_io(is_input=False)
            return CYCLE_COSTS["io_setup"]
        elif sec == Secondary.ALT:
            pass  # simplified: alternation handled at the Occam DSL level
        elif sec == Secondary.TESTERR:
            self._push(1 if self.error else 0)
            self.error = False
        elif sec == Secondary.SETERR:
            self.error = True
        elif sec == Secondary.STOPERR:
            if self.error:
                self._deschedule(requeue=False)
        elif sec == Secondary.TERMINATE:
            self.halted = True
        else:
            raise CPUError(f"unknown secondary opcode {sec:#x}")
        return CYCLE_COSTS["default"]

    def _binary(self, result: int) -> None:
        """Replace B and A with one result (the binary-op stack shape)."""
        self.areg = to_unsigned(result)
        self.breg = self.creg

    # -- drivers -----------------------------------------------------------

    def run(self, max_steps: int = 1_000_000) -> int:
        """Untimed execution until TERMINATE or deadlock.

        Returns the instruction count.  Raises :class:`CPUError` if the
        step budget is exhausted (runaway program) or the program
        touches an external (link) channel, which needs engine mode.
        """
        for _ in range(max_steps):
            if self.halted:
                return self.instructions
            try:
                self.step()
            except ExternalIO as io:
                raise CPUError(
                    "external channel I/O requires engine mode "
                    "(as_process)"
                ) from io
        raise CPUError(f"exceeded {max_steps} steps")

    def as_process(self, engine, specs, yield_every: int = 64):
        """Engine process: run with simulated time.

        Charges ``specs``-derived nanoseconds per instruction cycle and
        yields to the engine every ``yield_every`` instructions so
        other node components interleave.  IN/OUT on registered
        external channels (see :attr:`external_channels` and
        :mod:`repro.cp.link_channels`) block on the engine-level
        channel — this is how an assembly program talks over the
        node's serial links.
        """
        cycle_ns = max(1, round(1000.0 / specs.cp_mips))
        pending_cycles = 0
        since_yield = 0
        while not self.halted:
            try:
                pending_cycles += self.step()
            except ExternalIO as io:
                # Flush accumulated CPU time, then do the transfer at
                # engine pace (DMA + wire or rendezvous).
                if pending_cycles:
                    yield engine.timeout(pending_cycles * cycle_ns)
                    pending_cycles = 0
                    since_yield = 0
                if io.direction == "out":
                    data = self.memory.read_bytes(io.pointer, io.count)
                    yield from io.channel.send(data)
                else:
                    data = yield from io.channel.recv()
                    if len(data) != io.count:
                        raise CPUError(
                            f"external channel delivered {len(data)} "
                            f"bytes, IN expected {io.count}"
                        )
                    self.memory.write_bytes(io.pointer, bytes(data))
                continue
            since_yield += 1
            if since_yield >= yield_every:
                yield engine.timeout(pending_cycles * cycle_ns)
                pending_cycles = 0
                since_yield = 0
        if pending_cycles:
            yield engine.timeout(pending_cycles * cycle_ns)
        return self.instructions

    def __repr__(self):
        return (
            f"<CPU iptr={self.iptr:#x} A={to_signed(self.areg)} "
            f"B={to_signed(self.breg)} C={to_signed(self.creg)} "
            f"{'halted' if self.halted else 'running'}>"
        )
