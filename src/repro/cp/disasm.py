"""Disassembler for the control processor's byte code.

Inverts the PFIX/NFIX operand accumulation back into one line per
logical instruction — useful for debugging assembled programs and for
round-trip testing of the encoder.
"""

from repro.cp.isa import Op, Secondary


class DecodedInstruction:
    """One logical instruction: its bytes, opcode, and operand."""

    __slots__ = ("address", "length", "op", "operand", "secondary")

    def __init__(self, address, length, op, operand, secondary):
        self.address = address
        self.length = length
        self.op = op
        self.operand = operand
        self.secondary = secondary  # Secondary or None

    @property
    def mnemonic(self) -> str:
        if self.secondary is not None:
            return self.secondary.name.lower()
        return self.op.name.lower()

    def text(self) -> str:
        """Assembler-style rendering."""
        if self.secondary is not None:
            return self.mnemonic
        return f"{self.mnemonic} {self.operand}"

    def __repr__(self):
        return f"<{self.address:#06x}: {self.text()}>"


def decode_one(code: bytes, address: int) -> DecodedInstruction:
    """Decode the logical instruction starting at ``address``."""
    oreg = 0
    at = address
    while at < len(code):
        byte = code[at]
        op = byte >> 4
        oreg |= byte & 0xF
        at += 1
        if op == Op.PFIX:
            oreg <<= 4
            continue
        if op == Op.NFIX:
            oreg = (~oreg) << 4
            continue
        secondary = None
        if op == Op.OPR:
            try:
                secondary = Secondary(oreg)
            except ValueError:
                secondary = None
        return DecodedInstruction(
            address, at - address, Op(op), oreg, secondary
        )
    raise ValueError(f"truncated instruction at {address:#x}")


def disassemble(code: bytes, symbols: dict = None):
    """Decode a whole image; returns a list of DecodedInstruction."""
    out = []
    address = 0
    while address < len(code):
        inst = decode_one(code, address)
        out.append(inst)
        address += inst.length
    return out


def listing(code: bytes, symbols: dict = None) -> str:
    """A human-readable listing with addresses, bytes, and labels."""
    by_address = {}
    for name, addr in (symbols or {}).items():
        by_address.setdefault(addr, []).append(name)
    lines = []
    for inst in disassemble(code):
        for label in by_address.get(inst.address, []):
            lines.append(f"{label}:")
        raw = code[inst.address:inst.address + inst.length].hex()
        lines.append(
            f"  {inst.address:#06x}  {raw:<12}  {inst.text()}"
        )
    return "\n".join(lines)
