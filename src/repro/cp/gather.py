"""CP-driven gather/scatter.

Paper §II: "A primary use for the control processor is to gather
operands into a contiguous vector, and scatter results back to random
locations in memory.  To move a 64-bit operand from one memory
location to another requires two 32-bit reads and two 32-bit writes,
which take a total of 1.6 µs. ... For 32-bit operands, it is 0.8 µs
per element."

The gather engine runs on the memory's random-access port, so it
contends with link DMA but **not** with the vector unit's row port —
which is exactly why gather can overlap vector arithmetic (experiment
E6).
"""

import numpy as np


class GatherScatterEngine:
    """Element-at-a-time data movement through the word port."""

    def __init__(self, engine, memory, specs):
        self.engine = engine
        self.memory = memory
        self.specs = specs
        #: Elements moved (for overlap accounting).
        self.elements_moved = 0
        #: Total ns spent moving.
        self.busy_ns = 0

    def ns_per_element(self, precision: int) -> int:
        """1.6 µs per 64-bit element, 0.8 µs per 32-bit element."""
        words = precision // 32
        if words not in (1, 2):
            raise ValueError(f"unsupported precision {precision!r}")
        return 2 * words * self.specs.word_access_ns

    def _element_bytes(self, precision: int) -> int:
        return precision // 8

    def move_element(self, src_address: int, dst_address: int,
                     precision: int = 64):
        """Process: copy one element (a read+write per word)."""
        size = self._element_bytes(precision)
        start = self.engine.now
        # Two (or one) reads and writes through the word port.
        yield from self.memory.word_port.access(2 * (precision // 32))
        data = self.memory.peek_bytes(src_address, size)
        self.memory.poke_bytes(dst_address, data)
        self.elements_moved += 1
        self.busy_ns += self.engine.now - start

    def gather(self, src_addresses, dst_address: int, precision: int = 64):
        """Process: collect scattered elements into a contiguous run.

        ``src_addresses`` are byte addresses of the elements (in any
        order); the destination starts at ``dst_address`` and advances
        element-by-element.
        """
        size = self._element_bytes(precision)
        for i, src in enumerate(src_addresses):
            yield from self.move_element(src, dst_address + i * size,
                                         precision)
        return len(src_addresses)

    def scatter(self, src_address: int, dst_addresses, precision: int = 64):
        """Process: spread a contiguous run out to scattered addresses."""
        size = self._element_bytes(precision)
        for i, dst in enumerate(dst_addresses):
            yield from self.move_element(src_address + i * size, dst,
                                         precision)
        return len(dst_addresses)

    def gather_time(self, count: int, precision: int = 64) -> int:
        """Predicted gather time for ``count`` elements."""
        return count * self.ns_per_element(precision)

    def gather_strided(self, base: int, stride_bytes: int, count: int,
                       dst_address: int, precision: int = 64):
        """Process: gather a constant-stride vector (matrix columns)."""
        addresses = [base + i * stride_bytes for i in range(count)]
        result = yield from self.gather(addresses, dst_address, precision)
        return result

    def __repr__(self):
        return f"<GatherScatterEngine moved={self.elements_moved}>"


def gather_addresses_values(memory, addresses, precision=64) -> np.ndarray:
    """Untimed helper: read elements at byte addresses as floats."""
    from repro.fpu.vector_forms import dtype_for

    dtype = dtype_for(precision)
    size = precision // 8
    out = np.empty(len(addresses), dtype=dtype)
    for i, address in enumerate(addresses):
        out[i] = memory.peek_bytes(address, size).view(dtype)[0]
    return out
