"""The control processor's instruction set.

Paper §II "Control": the CP is a 32-bit CMOS microprocessor with a
*stack-oriented instruction set with variable operand sizes*, byte
addressability, four serial links, on-chip RAM, and two-level process
priority — i.e. a transputer.  We implement a transputer-flavoured
ISA: byte-coded instructions, each byte an (opcode, nibble) pair, with
PFIX/NFIX building larger operands in the operand register, a
three-deep evaluation stack (Areg, Breg, Creg), and a workspace
pointer for locals.

Direct (4-bit opcode) instructions carry their operand in the byte;
OPR dispatches to the secondary table of zero-operand operations.
"""

from enum import IntEnum


class Op(IntEnum):
    """Direct instruction opcodes (the high nibble of each code byte)."""

    J = 0x0      #: jump relative (deschedule point)
    LDLP = 0x1   #: load local pointer (Wptr + n words)
    PFIX = 0x2   #: prefix: Oreg = (Oreg | n) << 4
    LDNL = 0x3   #: load non-local: A = mem[A + n words]
    LDC = 0x4    #: load constant
    LDNLP = 0x5  #: load non-local pointer: A = A + n words
    NFIX = 0x6   #: negative prefix: Oreg = (~(Oreg | n)) << 4
    LDL = 0x7    #: load local: push mem[Wptr + n words]
    ADC = 0x8    #: add constant to A
    CALL = 0x9   #: call relative; saves Iptr, A, B, C in new workspace
    CJ = 0xA     #: conditional jump (if A == 0); pops A when not taken
    AJW = 0xB    #: adjust workspace by n words
    EQC = 0xC    #: A = (A == n)
    STL = 0xD    #: store local: mem[Wptr + n words] = pop
    STNL = 0xE   #: store non-local: mem[pop + n words] = pop
    OPR = 0xF    #: operate: execute secondary opcode Oreg


class Secondary(IntEnum):
    """Secondary (OPR-dispatched) operations."""

    REV = 0x00      #: swap A and B
    ADD = 0x05      #: A = B + A (checked add; we wrap, no trap)
    SUB = 0x0C      #: A = B - A
    MUL = 0x35      #: A = B * A
    DIV = 0x2C      #: A = B // A (toward zero)
    REM = 0x1F      #: A = B rem A
    GT = 0x09       #: A = (B > A), signed
    DIFF = 0x04     #: A = B - A, unchecked (modulo) difference
    AND = 0x46      #: A = B & A
    OR = 0x4B       #: A = B | A
    XOR = 0x33      #: A = B ^ A
    NOT = 0x32      #: A = ~A
    SHL = 0x41      #: A = B << A
    SHR = 0x40      #: A = B >> A (logical)
    MINT = 0x42     #: A = most negative integer (0x80000000)
    DUP = 0x5A      #: duplicate A
    RET = 0x20      #: return: Iptr = mem[Wptr], Wptr += 4 words
    GCALL = 0x06    #: general call: swap Iptr and A
    GAJW = 0x3C     #: general workspace adjust: swap Wptr and A
    LDPI = 0x1B     #: A = next instruction address + A
    STARTP = 0x0D   #: start process: workspace A, offset B
    ENDP = 0x03     #: end process (join via workspace counter at A)
    STOPP = 0x15    #: stop (deschedule) current process
    RUNP = 0x39     #: make process whose descriptor is A runnable
    IN = 0x07       #: input: A=count, B=channel address, C=dest pointer
    OUT = 0x0B      #: output: A=count, B=channel address, C=src pointer
    OUTWORD = 0x0F  #: output single word A on channel B
    ALT = 0x43      #: begin alternation (simplified: no-op marker)
    TESTERR = 0x29  #: push and clear the error flag
    SETERR = 0x10   #: set the error flag
    STOPERR = 0x55  #: stop if the error flag is set
    TERMINATE = 0x7F  #: halt the whole CPU (simulator extension)


#: Mnemonic → (kind, code) for the assembler.
MNEMONICS = {}
for _op in Op:
    MNEMONICS[_op.name.lower()] = ("direct", _op)
for _sec in Secondary:
    MNEMONICS[_sec.name.lower()] = ("secondary", _sec)


#: Instruction cycle costs (in CP cycles; see :class:`CPUTiming`).
#: Memory-touching operations carry the off-chip word-access cost
#: instead when they reference node memory.
CYCLE_COSTS = {
    "default": 1,
    "branch": 2,
    "call": 4,
    "mul": 3,
    "div": 5,
    "process": 6,
    "io_setup": 4,
}


def encode_direct(op: Op, operand: int) -> bytes:
    """Encode a direct instruction with an arbitrary signed operand.

    Emits the minimal PFIX/NFIX chain followed by the opcode byte —
    the transputer's 'variable operand sizes'.  This is the standard
    Inmos prefixing algorithm::

        prefix(op, e):
            if 0 <= e < 16:  emit (op, e)
            elif e >= 16:    prefix(PFIX, e >> 4); emit (op, e & 0xF)
            else:            prefix(NFIX, (~e) >> 4); emit (op, e & 0xF)
    """
    if not isinstance(op, Op):
        raise TypeError(f"not a direct opcode: {op!r}")
    out = bytearray()

    def prefix(code: int, e: int) -> None:
        if 0 <= e < 16:
            out.append((code << 4) | e)
        elif e >= 16:
            prefix(int(Op.PFIX), e >> 4)
            out.append((code << 4) | (e & 0xF))
        else:
            prefix(int(Op.NFIX), (~e) >> 4)
            out.append((code << 4) | (e & 0xF))

    prefix(int(op), operand)
    return bytes(out)


def encode_secondary(sec: Secondary) -> bytes:
    """Encode an OPR operation (prefixes + the OPR byte)."""
    if not isinstance(sec, Secondary):
        raise TypeError(f"not a secondary opcode: {sec!r}")
    return encode_direct(Op.OPR, int(sec))


def instruction_length(op: Op, operand: int) -> int:
    """Encoded byte length of a direct instruction with ``operand``."""
    return len(encode_direct(op, operand))
