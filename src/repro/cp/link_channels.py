"""External channels: assembly programs talking over the links.

On the real machine, link channels appear at reserved addresses; an
Occam (or assembly) IN/OUT on such an address moves data over the
serial link instead of through a memory word.  Here,
:class:`SlotChannel` adapts one sublink slot of a node's
:class:`~repro.links.fabric.NodeLinkSet` to the protocol
:meth:`CPU.as_process` expects, and :func:`attach_link_channel`
registers it at a channel address.

Convention: link channel addresses start at :data:`LINK_CHANNEL_BASE`
(one word per slot), mirroring the transputer's memory-mapped links.
"""

from repro.events import Channel

#: Base address of memory-mapped link channels (top of address space,
#: as on the transputer).
LINK_CHANNEL_BASE = 0x8000_0000


def link_channel_address(slot: int) -> int:
    """The conventional channel address of sublink slot ``slot``."""
    if slot < 0:
        raise ValueError("negative slot")
    return LINK_CHANNEL_BASE + 4 * slot


class SlotChannel:
    """One sublink slot as an external CPU channel."""

    def __init__(self, comm, slot: int):
        self.comm = comm
        self.slot = slot

    def send(self, data):
        """Process: transmit the bytes (DMA + framed wire time)."""
        payload = bytes(data)
        yield from self.comm.send(self.slot, payload, len(payload))

    def recv(self):
        """Process: receive the next message's bytes."""
        message = yield from self.comm.recv(self.slot)
        return bytes(message.payload)


class RendezvousChannel:
    """An engine-level Occam channel as an external CPU channel.

    Lets an assembly program rendezvous with Python-level processes
    (e.g. a device model) with true blocking semantics and no link
    timing.
    """

    def __init__(self, engine, name=None):
        self.channel = Channel(engine, name=name)

    def send(self, data):
        yield self.channel.put(bytes(data))

    def recv(self):
        data = yield self.channel.get()
        return bytes(data)


def attach_link_channel(cpu, comm, slot: int) -> int:
    """Register sublink ``slot`` as an external channel on ``cpu``.

    Returns the channel address the program should use with IN/OUT.
    """
    address = link_channel_address(slot)
    cpu.external_channels[address] = SlotChannel(comm, slot)
    return address
