"""Running the CPU against the node's real memory and vector unit.

This completes Figure 1 at the instruction level: the control
processor's loads and stores hit the node's dual-ported DRAM, and a
memory-mapped command block drives the vector-form micro-sequencer —
"the programmer only needs to describe the input and output vectors
and the vector form desired", and "the arithmetic unit only interrupts
the controller when a vector operation has completed" (here: sets a
status word the CP polls; with the CP yielding to the engine, the
vector unit genuinely runs in parallel).

Command block layout (word offsets from :data:`VAU_BASE`):

====  ==========================================================
0     FORM — index into :data:`FORM_CODES`
1     ROW_A — memory row of the first operand
2     ROW_B — memory row of the second operand (two-input forms)
3     ROW_OUT — destination row (vector-result forms)
4     LENGTH — element count (64-bit elements)
5     GO / STATUS — write 1 to start; the unit writes 2 when done
6     RESULT_LO / RESULT_HI — reduction results (binary64 bits)
====  ==========================================================
"""

import numpy as np

from repro.cp.cpu import CPUError, to_unsigned
from repro.fpu.vector_forms import FORMS
from repro.memory.vector_register import VectorRegister

#: Base byte address of the VAU command block.
VAU_BASE = 0x7FFF0000

#: Form codes the ISA can request, in a fixed order.
FORM_CODES = ("VADD", "VSUB", "VMUL", "SAXPY", "DOT", "SUM",
              "VSMUL", "VSADD", "VMAX", "VMIN")

#: Status values.
STATUS_IDLE = 0
STATUS_BUSY = 1
STATUS_DONE = 2

_OFF_FORM, _OFF_ROW_A, _OFF_ROW_B, _OFF_ROW_OUT, _OFF_LENGTH, \
    _OFF_GO, _OFF_RESULT_LO, _OFF_RESULT_HI = range(8)


class NodeMemoryInterface:
    """The CPU's window onto a node: DRAM plus the VAU command block.

    Timing note: the CPU interpreter charges its own per-instruction
    cycle costs; DRAM data accesses are behavioural here (the CP's
    400 ns effective word rate is already folded into the instruction
    cost model).  The *vector unit* runs as a real engine process with
    full form timing, so CP/VAU overlap is genuine.
    """

    def __init__(self, node):
        self.node = node
        self.memory = node.memory
        self.engine = node.engine
        self.size = node.specs.memory_bytes
        self._block = [0] * 8
        self._scratch = (
            VectorRegister(node.specs.row_bytes, index=90),
            VectorRegister(node.specs.row_bytes, index=91),
        )

    # -- word access (CPU protocol) ----------------------------------------

    def _in_block(self, address: int) -> bool:
        return VAU_BASE <= address < VAU_BASE + 4 * len(self._block)

    def read_word(self, address: int) -> int:
        if self._in_block(address):
            return to_unsigned(self._block[(address - VAU_BASE) // 4])
        try:
            return self.memory.peek_word(address)
        except Exception as exc:
            raise CPUError(str(exc)) from exc

    def write_word(self, address: int, value: int) -> None:
        if self._in_block(address):
            index = (address - VAU_BASE) // 4
            self._block[index] = to_unsigned(value)
            if index == _OFF_GO and value == STATUS_BUSY:
                self._start_operation()
            return
        try:
            self.memory.poke_word(address, value)
        except Exception as exc:
            raise CPUError(str(exc)) from exc

    def read_bytes(self, address: int, count: int) -> bytes:
        out = bytearray()
        for i in range(count):
            word = self.read_word((address + i) & ~0x3)
            out.append((word >> (8 * ((address + i) & 0x3))) & 0xFF)
        return bytes(out)

    def write_bytes(self, address: int, data) -> None:
        for i, b in enumerate(data):
            a = address + i
            word = self.read_word(a & ~0x3)
            shift = 8 * (a & 0x3)
            word = (word & ~(0xFF << shift)) | (b << shift)
            self.write_word(a & ~0x3, word)

    # -- the micro-sequencer side -------------------------------------------

    def _start_operation(self) -> None:
        form_index = self._block[_OFF_FORM]
        if not 0 <= form_index < len(FORM_CODES):
            raise CPUError(f"bad vector form code {form_index}")
        self.engine.process(
            self._run_operation(FORM_CODES[form_index]),
            name="vau-command",
        )

    def _run_operation(self, form_name):
        form = FORMS[form_name]
        node = self.node
        length = self._block[_OFF_LENGTH]
        # Row loads through the row port (400 ns each), then the form.
        yield from node.memory.row_to_register(
            self._block[_OFF_ROW_A], self._scratch[0]
        )
        inputs = [self._scratch[0].elements(64, count=length)]
        if form.vector_inputs == 2:
            yield from node.memory.row_to_register(
                self._block[_OFF_ROW_B], self._scratch[1]
            )
            inputs.append(self._scratch[1].elements(64, count=length))
        scalars = ()
        if form.scalar_inputs:
            # Scalar operand: bits parked in RESULT_LO/HI by the CP.
            bits = (self._block[_OFF_RESULT_HI] << 32) | \
                self._block[_OFF_RESULT_LO]
            scalars = (float(np.uint64(bits).view(np.float64)),)
        result = yield from node.vau.execute(
            form_name, inputs, scalars, precision=64
        )
        if form.reduction:
            bits = int(np.float64(result).view(np.uint64))
            self._block[_OFF_RESULT_LO] = bits & 0xFFFFFFFF
            self._block[_OFF_RESULT_HI] = bits >> 32
        else:
            self._scratch[0].set_elements(np.asarray(result), 64)
            yield from node.memory.register_to_row(
                self._scratch[0], self._block[_OFF_ROW_OUT]
            )
        # "The arithmetic unit only interrupts the controller when a
        # vector operation has completed": completion = status word.
        self._block[_OFF_GO] = STATUS_DONE


def form_code(name: str) -> int:
    """The ISA-visible code of a vector form."""
    return FORM_CODES.index(name)
