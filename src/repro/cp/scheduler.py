"""The CP's two-level process scheduler.

Paper §II lists "two-level process priority and interrupt services"
among the control processor's features.  Processes live on two FIFO
queues (high and low priority); a high-priority process runs whenever
one is ready, low-priority processes round-robin and are timesliced at
jump instructions (the transputer's descheduling points).

A descheduled process is represented by its workspace pointer; its
instruction pointer is saved in the workspace at offset −1 word, which
is also how RUNP finds where to resume.
"""

from collections import deque

#: Priority levels.
HIGH = 0
LOW = 1

#: The 'not a process' marker stored in idle channel words.
NOT_PROCESS = 0x80000000


def make_descriptor(wptr: int, priority: int) -> int:
    """Pack (workspace, priority) into a process descriptor word."""
    if wptr & 0x3:
        raise ValueError("workspace pointer must be word aligned")
    if priority not in (HIGH, LOW):
        raise ValueError(f"bad priority {priority}")
    return wptr | priority


def descriptor_wptr(descriptor: int) -> int:
    """Workspace pointer part of a descriptor."""
    return descriptor & ~0x3


def descriptor_priority(descriptor: int) -> int:
    """Priority bit of a descriptor."""
    return descriptor & 0x1


class Scheduler:
    """Two FIFO ready queues and the current process registers."""

    #: Low-priority timeslice, in descheduling opportunities.
    QUANTUM = 32

    def __init__(self):
        self.queues = {HIGH: deque(), LOW: deque()}
        #: Current process (None when idle): (wptr, priority).
        self.current = None
        self._slice_left = self.QUANTUM
        #: Context switches performed (for experiments).
        self.switches = 0

    def enqueue(self, wptr: int, priority: int) -> None:
        """Make a process runnable."""
        self.queues[priority].append(wptr)

    def has_runnable(self) -> bool:
        """True if any process is queued (not counting current)."""
        return bool(self.queues[HIGH]) or bool(self.queues[LOW])

    def should_preempt(self) -> bool:
        """True if a high-priority process should displace the current
        low-priority one."""
        return (
            self.current is not None
            and self.current[1] == LOW
            and bool(self.queues[HIGH])
        )

    def next_process(self):
        """Pop the next runnable (wptr, priority), or None if idle."""
        if self.queues[HIGH]:
            self.switches += 1
            self._slice_left = self.QUANTUM
            wptr = self.queues[HIGH].popleft()
            self.current = (wptr, HIGH)
            return self.current
        if self.queues[LOW]:
            self.switches += 1
            self._slice_left = self.QUANTUM
            wptr = self.queues[LOW].popleft()
            self.current = (wptr, LOW)
            return self.current
        self.current = None
        return None

    def timeslice_expired(self) -> bool:
        """Account one descheduling opportunity; True when the current
        low-priority process should yield to a peer."""
        if self.current is None or self.current[1] == HIGH:
            return False
        if not self.queues[LOW]:
            return False
        self._slice_left -= 1
        if self._slice_left <= 0:
            self._slice_left = self.QUANTUM
            return True
        return False

    def __repr__(self):
        return (
            f"<Scheduler current={self.current} "
            f"hi={len(self.queues[HIGH])} lo={len(self.queues[LOW])}>"
        )
