"""Discrete-event simulation kernel (integer-nanosecond clock).

Public surface:

* :class:`Engine` — the event loop; :meth:`Engine.process` starts a
  generator coroutine, :meth:`Engine.run` drives the model.
* :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`AllOf`,
  :class:`AnyOf` — the event types processes yield.
* :class:`Channel` — Occam-style rendezvous channel; :class:`Store` —
  buffered FIFO.
* :class:`Resource`, :class:`Mutex`, :func:`hold` — contended hardware
  resources.
* Exceptions: :class:`SimulationError`, :class:`Interrupt`,
  :class:`DeadlockError`.
"""

from repro.events.engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Process,
    Timeout,
)
from repro.events.channel import Channel, Store
from repro.events.faultlog import FaultLog, record_fault
from repro.events.resources import Mutex, Request, Resource, hold
from repro.events.errors import (
    DeadlockError,
    Interrupt,
    SimulationError,
    StopSimulation,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "DeadlockError",
    "Engine",
    "Event",
    "FaultLog",
    "Interrupt",
    "Mutex",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
    "hold",
    "record_fault",
]
