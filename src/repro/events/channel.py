"""Rendezvous and buffered channels.

The T Series is programmed in Occam, whose channels are *unbuffered*:
a sender blocks until a receiver is ready and vice versa, and the
transfer itself is atomic.  :class:`Channel` implements exactly that
semantics on the event kernel.  :class:`Store` is a buffered FIFO used
by hardware models (e.g. a DMA engine's request queue) where Occam
semantics would be too strict.
"""

from collections import deque

from repro.events.engine import Event, _PENDING

#: Allocate an Event without the ``type.__call__``/``__init__`` frames;
#: channel traffic creates one event per put/get and this construction
#: sits on the rendezvous hot path.
_new_event = Event.__new__


class Channel:
    """An Occam-style unbuffered, point-to-point channel.

    ``put(value)`` and ``get()`` each return an event.  A put event
    fires when a getter takes the value; a get event fires with the
    value when a putter provides one.  Both fire at the same simulated
    time (the rendezvous instant).

    Timing of the physical transfer is *not* modelled here — link and
    memory models add their own delays around the rendezvous.
    """

    def __init__(self, engine, name=None):
        self.engine = engine
        self.name = name or "chan"
        self._fire = engine._fire_urgent  # zero-delay URGENT dispatch
        self._putters = deque()  # (put_event, value)
        self._getters = deque()  # get_event
        self._watchers = []  # one-shot arrival notifications (for ALT)

    def put(self, value):
        """Offer ``value``; the returned event fires when it is taken."""
        put_event = _new_event(Event)
        put_event.engine = self.engine
        put_event.callbacks = []
        put_event._value = _PENDING
        put_event._ok = None
        put_event._defused = False
        if self._getters:
            get_event = self._getters.popleft()
            get_event._ok = True
            get_event._value = value
            self._fire(get_event)
            put_event._ok = True
            put_event._value = None
            self._fire(put_event)
        else:
            self._putters.append((put_event, value))
            if self._watchers:
                watchers, self._watchers = self._watchers, []
                for watcher in watchers:
                    watcher._ok = True
                    watcher._value = self
                    self._fire(watcher)
        return put_event

    def get(self):
        """Request a value; the returned event fires with it."""
        get_event = _new_event(Event)
        get_event.engine = self.engine
        get_event.callbacks = []
        get_event._value = _PENDING
        get_event._ok = None
        get_event._defused = False
        if self._putters:
            put_event, value = self._putters.popleft()
            put_event._ok = True
            put_event._value = None
            self._fire(put_event)
            get_event._ok = True
            get_event._value = value
            self._fire(get_event)
        else:
            self._getters.append(get_event)
        return get_event

    def watch(self):
        """An event that fires when a sender arrives, *without*
        consuming the message.

        This is the primitive under Occam's ALT: an alternation watches
        several channels, and only the selected branch actually gets.
        If a sender is already waiting, the watch fires immediately.
        """
        event = Event(self.engine)
        if self._putters:
            event._ok = True
            event._value = self
            self._fire(event)
        else:
            self._watchers.append(event)
        return event

    @property
    def ready(self):
        """True if a put is pending (a get would complete immediately)."""
        return bool(self._putters)

    @property
    def awaited(self):
        """True if a get is pending (a put would complete immediately)."""
        return bool(self._getters)

    def __repr__(self):
        return (
            f"<Channel {self.name!r} putters={len(self._putters)} "
            f"getters={len(self._getters)}>"
        )


class Store:
    """A buffered FIFO with optional capacity.

    ``put`` blocks only when the store is full; ``get`` blocks only
    when it is empty.  Used for hardware queues (DMA descriptors,
    link-adapter buffers) rather than Occam channels.
    """

    def __init__(self, engine, capacity=None, name=None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.engine = engine
        self.capacity = capacity
        self.name = name or "store"
        self._fire = engine._fire_urgent
        self._items = deque()
        self._putters = deque()  # (event, value)
        self._getters = deque()

    def __len__(self):
        return len(self._items)

    @property
    def items(self):
        """A snapshot tuple of buffered items (oldest first)."""
        return tuple(self._items)

    def clear(self) -> int:
        """Fault-recovery flush: drop every buffered item AND abandon
        all waiting getters/putters.

        This is deliberately brutal — it exists for the recovery
        coordinator, which flushes mailboxes after the processes that
        were waiting on them have already been interrupted.  Abandoned
        waiter events never fire.  Returns the number of items dropped.
        """
        dropped = len(self._items)
        self._items.clear()
        self._getters.clear()
        self._putters.clear()
        return dropped

    def put(self, value):
        """Enqueue ``value``; the event fires once buffered."""
        event = _new_event(Event)
        event.engine = self.engine
        event.callbacks = []
        event._value = _PENDING
        event._ok = None
        event._defused = False
        self._putters.append((event, value))
        self._dispatch()
        return event

    def get(self):
        """Dequeue the oldest value; the event fires with it."""
        event = _new_event(Event)
        event.engine = self.engine
        event.callbacks = []
        event._value = _PENDING
        event._ok = None
        event._defused = False
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self):
        progressed = True
        while progressed:
            progressed = False
            while self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                event, value = self._putters.popleft()
                self._items.append(value)
                event._ok = True
                event._value = None
                self._fire(event)
                progressed = True
            while self._getters and self._items:
                event = self._getters.popleft()
                event._ok = True
                event._value = self._items.popleft()
                self._fire(event)
                progressed = True

    def __repr__(self):
        return f"<Store {self.name!r} len={len(self._items)}>"
