"""Columnar (structure-of-arrays) event storage for the vector kernel.

The reference, fast, and turbo tiers all keep the pending-event set as
a ``heapq`` of ``(time, priority, seq, event)`` tuples: every schedule
allocates a tuple and pays O(log n) Python-level tuple comparisons on
the way in and again on the way out.  That layout caps throughput on
exactly the workloads the paper's machine was built for — large
design-space sweeps where *thousands* of node clocks, refresh ticks,
and link timers are pending at once and the simulator's job is to
drain them in time order as fast as possible.

:class:`ColumnarQueue` replaces the tuple heap with columns:

* **staging** — schedules append to plain Python lists (timestamp,
  priority code, event object), the cheapest insert CPython offers.
  Sequence numbers are *implicit*: arrival order within the staging
  buffer is seq order, so nothing is allocated per entry.
* **ready run** — when a pop finds a large staged batch, the columns
  are converted to numpy ``int64`` arrays and ordered with one stable
  ``argsort``/``lexsort`` (C-speed, cache-friendly), then converted
  back to lists so retail pops are bare ``list`` indexing.  Event
  objects live in an object side-table and are never copied or
  compared — only their column indices move.
* **retail staging lane** — when a pop finds a *small* staged batch
  whose minimum wins (``_needs_flush``), the entry pops straight out
  of the staging columns (:meth:`ColumnarQueue.pop_staged`): no tuple,
  no heap traffic at all.  Interleaved push/pop workloads (DMA
  transfers, collectives — a handful of entries staged between pops)
  live entirely in this lane.
* **retail heap** — staged batches too large for the in-place pop but
  too small for the bulk sort fall back to a classic ``heapq`` with
  explicit sequence numbers, so the worst case is the turbo tier's
  behaviour, not a numpy call per element.

Ordering contract: entries pop in exactly ``(time, priority, seq)``
order, where ``seq`` is global arrival order — bit-identical to what
the tuple heap produces.  Two invariants make the three-part store
cheap to arbitrate:

1. every staged entry's seq is greater than every flushed entry's, so
   a tie on ``(time, priority)`` between a staged entry and a flushed
   head always fires the flushed head first — staging only needs to be
   flushed when its minimum key is *strictly* smaller than both heads;
2. a stable sort of the staging columns by ``(time, priority)``
   reproduces seq order within the batch for free.

The queue tracks its own profiling counters (``array_pops``,
``heap_pops``, ``staged_pops``, ``bulk_flushes``, ``bulk_flushed``,
``retail_flushed``) which
:func:`repro.analysis.tracing.engine_stats` rolls up.
"""

import heapq

import numpy as np

#: Staged batches at least this large (with no live ready run) take the
#: vectorized sort; smaller batches fall back to the retail heap.  The
#: crossover sits where one numpy round-trip beats n heappushes.
BULK_THRESHOLD = 48

#: Priority codes (mirror ``engine.URGENT``/``engine.NORMAL``; kept
#: numeric here so the columns stay int64 end to end).
_URGENT = 0
_NORMAL = 1


class ColumnarQueue:
    """SoA priority queue with bulk (numpy) and retail (heapq) paths.

    Attributes are public-by-convention for the engine's hot loop; the
    methods are the semantic surface and the only thing model code may
    rely on.
    """

    __slots__ = (
        "_sts", "_sprio", "_sev", "_smin", "_surg",
        "_hp", "_rts", "_rprio", "_rseq", "_rev", "_ri", "_rurg",
        "_base", "_n",
        "array_pops", "heap_pops", "staged_pops", "bulk_flushes",
        "bulk_flushed", "retail_flushed",
    )

    def __init__(self):
        # Staging columns (parallel lists; seq implicit in position).
        self._sts = []
        self._sprio = []
        self._sev = []
        self._smin = None          # (ts, prio) minimum over staging
        self._surg = 0             # URGENT entries in staging
        # Retail heap of (ts, prio, seq, event) tuples.
        self._hp = []
        # Ready run: sorted columns + cursor (lists after tolist()).
        self._rts = []
        self._rprio = []
        self._rseq = []
        self._rev = []
        self._ri = 0
        self._rurg = 0             # URGENT entries left in the run
        self._base = 0             # seq of the next staged entry
        self._n = 0                # total live entries
        self.array_pops = 0
        self.heap_pops = 0
        self.staged_pops = 0
        self.bulk_flushes = 0
        self.bulk_flushed = 0
        self.retail_flushed = 0

    # -- sizing -------------------------------------------------------

    def __len__(self):
        return self._n

    def __bool__(self):
        return self._n > 0

    def side_table_size(self) -> int:
        """Objects currently held in the event side-tables (staging
        plus the live remainder of the ready run plus the retail
        heap) — the columnar core's object residency."""
        return len(self._sev) + (len(self._rev) - self._ri) + len(self._hp)

    # -- push ---------------------------------------------------------

    def push(self, ts, prio, event):
        """Schedule ``event`` at ``(ts, prio)``; seq is arrival order."""
        self._sts.append(ts)
        self._sprio.append(prio)
        self._sev.append(event)
        if prio == _URGENT:
            self._surg += 1
        smin = self._smin
        if smin is None or ts < smin[0] or (ts == smin[0]
                                            and prio < smin[1]):
            self._smin = (ts, prio)
        self._n += 1

    # -- peeks --------------------------------------------------------

    def peek_time(self):
        """Earliest pending timestamp, or None when empty."""
        best = None
        smin = self._smin
        if smin is not None:
            best = smin[0]
        if self._ri < len(self._rts):
            ts = self._rts[self._ri]
            if best is None or ts < best:
                best = ts
        if self._hp:
            ts = self._hp[0][0]
            if best is None or ts < best:
                best = ts
        return best

    def peek_key(self):
        """Earliest pending ``(ts, prio)`` key, or None when empty.

        Ties on the key across the three stores resolve by seq at pop
        time; for peeking, the key alone is what arbitration needs.
        """
        best = self._smin
        ri = self._ri
        if ri < len(self._rts):
            key = (self._rts[ri], self._rprio[ri])
            if best is None or key < best:
                best = key
        if self._hp:
            head = self._hp[0]
            key = (head[0], head[1])
            if best is None or key < best:
                best = key
        return best

    # -- flush --------------------------------------------------------

    def _flush(self):
        """Move the staging buffer into the ready run or retail heap."""
        sts = self._sts
        k = len(sts)
        if not k:
            return
        sprio = self._sprio
        sev = self._sev
        base = self._base
        if k >= BULK_THRESHOLD and self._ri >= len(self._rts):
            # Bulk path: one stable lexsort orders the whole batch;
            # stability makes position order (= seq order) the
            # tie-break, exactly what explicit seqs would do.
            ts = np.array(sts, dtype=np.int64)
            prio = np.array(sprio, dtype=np.int64)
            if self._surg:
                order = np.lexsort((prio, ts))
                self._rurg = self._surg
            else:
                order = np.argsort(ts, kind="stable")
                self._rurg = 0
            # All four columns reorder at C speed: fancy-index the
            # int64 columns, add ``base`` to the permutation itself to
            # materialize seqs, and shuffle the object side-table
            # through an object ndarray (pointer moves, no Python
            # iteration).
            self._rts = ts[order].tolist()
            self._rprio = prio[order].tolist()
            self._rseq = (order + base).tolist()
            ev = np.empty(k, dtype=object)
            ev[:] = sev
            self._rev = ev[order].tolist()
            self._ri = 0
            self.bulk_flushes += 1
            self.bulk_flushed += k
        else:
            hp = self._hp
            push = heapq.heappush
            for i in range(k):
                push(hp, (sts[i], sprio[i], base + i, sev[i]))
            self.retail_flushed += k
        self._base = base + k
        del sts[:], sprio[:], sev[:]
        self._smin = None
        self._surg = 0

    def _needs_flush(self):
        """True when the next pop could come from the staging buffer.

        Every staged entry's seq exceeds every flushed entry's, so a
        flushed head whose ``(ts, prio)`` key is ≤ the staged minimum
        fires first regardless — staging only blocks a pop when its
        minimum is *strictly* ahead of both heads (or no head exists).
        """
        smin = self._smin
        if smin is None:
            return False
        ri = self._ri
        if ri < len(self._rts) and (self._rts[ri], self._rprio[ri]) <= smin:
            return False
        hp = self._hp
        if hp and (hp[0][0], hp[0][1]) <= smin:
            return False
        return True

    # -- pop ----------------------------------------------------------

    def pop_staged(self):
        """Retail fast path: pop the minimal staged entry in place.

        Callers must have established via :meth:`_needs_flush` that
        the staged minimum strictly precedes both heads — under
        invariant 1 that makes it *the* global minimum, so it can pop
        straight out of the staging columns: no tuple allocation, no
        heappush of the whole batch, no heappop.  This is what keeps
        small interleaved push/pop traffic (a few entries staged
        between pops — the shape DMA transfers and collectives
        generate) off the per-entry heap path.

        Seq bookkeeping stays implicit: removing position ``i``
        renumbers the staged tail down by one, but relative arrival
        order within staging is preserved and every staged seq remains
        greater than every flushed seq (``_base`` is untouched), which
        is all the ordering contract observes.

        Among staged entries tying on ``(ts, prio)`` the first
        position is the smallest seq, so the scan takes the *first*
        index at the minimum — ``list.index`` (C speed) when no
        URGENT entry is staged, an explicit scan otherwise.
        """
        sts = self._sts
        ts, prio = self._smin
        if self._surg:
            sprio = self._sprio
            i = 0
            for j in range(len(sts)):
                if sts[j] == ts and sprio[j] == prio:
                    i = j
                    break
            if prio == _URGENT:
                self._surg -= 1
        else:
            i = sts.index(ts)
        sts.pop(i)
        self._sprio.pop(i)
        event = self._sev.pop(i)
        self._n -= 1
        self.staged_pops += 1
        if not sts:
            self._smin = None
        elif self._surg:
            sprio = self._sprio
            best_ts = sts[0]
            best_prio = sprio[0]
            for j in range(1, len(sts)):
                t = sts[j]
                if t < best_ts or (t == best_ts and sprio[j] < best_prio):
                    best_ts = t
                    best_prio = sprio[j]
            self._smin = (best_ts, best_prio)
        else:
            self._smin = (min(sts), _NORMAL)
        return ts, prio, event

    def pop(self):
        """Remove and return the earliest ``(ts, prio, event)``."""
        if self._needs_flush():
            if len(self._sts) < BULK_THRESHOLD:
                return self.pop_staged()
            self._flush()
        ri = self._ri
        rts = self._rts
        hp = self._hp
        if ri < len(rts):
            if hp:
                head = hp[0]
                rkey = (rts[ri], self._rprio[ri], self._rseq[ri])
                if (head[0], head[1], head[2]) < rkey:
                    ts, prio, _seq, event = heapq.heappop(hp)
                    self._n -= 1
                    self.heap_pops += 1
                    return ts, prio, event
            ts = rts[ri]
            prio = self._rprio[ri]
            event = self._rev[ri]
            self._rev[ri] = None      # release the side-table slot
            self._ri = ri + 1
            if prio == _URGENT:
                self._rurg -= 1
            self._n -= 1
            self.array_pops += 1
            if self._ri >= len(rts):
                self._reset_run()
            return ts, prio, event
        if hp:
            ts, prio, _seq, event = heapq.heappop(hp)
            self._n -= 1
            self.heap_pops += 1
            return ts, prio, event
        raise IndexError("pop from empty ColumnarQueue")

    def _reset_run(self):
        """Drop an exhausted ready run so its storage can be reused."""
        self._rts = []
        self._rprio = []
        self._rseq = []
        self._rev = []
        self._ri = 0
        self._rurg = 0

    def stats(self) -> dict:
        """Profiling counters plus current residency."""
        return {
            "array_pops": self.array_pops,
            "heap_pops": self.heap_pops,
            "staged_pops": self.staged_pops,
            "bulk_flushes": self.bulk_flushes,
            "bulk_flushed": self.bulk_flushed,
            "retail_flushed": self.retail_flushed,
            "side_table_size": self.side_table_size(),
        }

    def __repr__(self):
        return (f"<ColumnarQueue n={self._n} staged={len(self._sts)} "
                f"run={len(self._rts) - self._ri} heap={len(self._hp)}>")
