"""The discrete-event simulation engine.

The entire T Series model runs on this kernel.  Simulated time is an
integer count of **nanoseconds**; integer time makes every hardware
latency in the paper exactly representable (the 125 ns arithmetic cycle,
the 400 ns memory access, the 5 µs DMA startup) and keeps event ordering
deterministic across platforms.

The programming model is the generator-coroutine style familiar from
SimPy: a *process* is a Python generator that yields
:class:`Event` objects and is resumed when they fire.

Example
-------
>>> from repro.events import Engine
>>> eng = Engine()
>>> def worker(eng, log):
...     yield eng.timeout(125)
...     log.append(eng.now)
>>> log = []
>>> _ = eng.process(worker(eng, log))
>>> eng.run()
>>> log
[125]
"""

import heapq

from repro.events.errors import (
    DeadlockError,
    Interrupt,
    SimulationError,
    StopSimulation,
)

#: Sentinel priority classes for event scheduling.  ``URGENT`` events at a
#: given time fire before ``NORMAL`` events at the same time; the kernel
#: uses this to complete rendezvous handshakes before ordinary timeouts.
URGENT = 0
NORMAL = 1


class Event:
    """A happening at a point in simulated time.

    Events move through three states:

    * *pending* — created, not yet triggered;
    * *triggered* — a value (or exception) has been set and the event is
      queued to fire;
    * *processed* — callbacks have run and waiting processes resumed.

    Attributes
    ----------
    callbacks : list or None
        Callables invoked with the event when it is processed.  ``None``
        once processed.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_defused")

    #: Unique sentinel marking "no value yet".
    PENDING = object()

    def __init__(self, engine):
        self.engine = engine
        self.callbacks = []
        self._value = Event.PENDING
        self._ok = None
        self._defused = False

    @property
    def triggered(self):
        """True once the event has a value and is queued (or processed)."""
        return self._value is not Event.PENDING

    @property
    def processed(self):
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self):
        """The event's value, or the exception it failed with."""
        if self._value is Event.PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value=None, delay=0, priority=NORMAL):
        """Trigger the event successfully with ``value``.

        ``delay`` schedules the firing that many nanoseconds in the
        future.  Returns the event so calls can be chained.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.engine._schedule(self, delay, priority)
        return self

    def fail(self, exception, delay=0, priority=NORMAL):
        """Trigger the event with an exception.

        Processes waiting on the event will have ``exception`` thrown
        into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.engine._schedule(self, delay, priority)
        return self

    def defuse(self):
        """Mark a failed event as handled so the engine will not re-raise
        its exception at the top level."""
        self._defused = True

    def __and__(self, other):
        return AllOf(self.engine, [self, other])

    def __or__(self, other):
        return AnyOf(self.engine, [self, other])

    def __repr__(self):
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Created via :meth:`Engine.timeout`; it is triggered at construction,
    so it cannot be succeeded or failed manually.
    """

    __slots__ = ("delay",)

    def __init__(self, engine, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(engine)
        self.delay = int(delay)
        self._ok = True
        self._value = value
        engine._schedule(self, self.delay, NORMAL)

    def __repr__(self):
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event used to start a process at the current time."""

    __slots__ = ()

    def __init__(self, engine, process):
        super().__init__(engine)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        engine._schedule(self, 0, URGENT)


class Process(Event):
    """A running generator coroutine.

    A Process is itself an Event: it succeeds with the generator's
    return value when the generator finishes, or fails with the
    exception that escaped it.  This lets processes wait on each other
    simply by yielding them.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, engine, generator, name=None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(engine)
        self._generator = generator
        self._target = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(engine, self)

    @property
    def is_alive(self):
        """True while the underlying generator has not finished."""
        return self._value is Event.PENDING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time.

        A process cannot interrupt itself and a finished process cannot
        be interrupted.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated")
        if self is self.engine.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.engine)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.engine._schedule(event, 0, URGENT)
        # Unsubscribe from the event we were waiting on: the interrupt
        # wins the race, and a later firing of the old target must not
        # resume us twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event):
        """Resume the generator with the outcome of ``event``."""
        self.engine._active = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                event._defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            self.engine._active = None
            self._ok = True
            self._value = stop.value
            self.engine._schedule(self, 0, URGENT)
            return
        except BaseException as exc:
            self.engine._active = None
            self._ok = False
            self._value = exc
            self.engine._schedule(self, 0, URGENT)
            return
        self.engine._active = None

        if not isinstance(result, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {result!r}, not an Event"
            )
        if result.engine is not self.engine:
            raise SimulationError(
                f"process {self.name!r} yielded an event from another engine"
            )
        if result.callbacks is None:
            # Already processed: resume immediately (at the current time,
            # urgently, so ordering stays deterministic).
            shim = Event(self.engine)
            shim._ok = result._ok
            shim._value = result._value
            if not result._ok:
                result._defused = True
                shim._defused = True
            shim.callbacks.append(self._resume)
            self.engine._schedule(shim, 0, URGENT)
            self._target = shim
        else:
            result.callbacks.append(self._resume)
            self._target = result

    def __repr__(self):
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Condition(Event):
    """Base for composite events over a set of sub-events."""

    __slots__ = ("events", "_count")

    def __init__(self, engine, events):
        super().__init__(engine)
        self.events = list(events)
        for ev in self.events:
            if ev.engine is not engine:
                raise SimulationError("events from different engines")
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self):
        """Map each already-fired sub-event to its value."""
        return {
            i: ev._value
            for i, ev in enumerate(self.events)
            if ev.processed and ev._ok
        }

    def _check(self, event):
        raise NotImplementedError


class AllOf(Condition):
    """Fires when *all* sub-events have fired; value maps index→value."""

    __slots__ = ()

    def _check(self, event):
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires when *any* sub-event fires; value maps index→value for the
    sub-events that had fired by then."""

    __slots__ = ()

    def _check(self, event):
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        self.succeed(self._collect())


class Engine:
    """The event loop: a priority queue of (time, priority, seq, event).

    All model components share one Engine.  The sequence number breaks
    ties so that equal-time events fire in the order they were
    scheduled, making runs fully deterministic.
    """

    def __init__(self):
        self._now = 0
        self._heap = []
        self._seq = 0
        self._active = None

    @property
    def now(self):
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed, or None."""
        return self._active

    # -- scheduling ---------------------------------------------------

    def _schedule(self, event, delay=0, priority=NORMAL):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(
            self._heap, (self._now + int(delay), priority, self._seq, event)
        )
        self._seq += 1

    def timeout(self, delay, value=None):
        """Return an event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def event(self):
        """Return a fresh, untriggered event."""
        return Event(self)

    def process(self, generator, name=None):
        """Start ``generator`` as a process; returns the Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events):
        """Composite event firing when every event in ``events`` fires."""
        return AllOf(self, events)

    def any_of(self, events):
        """Composite event firing when the first event in ``events`` fires."""
        return AnyOf(self, events)

    # -- execution ----------------------------------------------------

    def peek(self):
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self):
        """Process exactly one event.

        Raises :class:`DeadlockError` when the queue is empty.
        """
        if not self._heap:
            raise DeadlockError("event queue empty")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("time went backwards")  # pragma: no cover
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until=None):
        """Run until the queue drains, ``until`` is reached, or a stop
        event fires.

        Parameters
        ----------
        until : int, Event, or None
            ``None`` runs to queue exhaustion.  An integer runs until
            simulated time reaches that value (events at exactly
            ``until`` do not fire).  An :class:`Event` runs until that
            event is processed and returns its value.
        """
        stop_value = [None]
        if isinstance(until, Event):
            if until.callbacks is None:
                if not until._ok:
                    until._defused = True
                    raise until._value
                return until._value

            def _stop(event):
                if not event._ok:
                    event._defused = True
                    raise event._value
                raise StopSimulation(event._value)

            until.callbacks.append(_stop)
            until_time = None
        elif until is not None:
            until_time = int(until)
            if until_time < self._now:
                raise ValueError(
                    f"until={until_time} is in the past (now={self._now})"
                )
        else:
            until_time = None

        try:
            while self._heap:
                if until_time is not None and self._heap[0][0] >= until_time:
                    self._now = until_time
                    return None
                self.step()
        except StopSimulation as stop:
            stop_value[0] = stop.value
            return stop_value[0]
        if isinstance(until, Event) and not until.triggered:
            raise DeadlockError(
                "run() target event never fired; model deadlocked"
            )
        if until_time is not None:
            self._now = until_time
        return stop_value[0]

    def __repr__(self):
        return f"<Engine now={self._now} queued={len(self._heap)}>"
