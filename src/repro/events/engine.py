"""The discrete-event simulation engine.

The entire T Series model runs on this kernel.  Simulated time is an
integer count of **nanoseconds**; integer time makes every hardware
latency in the paper exactly representable (the 125 ns arithmetic cycle,
the 400 ns memory access, the 5 µs DMA startup) and keeps event ordering
deterministic across platforms.

The programming model is the generator-coroutine style familiar from
SimPy: a *process* is a Python generator that yields
:class:`Event` objects and is resumed when they fire.

Fast path
---------
Zero-delay URGENT schedules (rendezvous completions, resource grants,
process starts and resumptions) dominate event traffic, and they need
no priority queue at all: they all fire *now*, in scheduling order.
The engine therefore keeps a same-timestamp FIFO **fast lane** beside
the ``heapq`` and routes ``delay == 0, priority == URGENT`` schedules
into it, firing the lane ahead of equal-time NORMAL heap entries —
exactly the order the heap would have produced, without the push/pop
and without consuming sequence numbers.  Resuming a process on an
already-processed event (and starting a new process) uses a slim
``[callback, event]`` record instead of allocating a shim
:class:`Event`.

The simulator has **four kernel tiers**, selected per object at
construction time from the environment (see :func:`kernel_tier`):

* ``reference`` — ``REPRO_SLOW_KERNEL=1``: the pure-heap path (every
  schedule goes through the priority queue, resumptions allocate shim
  events), byte-at-a-time CP decode, no timing memoization;
* ``fast`` — ``REPRO_TURBO_KERNEL=0``: the fast lane, resume records,
  and the CP's decoded-instruction cache (the PR-1 optimisations);
* ``turbo`` — the default: everything in ``fast``, plus an inline
  resume trampoline for processes that yield already-fired events and
  the CP's basic-block translator;
* ``vector`` — ``REPRO_VECTOR_KERNEL=1``: everything in ``turbo``,
  plus the columnar (structure-of-arrays) event queue of
  :mod:`repro.events.columnar` — schedules append to parallel columns
  and large pending sets are ordered with one stable numpy sort
  instead of per-entry tuple-heap traffic — and the batched
  vector-form path in :mod:`repro.fpu.vector_forms`.

All tiers produce bit-identical simulated-time results; the
differential fuzzers and golden traces compare them four ways.

Example
-------
>>> from repro.events import Engine
>>> eng = Engine()
>>> def worker(eng, log):
...     yield eng.timeout(125)
...     log.append(eng.now)
>>> log = []
>>> _ = eng.process(worker(eng, log))
>>> eng.run()
>>> log
[125]
"""

import contextlib
import heapq
import math
import os
from collections import deque

from repro.events.errors import (
    DeadlockError,
    Interrupt,
    SimulationError,
    StopSimulation,
)

#: Sentinel priority classes for event scheduling.  ``URGENT`` events at a
#: given time fire before ``NORMAL`` events at the same time; the kernel
#: uses this to complete rendezvous handshakes before ordinary timeouts.
URGENT = 0
NORMAL = 1


def slow_kernel_requested() -> bool:
    """True if the environment asks for the pure-heap reference kernel."""
    return os.environ.get("REPRO_SLOW_KERNEL", "") not in ("", "0")


#: The four kernel tiers, slowest first.
KERNEL_TIERS = ("reference", "fast", "turbo", "vector")


def kernel_tier() -> str:
    """The kernel tier the environment currently selects.

    ``REPRO_SLOW_KERNEL=1`` wins (the reference path, for baselines
    and conformance); otherwise ``REPRO_VECTOR_KERNEL=1`` (or ``on``)
    selects the columnar SoA tier; otherwise ``REPRO_TURBO_KERNEL=0``
    (or ``off``) pins the PR-1 fast tier; otherwise the turbo tier —
    the default.
    """
    if slow_kernel_requested():
        return "reference"
    if os.environ.get("REPRO_VECTOR_KERNEL", "") in ("1", "on"):
        return "vector"
    if os.environ.get("REPRO_TURBO_KERNEL", "") in ("0", "off"):
        return "fast"
    return "turbo"


def turbo_kernel_requested() -> bool:
    """True if the environment selects the turbo tier or a tier that
    includes everything turbo does (the vector tier)."""
    return kernel_tier() in ("turbo", "vector")


def vector_kernel_requested() -> bool:
    """True if the environment selects the columnar vector tier."""
    return kernel_tier() == "vector"


@contextlib.contextmanager
def force_kernel(slow=None, tier=None):
    """Context manager selecting a kernel tier for everything built
    inside.

    The kernel choice is sampled at *construction* time (by
    :class:`Engine`, the CP's decoded/translated instruction caches,
    and the vector unit's timing memoization), so the
    differential-testing oracle builds each scenario once per tier —
    ``force_kernel(tier="reference"|"fast"|"turbo")`` — and compares
    the runs.  The legacy boolean spelling is still accepted:
    ``force_kernel(slow=True)`` selects the reference tier and
    ``force_kernel(slow=False)`` the fast tier (pinning
    ``REPRO_TURBO_KERNEL=0`` so pre-turbo comparisons keep their
    meaning).  The previous environment values are restored on exit.
    """
    if tier is None:
        tier = "reference" if slow else "fast"
    if tier not in KERNEL_TIERS:
        raise ValueError(f"unknown kernel tier {tier!r}")
    saved_slow = os.environ.get("REPRO_SLOW_KERNEL")
    saved_turbo = os.environ.get("REPRO_TURBO_KERNEL")
    saved_vector = os.environ.get("REPRO_VECTOR_KERNEL")
    os.environ["REPRO_SLOW_KERNEL"] = "1" if tier == "reference" else "0"
    os.environ["REPRO_TURBO_KERNEL"] = "1" if tier == "turbo" else "0"
    os.environ["REPRO_VECTOR_KERNEL"] = "1" if tier == "vector" else "0"
    try:
        yield
    finally:
        for name, saved in (("REPRO_SLOW_KERNEL", saved_slow),
                            ("REPRO_TURBO_KERNEL", saved_turbo),
                            ("REPRO_VECTOR_KERNEL", saved_vector)):
            if saved is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = saved


def _delay_ns(delay):
    """Normalise a delay to integer nanoseconds.

    Integers (and integral floats) pass through unchanged.  Fractional
    delays are **rounded half-up** — never silently truncated, which
    could shorten simulated durations (e.g. ``int(2.9) == 2``).
    """
    ns = int(delay)
    if ns != delay:
        ns = math.floor(delay + 0.5)
    return ns


#: Unique sentinel marking "no value yet" (module-level: a global
#: lookup is cheaper than a class-attribute lookup on the hot paths).
_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    Events move through three states:

    * *pending* — created, not yet triggered;
    * *triggered* — a value (or exception) has been set and the event is
      queued to fire;
    * *processed* — callbacks have run and waiting processes resumed.

    Attributes
    ----------
    callbacks : list or None
        Callables invoked with the event when it is processed.  ``None``
        once processed.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_defused")

    #: Unique sentinel marking "no value yet".
    PENDING = _PENDING

    def __init__(self, engine):
        self.engine = engine
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False

    @property
    def triggered(self):
        """True once the event has a value and is queued (or processed)."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self):
        """The event's value, or the exception it failed with."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value=None, delay=0, priority=NORMAL):
        """Trigger the event successfully with ``value``.

        ``delay`` schedules the firing that many nanoseconds in the
        future.  Returns the event so calls can be chained.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.engine._schedule(self, delay, priority)
        return self

    def fail(self, exception, delay=0, priority=NORMAL):
        """Trigger the event with an exception.

        Processes waiting on the event will have ``exception`` thrown
        into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.engine._schedule(self, delay, priority)
        return self

    def defuse(self):
        """Mark a failed event as handled so the engine will not re-raise
        its exception at the top level."""
        self._defused = True

    def __and__(self, other):
        return AllOf(self.engine, [self, other])

    def __or__(self, other):
        return AnyOf(self.engine, [self, other])

    def __repr__(self):
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


# Fast-lane resume records are plain two-element lists
# ``[callback, event]`` — a list literal is a single C-level
# allocation, the cheapest mutable record CPython offers.  Slot 0 is
# set to ``None`` when an interrupt wins the race against the pending
# resumption (the shim-based equivalent removed the callback from the
# shim's callback list).  Nothing else in the lane can be a list:
# every real queue entry is an :class:`Event`.


class _Start:
    """Sentinel outcome used to kick off a process's first resume on
    the fast path (the reference path allocates an :class:`Initialize`
    event instead)."""

    __slots__ = ()
    _ok = True
    _value = None


_START = _Start()


class Timeout(Event):
    """An event that fires after a fixed delay.

    Created via :meth:`Engine.timeout`; it is triggered at construction,
    so it cannot be succeeded or failed manually.  Non-integer delays
    are rounded half-up to whole nanoseconds (see :func:`_delay_ns`) —
    they are never silently truncated.
    """

    __slots__ = ("delay",)

    def __init__(self, engine, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        if type(delay) is not int:
            delay = _delay_ns(delay)
        # Event.__init__ inlined (timeouts are the hottest allocation).
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        # Zero-delay timeouts fire at the current instant with NORMAL
        # priority; on the turbo tier they take the nlane FIFO instead
        # of a heap round-trip.  Real delays go through the priority
        # queue; push directly rather than via _schedule.  On the
        # vector tier the queue is the columnar store — an append to
        # its staging columns, no tuple, no sequence number (arrival
        # order is the sequence).
        if delay == 0 and engine._nlane is not None:
            engine._nlane.append(self)
            return
        cq = engine._cq
        if cq is not None:
            # cq.push inlined for NORMAL priority: a NORMAL entry can
            # never beat the staged minimum on a timestamp tie (URGENT
            # sorts first) and never bumps the urgent count, so the
            # push is three appends and one compare.
            ts = engine._now + delay
            cq._sts.append(ts)
            cq._sprio.append(NORMAL)
            cq._sev.append(self)
            smin = cq._smin
            if smin is None or ts < smin[0]:
                cq._smin = (ts, NORMAL)
            cq._n += 1
            engine.heap_pushes += 1
            return
        heapq.heappush(
            engine._heap, (engine._now + delay, NORMAL, engine._seq, self)
        )
        engine._seq += 1
        engine.heap_pushes += 1

    def __repr__(self):
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event used to start a process at the current time."""

    __slots__ = ()

    def __init__(self, engine, process):
        super().__init__(engine)
        self.callbacks.append(process._resume_cb)
        self._ok = True
        self._value = None
        if engine._fast:
            engine._lane.append(self)
        else:
            engine._schedule(self, 0, URGENT)


class Process(Event):
    """A running generator coroutine.

    A Process is itself an Event: it succeeds with the generator's
    return value when the generator finishes, or fails with the
    exception that escaped it.  This lets processes wait on each other
    simply by yielding them.
    """

    __slots__ = (
        "_generator", "_send", "_resume_cb", "_target", "_name"
    )

    def __init__(self, engine, generator, name=None):
        # ``send`` is bound once here; ``throw`` is looked up lazily in
        # _resume — failures are rare and the extra bound method per
        # spawn is measurable in spawn-heavy workloads.
        try:
            self._send = generator.send
        except AttributeError:
            raise TypeError(f"{generator!r} is not a generator") from None
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        # Event.__init__ inlined (one Process per spawned activity).
        self.engine = engine
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self._generator = generator
        # A bound method is allocated on every attribute access; resumes
        # happen once per yield, so bind it exactly once.
        self._resume_cb = self._resume
        self._target = None
        self._name = name
        if engine._fast:
            engine._lane.append([self._resume_cb, _START])
        else:
            Initialize(engine, self)

    @property
    def name(self):
        """The process name (defaults to the generator's name)."""
        if self._name is None:
            self._name = getattr(self._generator, "__name__", "process")
        return self._name

    @property
    def is_alive(self):
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time.

        A process cannot interrupt itself and a finished process cannot
        be interrupted.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated")
        if self is self.engine.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.engine)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume_cb)
        self.engine._schedule(event, 0, URGENT)
        # Unsubscribe from the event we were waiting on: the interrupt
        # wins the race, and a later firing of the old target must not
        # resume us twice.
        target = self._target
        if target is not None:
            if target.__class__ is list:
                target[0] = None
            elif target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume_cb)
                except ValueError:
                    pass
        self._target = None

    def _resume(self, event):
        """Resume the generator with the outcome of ``event``."""
        # Hot names bound locally: a resume is the single most frequent
        # operation in the simulator, and the turbo trampoline can keep
        # one _resume call spinning for thousands of yields.  ``tramp``
        # batches the counter updates those inline resumes owe; every
        # exit path flushes it (run() defers its counters the same way).
        engine = self.engine
        send = self._send
        lane = engine._lane
        turbo = engine._turbo
        tramp = 0
        # _PENDING (never a generator's yield value) marks "no memo":
        # a plain None would false-match a process yielding None.
        spin = _PENDING
        engine._active = self
        while True:
            try:
                if event._ok:
                    result = send(event._value)
                else:
                    event._defused = True
                    result = self._generator.throw(event._value)
            except StopIteration as stop:
                engine._active = None
                self._ok = True
                self._value = stop.value
                callbacks = self.callbacks
                if (turbo and engine._solo_cb
                        and not lane and not engine._durgent
                        and callbacks is not None
                        and len(callbacks) == 1):
                    # Completion trampoline (turbo tier): this process
                    # event would be the lane's only entry and nothing
                    # can fire before it, so dispatch its sole waiter
                    # inline — counters advance exactly as the lane
                    # round-trip's would.
                    engine.events_processed += tramp + 1
                    engine.lane_hits += tramp + 1
                    self.callbacks = None
                    callbacks[0](self)
                    return
                if tramp:
                    engine.events_processed += tramp
                    engine.lane_hits += tramp
                if engine._fast:
                    lane.append(self)
                else:
                    engine._schedule(self, 0, URGENT)
                return
            except BaseException as exc:
                engine._active = None
                self._ok = False
                self._value = exc
                if tramp:
                    engine.events_processed += tramp
                    engine.lane_hits += tramp
                if engine._fast:
                    lane.append(self)
                else:
                    engine._schedule(self, 0, URGENT)
                return

            if result is spin:
                # Same-event spin (turbo): the process keeps yielding
                # one event it already validated, and a processed
                # event stays processed — skip revalidation and resume
                # with the identical outcome.
                if not lane and engine._solo_cb and not engine._durgent:
                    tramp += 1
                    continue
                spin = _PENDING

            # Duck-typed validation: probing the two attributes every
            # Event has is cheaper than an isinstance() on this hot path.
            try:
                callbacks = result.callbacks
                if result.engine is not engine:
                    engine._active = None
                    raise SimulationError(
                        f"process {self.name!r} yielded an event "
                        f"from another engine"
                    )
            except AttributeError:
                engine._active = None
                raise SimulationError(
                    f"process {self.name!r} yielded {result!r}, not an Event"
                ) from None
            if callbacks is None:
                # Already processed: resume immediately (at the current
                # time, urgently, so ordering stays deterministic).
                if not result._ok:
                    result._defused = True
                if (turbo and not lane and engine._solo_cb
                        and not engine._durgent):
                    # Trampoline (turbo tier): the resume record would
                    # be the lane's only entry, and with no URGENT heap
                    # entries nothing can fire before it — so it would
                    # fire immediately next.  Resume inline instead of
                    # round-tripping through the lane; the counters
                    # advance exactly as the record path's would.
                    tramp += 1
                    spin = result
                    event = result
                    continue
                engine._active = None
                if engine._fast:
                    record = [self._resume_cb, result]
                    lane.append(record)
                    self._target = record
                else:
                    shim = Event(engine)
                    shim._ok = result._ok
                    shim._value = result._value
                    if not result._ok:
                        shim._defused = True
                    shim.callbacks.append(self._resume_cb)
                    engine._schedule(shim, 0, URGENT)
                    self._target = shim
            else:
                if (turbo and not callbacks and lane
                        and lane[0] is result
                        and engine._solo_cb and not engine._durgent
                        and result._value is not _PENDING):
                    # Front-of-lane trampoline (turbo tier): the
                    # yielded event is already triggered, has no other
                    # waiters, and sits at the head of the lane — the
                    # next dispatch would pop exactly it and resume
                    # this very process.  Do that here: pop it, mark it
                    # processed, resume inline.  (Uncontended resource
                    # grants, Store puts, and the getter side of a
                    # channel rendezvous hit this constantly.)
                    lane.popleft()
                    result.callbacks = None
                    if not result._ok:
                        result._defused = True
                    tramp += 1
                    # The spin memo must track the event we resume
                    # with: leaving a stale memo here would replay the
                    # *previous* event's value on a later re-yield.
                    spin = result
                    event = result
                    continue
                engine._active = None
                callbacks.append(self._resume_cb)
                self._target = result
            if tramp:
                engine.events_processed += tramp
                engine.lane_hits += tramp
            return

    def __repr__(self):
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Condition(Event):
    """Base for composite events over a set of sub-events."""

    __slots__ = ("events", "_count")

    def __init__(self, engine, events):
        super().__init__(engine)
        self.events = list(events)
        for ev in self.events:
            if ev.engine is not engine:
                raise SimulationError("events from different engines")
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self):
        """Map each already-fired sub-event to its value."""
        return {
            i: ev._value
            for i, ev in enumerate(self.events)
            if ev.processed and ev._ok
        }

    def _check(self, event):
        raise NotImplementedError


class AllOf(Condition):
    """Fires when *all* sub-events have fired; value maps index→value."""

    __slots__ = ()

    def _check(self, event):
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires when *any* sub-event fires; value maps index→value for the
    sub-events that had fired by then."""

    __slots__ = ()

    def _check(self, event):
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        self.succeed(self._collect())


class Engine:
    """The event loop: an URGENT fast lane plus a priority queue of
    ``(time, priority, seq, event)`` records.

    All model components share one Engine.  The sequence number breaks
    ties so that equal-time heap events fire in the order they were
    scheduled; fast-lane entries are FIFO by construction.  Runs are
    fully deterministic on both the fast and the reference path.

    Profiling counters (reset never; see
    :func:`repro.analysis.tracing.engine_stats`):

    * ``events_processed`` — events (and resume records) fired;
    * ``heap_pushes`` — schedules that went through the priority queue;
    * ``lane_hits`` — events fired from the URGENT fast lane.
    """

    __slots__ = (
        "_now", "_heap", "_lane", "_nlane", "_cq", "_seq", "_active",
        "_fast", "_turbo", "_durgent", "_fire_urgent", "_solo_cb",
        "events_processed", "heap_pushes", "lane_hits",
        "fault_log", "cp_cpus", "vaus",
    )

    def __init__(self):
        self._now = 0
        self._heap = []
        self._lane = deque()
        self._seq = 0
        self._active = None
        tier = kernel_tier()
        self._fast = tier != "reference"
        # Turbo tier and above: resume trampolining (see
        # Process._resume).  The CP's block translator samples the
        # tier itself.
        self._turbo = tier in ("turbo", "vector")
        # Turbo tier: FIFO for zero-delay NORMAL schedules (mostly
        # ``timeout(0)``).  They fire at the current instant after all
        # URGENT traffic and after any heap entries that reached the
        # current time with a positive delay; since every zero-delay
        # NORMAL lands here, a heap entry at the current time always
        # predates (has a smaller would-be seq than) every nlane entry,
        # so "drain heap entries at now, then the nlane" reproduces the
        # heap order exactly — without the push/pop.
        self._nlane = deque() if self._turbo else None
        # Vector tier: the columnar SoA queue replaces the tuple heap
        # entirely (``_heap`` stays empty); see repro.events.columnar.
        if tier == "vector":
            from repro.events.columnar import ColumnarQueue
            self._cq = ColumnarQueue()
        else:
            self._cq = None
        # True while dispatching an event that had exactly one callback
        # (set at every dispatch site).  The resume trampoline may only
        # run inline when no sibling callbacks of the firing event are
        # still pending — an interrupt from a sibling must win the race
        # against the queued resume record, exactly as on the record
        # path.
        self._solo_cb = False
        # URGENT entries currently in the heap.  Zero in steady state on
        # the fast path (zero-delay URGENT takes the lane), which lets
        # the hot loop skip the heap-top inspection entirely.
        self._durgent = 0
        # Pre-bound "fire this event now, urgently" entry point for the
        # rendezvous/grant hot paths: a raw C ``deque.append`` on the
        # fast kernel, the generic scheduler on the reference kernel.
        if self._fast:
            self._fire_urgent = self._lane.append
        else:
            self._fire_urgent = self._urgent_via_heap
        self.events_processed = 0
        self.heap_pushes = 0
        self.lane_hits = 0
        # Installed by repro.system.faultlog.FaultLog; None means no
        # fault bookkeeping for this run (record_fault() is a no-op).
        self.fault_log = None
        # CPUs attached via CPU.as_process, so engine_stats can roll up
        # their decoded/translated-cache counters.
        self.cp_cpus = []
        # Vector arithmetic units built on this engine, so engine_stats
        # can roll up their batched-form counters.
        self.vaus = []

    @property
    def now(self):
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed, or None."""
        return self._active

    @property
    def fast_kernel(self):
        """True when this engine uses the fast-lane kernel."""
        return self._fast

    @property
    def kernel_tier(self):
        """This engine's tier: ``reference``, ``fast``, ``turbo``, or
        ``vector`` (sampled from the environment at construction)."""
        if not self._fast:
            return "reference"
        if self._cq is not None:
            return "vector"
        return "turbo" if self._turbo else "fast"

    # -- scheduling ---------------------------------------------------

    def _urgent_via_heap(self, event):
        """Reference-kernel form of :attr:`_fire_urgent`."""
        self._schedule(event, 0, URGENT)

    def _schedule(self, event, delay=0, priority=NORMAL):
        if delay == 0 and priority == URGENT and self._fast:
            # Fast lane: fires at the current time, ahead of equal-time
            # NORMAL heap entries, in FIFO (= would-be seq) order.
            self._lane.append(event)
            return
        if delay == 0 and priority == NORMAL and self._nlane is not None:
            self._nlane.append(event)
            return
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        if type(delay) is not int:
            delay = _delay_ns(delay)
        cq = self._cq
        if cq is not None:
            # Vector tier: append to the columnar staging buffer.  The
            # arrival position is the sequence number.
            cq.push(self._now + delay, priority, event)
            self.heap_pushes += 1
            if priority == URGENT:
                self._durgent += 1
            return
        heapq.heappush(
            self._heap, (self._now + delay, priority, self._seq, event)
        )
        self._seq += 1
        self.heap_pushes += 1
        if priority == URGENT:
            self._durgent += 1

    def timeout(self, delay, value=None):
        """Return an event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def event(self):
        """Return a fresh, untriggered event."""
        return Event(self)

    def process(self, generator, name=None):
        """Start ``generator`` as a process; returns the Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events):
        """Composite event firing when every event in ``events`` fires."""
        return AllOf(self, events)

    def any_of(self, events):
        """Composite event firing when the first event in ``events`` fires."""
        return AnyOf(self, events)

    # -- execution ----------------------------------------------------

    def peek(self):
        """Time of the next scheduled event, or None if the queue is empty."""
        if self._lane or self._nlane:
            return self._now
        cq = self._cq
        if cq is not None:
            return cq.peek_time()
        return self._heap[0][0] if self._heap else None

    def _lane_first(self):
        """True when the next event to fire comes from the fast lane.

        Lane entries fire at the current time with URGENT priority and
        a later sequence number than anything already in the queue, so
        the only queue entries that may precede them are URGENT entries
        *at the current time* — which can only have been scheduled with
        a positive delay (zero-delay URGENT always takes the lane).
        """
        if not self._lane:
            return False
        if not self._durgent:
            return True
        cq = self._cq
        if cq is not None:
            key = cq.peek_key()
            return not (
                key is not None and key[0] == self._now and key[1] == URGENT
            )
        heap = self._heap
        return not (heap and heap[0][0] == self._now and heap[0][1] == URGENT)

    def step(self):
        """Process exactly one event (or fast-lane resume record).

        Raises :class:`DeadlockError` when the queue is empty.
        """
        cq = self._cq
        if self._lane_first():
            entry = self._lane.popleft()
            self.events_processed += 1
            self.lane_hits += 1
            if entry.__class__ is list:
                callback = entry[0]
                if callback is not None:
                    self._solo_cb = True
                    callback(entry[1])
                return
            event = entry
        elif self._nlane and not (
            cq.peek_time() == self._now if cq is not None
            else (self._heap and self._heap[0][0] == self._now)
        ):
            # Zero-delay NORMAL FIFO: fires at the current instant once
            # the lane is clear and no queue entry has reached ``now``.
            event = self._nlane.popleft()
            self.events_processed += 1
            self.lane_hits += 1
        elif cq is not None:
            if not cq._n:
                raise DeadlockError("event queue empty")
            when, prio, event = cq.pop()
            if when < self._now:
                raise SimulationError("time went backwards")  # pragma: no cover
            if prio == URGENT:
                self._durgent -= 1
            self._now = when
            self.events_processed += 1
        else:
            if not self._heap:
                raise DeadlockError("event queue empty")
            when, prio, _seq, event = heapq.heappop(self._heap)
            if when < self._now:
                raise SimulationError("time went backwards")  # pragma: no cover
            if prio == URGENT:
                self._durgent -= 1
            self._now = when
            self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        self._solo_cb = len(callbacks) == 1
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until=None):
        """Run until the queue drains, ``until`` is reached, or a stop
        event fires.

        Parameters
        ----------
        until : int, Event, or None
            ``None`` runs to queue exhaustion.  An integer runs until
            simulated time reaches that value (events at exactly
            ``until`` do not fire).  An :class:`Event` runs until that
            event is processed and returns its value.
        """
        until_time = None
        if isinstance(until, Event):
            if until.callbacks is None:
                # Already processed: mirror its outcome without running.
                if not until._ok:
                    until.defuse()
                    raise until._value
                return until._value

            def _stop(event):
                if not event._ok:
                    # Defuse exactly once, here: the step loop below
                    # never sees the event again after we raise.
                    event.defuse()
                    raise event._value
                raise StopSimulation(event._value)

            until.callbacks.append(_stop)
        elif until is not None:
            until_time = int(until)
            if until_time < self._now:
                raise ValueError(
                    f"until={until_time} is in the past (now={self._now})"
                )
            if until_time == self._now:
                # Events at exactly ``until`` (including fast-lane
                # entries at the current instant) do not fire.
                return None

        if self._cq is not None:
            return self._run_columnar(until, until_time)

        # The hot loop.  Identical semantics to repeated step() calls,
        # with the dispatch inlined and hot names bound locally.
        heap = self._heap
        lane = self._lane
        # () stands in for the absent nlane on non-turbo tiers: always
        # falsy, so the nlane branch below is never taken.
        nlane = self._nlane if self._nlane is not None else ()
        heappop = heapq.heappop
        resume_cls = list
        processed = 0
        lane_fired = 0
        try:
            while heap or lane or nlane:
                if lane and (
                    not self._durgent
                    or not (
                        heap
                        and heap[0][0] == self._now
                        and heap[0][1] == URGENT
                    )
                ):
                    entry = lane.popleft()
                    processed += 1
                    lane_fired += 1
                    if entry.__class__ is resume_cls:
                        callback = entry[0]
                        if callback is not None:
                            self._solo_cb = True
                            callback(entry[1])
                        continue
                    event = entry
                elif nlane and not (heap and heap[0][0] == self._now):
                    event = nlane.popleft()
                    processed += 1
                    lane_fired += 1
                else:
                    when = heap[0][0]
                    if until_time is not None and when >= until_time:
                        self._now = until_time
                        return None
                    when, prio, _seq, event = heappop(heap)
                    if prio == URGENT:
                        self._durgent -= 1
                    self._now = when
                    processed += 1
                callbacks, event.callbacks = event.callbacks, None
                if len(callbacks) == 1:
                    self._solo_cb = True
                    callbacks[0](event)
                else:
                    self._solo_cb = False
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        finally:
            self.events_processed += processed
            self.lane_hits += lane_fired
        if isinstance(until, Event) and not until.triggered:
            raise DeadlockError(
                "run() target event never fired; model deadlocked"
            )
        if until_time is not None:
            self._now = until_time
        return None

    def _run_columnar(self, until, until_time):
        """The vector-tier hot loop: :meth:`run` with the tuple heap
        replaced by the columnar queue.

        Arbitration is identical to the turbo loop (lane, then nlane,
        then the time-ordered queue).  The extra trick is the
        *streaming drain*: when the queue front is a sorted ready run
        and the lane, nlane, retail heap, and staging buffer are all
        empty, events without callbacks cannot run model code — they
        cannot schedule, resume, interrupt, or stop anything — so a
        consecutive run of them is popped in a tight loop with no
        re-arbitration.  Pure timer floods (design-space sweeps, node
        clocks) spend nearly all their pops there.  Observable
        semantics (``now``, counters, exception propagation, ``until``
        handling) are identical to the generic path.
        """
        from repro.events.columnar import BULK_THRESHOLD

        cq = self._cq
        lane = self._lane
        nlane = self._nlane
        heappop = heapq.heappop
        resume_cls = list
        processed = 0
        lane_fired = 0
        try:
            while lane or nlane or cq._n:
                if lane:
                    if self._durgent:
                        key = cq.peek_key()
                        lane_next = not (
                            key is not None
                            and key[0] == self._now
                            and key[1] == URGENT
                        )
                    else:
                        lane_next = True
                    if lane_next:
                        entry = lane.popleft()
                        processed += 1
                        lane_fired += 1
                        if entry.__class__ is resume_cls:
                            callback = entry[0]
                            if callback is not None:
                                self._solo_cb = True
                                callback(entry[1])
                            continue
                        event = entry
                        callbacks, event.callbacks = event.callbacks, None
                        if len(callbacks) == 1:
                            self._solo_cb = True
                            callbacks[0](event)
                        else:
                            self._solo_cb = False
                            for callback in callbacks:
                                callback(event)
                        if not event._ok and not event._defused:
                            raise event._value
                        continue
                if nlane and cq.peek_time() != self._now:
                    event = nlane.popleft()
                    processed += 1
                    lane_fired += 1
                else:
                    # Columnar pop.  When the staging buffer's minimum
                    # fires next, a *small* staged batch pops straight
                    # out of the staging columns — the retail fast
                    # path: no flush, no tuple, no heap traffic.  This
                    # is where interleaved push/pop workloads (DMA,
                    # collectives) live.  Large batches flush (bulk
                    # sort or retail heap) and arbitrate as before.
                    if cq._needs_flush():
                        if len(cq._sts) < BULK_THRESHOLD:
                            when = cq._smin[0]
                            if until_time is not None and when >= until_time:
                                self._now = until_time
                                return None
                            when, prio, event = cq.pop_staged()
                            if prio == URGENT:
                                self._durgent -= 1
                            self._now = when
                            processed += 1
                            callbacks, event.callbacks = (
                                event.callbacks, None
                            )
                            if len(callbacks) == 1:
                                self._solo_cb = True
                                callbacks[0](event)
                            else:
                                self._solo_cb = False
                                for callback in callbacks:
                                    callback(event)
                            if not event._ok and not event._defused:
                                raise event._value
                            continue
                        cq._flush()
                    hp = cq._hp
                    ri = cq._ri
                    rts = cq._rts
                    nrun = len(rts)
                    use_run = ri < nrun
                    if use_run and hp:
                        head = hp[0]
                        if (head[0], head[1], head[2]) < (
                            rts[ri], cq._rprio[ri], cq._rseq[ri]
                        ):
                            use_run = False
                    if (use_run and not hp and not lane and not nlane
                            and not cq._sts):
                        # Streaming drain (see docstring).  State is
                        # committed in the finally block so an event
                        # exception or an ``until`` return leaves the
                        # queue exactly as per-pop bookkeeping would.
                        rprio = cq._rprio
                        rev = cq._rev
                        event = None
                        if self._durgent == 0 and (
                            until_time is None
                            or rts[nrun - 1] < until_time
                        ):
                            # Lean drain: no URGENT anywhere pending
                            # and the run cannot reach ``until_time``,
                            # so the per-event work is just the pop —
                            # ``now`` advances once, at commit, to the
                            # last drained timestamp (no model code
                            # runs in between to observe it), and
                            # side-table slots release wholesale at
                            # run reset instead of per pop.
                            start = ri
                            try:
                                while ri < nrun:
                                    event = rev[ri]
                                    if event.callbacks:
                                        event = None
                                        break
                                    ri += 1
                                    event.callbacks = None
                                    if (not event._ok
                                            and not event._defused):
                                        raise event._value
                            finally:
                                drained = ri - start
                                if drained:
                                    self._now = rts[ri - 1]
                                cq._ri = ri
                                cq._n -= drained
                                cq.array_pops += drained
                                processed += drained
                                if ri >= nrun:
                                    cq._reset_run()
                        else:
                            drained = 0
                            try:
                                while ri < nrun:
                                    event = rev[ri]
                                    if event.callbacks:
                                        event = None
                                        break
                                    when = rts[ri]
                                    if (until_time is not None
                                            and when >= until_time):
                                        self._now = until_time
                                        return None
                                    rev[ri] = None
                                    ri += 1
                                    drained += 1
                                    event.callbacks = None
                                    if rprio[ri - 1] == URGENT:
                                        self._durgent -= 1
                                    self._now = when
                                    if (not event._ok
                                            and not event._defused):
                                        raise event._value
                            finally:
                                cq._ri = ri
                                cq._n -= drained
                                cq.array_pops += drained
                                processed += drained
                                if ri >= nrun:
                                    cq._reset_run()
                        if event is not None:
                            # Run exhausted; every event was drained
                            # (callback-free) and fully dispatched.
                            continue
                        # The run's head has callbacks: fall through and
                        # pop it on the generic path (``ri`` now indexes
                        # that head; the finally block committed it).
                    if use_run:
                        when = rts[ri]
                        if until_time is not None and when >= until_time:
                            self._now = until_time
                            return None
                        prio = cq._rprio[ri]
                        event = cq._rev[ri]
                        cq._rev[ri] = None
                        cq._ri = ri + 1
                        cq._n -= 1
                        cq.array_pops += 1
                        if cq._ri >= nrun:
                            cq._reset_run()
                    elif hp:
                        when = hp[0][0]
                        if until_time is not None and when >= until_time:
                            self._now = until_time
                            return None
                        when, prio, _seq, event = heappop(hp)
                        cq._n -= 1
                        cq.heap_pops += 1
                    else:  # pragma: no cover - loop guard excludes this
                        raise DeadlockError("event queue empty")
                    if prio == URGENT:
                        self._durgent -= 1
                    self._now = when
                    processed += 1
                callbacks, event.callbacks = event.callbacks, None
                if len(callbacks) == 1:
                    self._solo_cb = True
                    callbacks[0](event)
                else:
                    self._solo_cb = False
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        finally:
            self.events_processed += processed
            self.lane_hits += lane_fired
        if isinstance(until, Event) and not until.triggered:
            raise DeadlockError(
                "run() target event never fired; model deadlocked"
            )
        if until_time is not None:
            self._now = until_time
        return None

    def __repr__(self):
        queued = len(self._heap) + len(self._lane)
        if self._nlane is not None:
            queued += len(self._nlane)
        if self._cq is not None:
            queued += len(self._cq)
        return f"<Engine now={self._now} queued={queued}>"
