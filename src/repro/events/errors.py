"""Exception types raised by the discrete-event simulation kernel."""


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Engine.run` at a stop event."""

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class DeadlockError(SimulationError):
    """Raised by :meth:`Engine.run` when processes remain blocked but the
    event queue is empty — i.e. the model has deadlocked."""
