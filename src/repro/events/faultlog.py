"""Structured fault events.

Every layer that detects or injects a fault — the multi-class
injector, the reliable transport's checksum/ACK machinery, the
parity-checked checkpoint sender, the heartbeat monitor, the recovery
coordinator — reports it here instead of printing or raising ad hoc.
A :class:`FaultLog` is installed on the engine (``engine.fault_log``),
so model code deep in a relay loop can report through
:func:`record_fault` without threading a logger parameter through
every constructor.

The log is the *fault trace* of a run: an ordered list of JSON-able
records ``{"t": <ns>, "kind": <str>, ...detail}``.  The differential
fuzzer and the golden suite compare fault traces across both event
kernels, so records must be deterministic — integer times, sorted
containers, no object reprs.

Record kinds currently emitted (each by exactly one site):

=====================  ==============================================
``parity_injected``    injector planted a latent parity fault
``link_transient``     injector corrupted the next frame on a sublink
``link_stuck``         injector took a sublink down for a window
``node_halt``          injector (or a test) halted a node's CP
``frame_corrupt``      transport dropped a frame failing its checksum
``relay_parity``       parity trap in a relay's store-and-forward
                       buffer (frame NAKed and retried upstream)
``link_give_up``       transport exhausted retries on one hop
``snapshot_parity``    checkpoint sender hit a latent parity fault
``detect``             heartbeat monitor noticed a dead node
``recovered``          coordinator completed restore + remap + resume
=====================  ==============================================
"""


class FaultLog:
    """Ordered, JSON-able record of every fault seen during a run.

    Installing the log binds it to the engine::

        eng = Engine()
        log = FaultLog(eng)       # engine.fault_log is now `log`
    """

    def __init__(self, engine):
        self.engine = engine
        self.records = []
        engine.fault_log = self

    def record(self, kind: str, **info) -> dict:
        """Append one fault record stamped with the current sim time."""
        entry = {"t": int(self.engine.now), "kind": str(kind)}
        for key in sorted(info):
            entry[key] = info[key]
        self.records.append(entry)
        return entry

    def count(self, kind=None) -> int:
        """Number of records, optionally of one kind."""
        if kind is None:
            return len(self.records)
        return sum(1 for r in self.records if r["kind"] == kind)

    def kinds(self) -> dict:
        """``{kind: count}`` over the whole log, sorted by kind."""
        out = {}
        for record in self.records:
            out[record["kind"]] = out.get(record["kind"], 0) + 1
        return dict(sorted(out.items()))

    def as_json(self) -> list:
        """The full trace as a list of plain dicts (already JSON-able)."""
        return [dict(r) for r in self.records]

    def __len__(self):
        return len(self.records)

    def __repr__(self):
        return f"<FaultLog records={len(self.records)}>"


def record_fault(engine, kind: str, **info):
    """Report a fault through ``engine.fault_log`` if one is installed.

    Model code calls this unconditionally; runs that did not install a
    :class:`FaultLog` pay one attribute check and nothing else.
    """
    log = engine.fault_log
    if log is not None:
        return log.record(kind, **info)
    return None
