"""Contended resources.

Hardware models use these to serialise access to shared datapaths: a
memory port, a link wire, the module's system-board connection.  A
:class:`Resource` grants up to ``capacity`` concurrent holds, FIFO
ordered, which is exactly the arbitration the paper's hardware performs
(single-master ports, one transfer per wire at a time).
"""

from collections import deque

from repro.events.engine import Event
from repro.events.errors import SimulationError


class Request(Event):
    """A pending or granted hold on a :class:`Resource`.

    Supports the context-manager protocol so process code can write::

        with port.request() as req:
            yield req
            ... use the port ...
        # released on exit
    """

    __slots__ = ("resource",)

    def __init__(self, resource):
        # Event.__init__ inlined (one Request per arbitration).
        self.engine = resource.engine
        self.callbacks = []
        self._value = Event.PENDING
        self._ok = None
        self._defused = False
        self.resource = resource
        # Uncontended fast path: a non-empty queue implies exhausted
        # capacity (every release drains the queue as far as capacity
        # allows), so an immediate grant never jumps the FIFO.
        if not resource._queue and len(resource._users) < resource.capacity:
            resource._users.add(self)
            resource.grants += 1
            self._ok = True
            self._value = self
            resource.engine._fire_urgent(self)
        else:
            resource._queue.append(self)
            resource._grant()

    def release(self):
        """Give the resource back (idempotent)."""
        self.resource._release(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.release()
        return False


class Resource:
    """A FIFO-arbitrated resource with fixed capacity.

    Parameters
    ----------
    engine : Engine
    capacity : int
        Number of simultaneous holders (1 for a memory port or wire).
    name : str, optional
        For diagnostics.
    """

    def __init__(self, engine, capacity=1, name=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name or "resource"
        self._queue = deque()
        self._users = set()
        #: Cumulative busy statistics for utilisation reporting.
        self.grants = 0

    @property
    def count(self):
        """Number of current holders."""
        return len(self._users)

    @property
    def queued(self):
        """Number of requests waiting for a grant."""
        return len(self._queue)

    def request(self):
        """Ask for a hold; the returned :class:`Request` event fires when
        granted."""
        return Request(self)

    def _grant(self):
        while self._queue and len(self._users) < self.capacity:
            req = self._queue.popleft()
            self._users.add(req)
            self.grants += 1
            req._ok = True
            req._value = req
            self.engine._fire_urgent(req)

    def _release(self, req):
        if req in self._users:
            self._users.discard(req)
            self._grant()
        else:
            # Withdrawing an ungranted request is allowed (e.g. after an
            # interrupt); releasing twice is a no-op.
            try:
                self._queue.remove(req)
            except ValueError:
                pass

    def __repr__(self):
        return (
            f"<Resource {self.name!r} {len(self._users)}/{self.capacity} "
            f"queued={len(self._queue)}>"
        )


class Mutex(Resource):
    """A capacity-1 resource, named for readability at call sites."""

    def __init__(self, engine, name=None):
        super().__init__(engine, capacity=1, name=name or "mutex")


def hold(engine, resource, duration):
    """Process helper: acquire ``resource``, keep it ``duration`` ns,
    release, and return the time the hold began.

    Usage::

        start = yield from hold(engine, port, 400)
    """
    if duration < 0:
        raise SimulationError(f"negative hold duration {duration!r}")
    with resource.request() as req:
        yield req
        start = engine.now
        yield engine.timeout(duration)
    return start
