"""The floating-point subsystem: formats, bit-level arithmetic,
pipeline timing, functional units, and the vector-form micro-sequencer.

Public surface:

* :data:`BINARY32`, :data:`BINARY64`, :func:`format_for` — IEEE formats.
* :mod:`repro.fpu.softfloat` — bit-exact add/sub/mul/compare/convert
  with flush-to-zero (no gradual underflow, per the paper).
* :class:`PipelineTiming` — fill + one-result-per-cycle timing.
* :class:`FloatingAdder`, :class:`FloatingMultiplier` — the units.
* :class:`VectorArithmeticUnit`, :data:`FORMS` — the micro-sequencer.
"""

import numpy as _np

#: Minimum numpy for the vector kernel tier's batched paths (stable
#: argsort/lexsort over int64 columns, consistent integer promotion).
#: Keep in sync with pyproject.toml.
NUMPY_FLOOR = (1, 22)

_np_version = tuple(int(p) for p in _np.__version__.split(".")[:2])
if _np_version < NUMPY_FLOOR:
    raise ImportError(
        f"repro.fpu requires numpy >= {'.'.join(map(str, NUMPY_FLOOR))} "
        f"(found {_np.__version__}): the vector kernel tier's batched "
        "subnormal screens and columnar event sorts depend on stable "
        "sort ordering and integer-promotion rules older releases do "
        "not guarantee.  Upgrade numpy or pin the package per "
        "pyproject.toml."
    )

from repro.fpu.ieee import BINARY32, BINARY64, Format, format_for
from repro.fpu.pipeline import PipelineTiming, reduction_drain_cycles
from repro.fpu.units import FloatingAdder, FloatingMultiplier, FunctionalUnit
from repro.fpu.vector_forms import (
    FORMS,
    VectorArithmeticUnit,
    VectorForm,
    dtype_for,
    flush_subnormals,
    register_form,
)
from repro.fpu.level_order import (
    Expr,
    evaluate_level_order,
    naive_scalar_ns,
    reference_value,
    scalar,
    schedule_levels,
)
from repro.fpu.routines import (
    divide_cost_model,
    vector_divide,
    vector_reciprocal,
    vector_rsqrt,
    vector_sqrt,
)

__all__ = [
    "BINARY32",
    "BINARY64",
    "Expr",
    "FORMS",
    "evaluate_level_order",
    "naive_scalar_ns",
    "reference_value",
    "scalar",
    "schedule_levels",
    "FloatingAdder",
    "FloatingMultiplier",
    "Format",
    "FunctionalUnit",
    "PipelineTiming",
    "VectorArithmeticUnit",
    "VectorForm",
    "divide_cost_model",
    "dtype_for",
    "flush_subnormals",
    "format_for",
    "vector_divide",
    "vector_reciprocal",
    "vector_rsqrt",
    "vector_sqrt",
    "register_form",
    "reduction_drain_cycles",
]
