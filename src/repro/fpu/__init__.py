"""The floating-point subsystem: formats, bit-level arithmetic,
pipeline timing, functional units, and the vector-form micro-sequencer.

Public surface:

* :data:`BINARY32`, :data:`BINARY64`, :func:`format_for` — IEEE formats.
* :mod:`repro.fpu.softfloat` — bit-exact add/sub/mul/compare/convert
  with flush-to-zero (no gradual underflow, per the paper).
* :class:`PipelineTiming` — fill + one-result-per-cycle timing.
* :class:`FloatingAdder`, :class:`FloatingMultiplier` — the units.
* :class:`VectorArithmeticUnit`, :data:`FORMS` — the micro-sequencer.
"""

from repro.fpu.ieee import BINARY32, BINARY64, Format, format_for
from repro.fpu.pipeline import PipelineTiming, reduction_drain_cycles
from repro.fpu.units import FloatingAdder, FloatingMultiplier, FunctionalUnit
from repro.fpu.vector_forms import (
    FORMS,
    VectorArithmeticUnit,
    VectorForm,
    dtype_for,
    flush_subnormals,
    register_form,
)
from repro.fpu.level_order import (
    Expr,
    evaluate_level_order,
    naive_scalar_ns,
    reference_value,
    scalar,
    schedule_levels,
)
from repro.fpu.routines import (
    divide_cost_model,
    vector_divide,
    vector_reciprocal,
    vector_rsqrt,
    vector_sqrt,
)

__all__ = [
    "BINARY32",
    "BINARY64",
    "Expr",
    "FORMS",
    "evaluate_level_order",
    "naive_scalar_ns",
    "reference_value",
    "scalar",
    "schedule_levels",
    "FloatingAdder",
    "FloatingMultiplier",
    "Format",
    "FunctionalUnit",
    "PipelineTiming",
    "VectorArithmeticUnit",
    "VectorForm",
    "divide_cost_model",
    "dtype_for",
    "flush_subnormals",
    "format_for",
    "vector_divide",
    "vector_reciprocal",
    "vector_rsqrt",
    "vector_sqrt",
    "register_form",
    "reduction_drain_cycles",
]
