"""IEEE-754 binary formats as used by the T Series.

The paper: "Floating-point operations are performed using the proposed
IEEE Floating-point standard format; however, gradual underflow is not
supported."  So the node's arithmetic is IEEE-754 binary32/binary64
with round-to-nearest-even, infinities and NaNs — but **flush-to-zero**
in place of subnormals, on both inputs and outputs.

This module defines the two formats and bit-level pack/unpack/classify
helpers.  The arithmetic itself lives in :mod:`repro.fpu.softfloat`.
"""

import math
import struct
from dataclasses import dataclass


@dataclass(frozen=True)
class Format:
    """An IEEE-754 binary interchange format.

    Attributes
    ----------
    name : str
    ebits : int
        Exponent field width.
    mbits : int
        Trailing-significand (mantissa) field width.
    """

    name: str
    ebits: int
    mbits: int

    @property
    def width(self) -> int:
        """Total bits (1 sign + ebits + mbits)."""
        return 1 + self.ebits + self.mbits

    @property
    def bias(self) -> int:
        """Exponent bias (127 / 1023)."""
        return (1 << (self.ebits - 1)) - 1

    @property
    def exp_mask(self) -> int:
        """All-ones exponent field value (Inf/NaN marker)."""
        return (1 << self.ebits) - 1

    @property
    def mant_mask(self) -> int:
        """Mask of the trailing-significand field."""
        return (1 << self.mbits) - 1

    @property
    def sign_bit(self) -> int:
        """Mask of the sign bit."""
        return 1 << (self.ebits + self.mbits)

    @property
    def bits_mask(self) -> int:
        """Mask of the whole encoding."""
        return (1 << self.width) - 1

    @property
    def hidden_bit(self) -> int:
        """The implicit leading 1 of a normal significand."""
        return 1 << self.mbits

    @property
    def min_normal_exp(self) -> int:
        """Smallest unbiased exponent of a normal number (-126 / -1022)."""
        return 1 - self.bias

    @property
    def max_exp(self) -> int:
        """Largest unbiased exponent of a finite number (127 / 1023)."""
        return self.exp_mask - 1 - self.bias

    @property
    def decimal_digits(self) -> float:
        """Decimal digits of precision (the paper quotes ~15 for 64-bit)."""
        return (self.mbits + 1) * math.log10(2)

    # -- canonical encodings -------------------------------------------

    def zero_bits(self, sign: int = 0) -> int:
        """Encoding of ±0."""
        return self.sign_bit if sign else 0

    def inf_bits(self, sign: int = 0) -> int:
        """Encoding of ±Inf."""
        return (self.sign_bit if sign else 0) | (self.exp_mask << self.mbits)

    def nan_bits(self) -> int:
        """The canonical quiet NaN this unit produces."""
        return (self.exp_mask << self.mbits) | (1 << (self.mbits - 1))

    def max_finite_bits(self, sign: int = 0) -> int:
        """Encoding of the largest finite magnitude."""
        return (
            (self.sign_bit if sign else 0)
            | ((self.exp_mask - 1) << self.mbits)
            | self.mant_mask
        )

    def min_normal_bits(self, sign: int = 0) -> int:
        """Encoding of the smallest normal magnitude (the flush threshold)."""
        return (self.sign_bit if sign else 0) | (1 << self.mbits)

    # -- field access ------------------------------------------------

    def sign_of(self, bits: int) -> int:
        """0 for positive encodings, 1 for negative."""
        return (bits >> (self.ebits + self.mbits)) & 1

    def exp_of(self, bits: int) -> int:
        """Biased exponent field."""
        return (bits >> self.mbits) & self.exp_mask

    def mant_of(self, bits: int) -> int:
        """Trailing-significand field."""
        return bits & self.mant_mask

    # -- classification -------------------------------------------------

    def is_nan(self, bits: int) -> bool:
        return self.exp_of(bits) == self.exp_mask and self.mant_of(bits) != 0

    def is_inf(self, bits: int) -> bool:
        return self.exp_of(bits) == self.exp_mask and self.mant_of(bits) == 0

    def is_zero(self, bits: int) -> bool:
        """True for ±0 — and, under flush-to-zero, for subnormal
        encodings too (they read as zero on input)."""
        return self.exp_of(bits) == 0

    def is_subnormal_encoding(self, bits: int) -> bool:
        """True for encodings IEEE would call subnormal (the unit treats
        them as zero)."""
        return self.exp_of(bits) == 0 and self.mant_of(bits) != 0

    def is_finite(self, bits: int) -> bool:
        return self.exp_of(bits) != self.exp_mask

    def is_normal(self, bits: int) -> bool:
        return 0 < self.exp_of(bits) < self.exp_mask

    # -- conversion to/from Python floats -----------------------------

    def _struct_codes(self):
        if self.width == 32:
            return "<I", "<f"
        if self.width == 64:
            return "<Q", "<d"
        raise ValueError(f"no host encoding for {self.width}-bit format")

    def from_float(self, value: float) -> int:
        """Encode a Python float (rounding to the format, flushing
        subnormal results to zero)."""
        icode, fcode = self._struct_codes()
        bits = struct.unpack(icode, struct.pack(fcode, value))[0]
        if self.is_subnormal_encoding(bits):
            bits = self.zero_bits(self.sign_of(bits))
        return bits

    def to_float(self, bits: int) -> float:
        """Decode to a Python float (subnormal encodings read as ±0)."""
        if bits != (bits & self.bits_mask):
            raise ValueError(f"{bits:#x} out of range for {self.name}")
        if self.is_subnormal_encoding(bits):
            bits = self.zero_bits(self.sign_of(bits))
        icode, fcode = self._struct_codes()
        return struct.unpack(fcode, struct.pack(icode, bits))[0]


#: 32-bit single precision (8-bit exponent, 23-bit mantissa).
BINARY32 = Format("binary32", ebits=8, mbits=23)

#: 64-bit double precision: the paper quotes the 11-bit exponent,
#: 53 significant bits and ~15 decimal digits — all properties of this
#: format (see tests).
BINARY64 = Format("binary64", ebits=11, mbits=52)


def format_for(precision: int) -> Format:
    """Map an element width in bits (32 or 64) to its Format."""
    if precision == 32:
        return BINARY32
    if precision == 64:
        return BINARY64
    raise ValueError(f"unsupported precision {precision!r} (use 32 or 64)")
