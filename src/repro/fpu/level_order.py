"""Level-order evaluation of scalar expression batches.

Paper §II: "Scalar operations can be efficiently performed by grouping
like operations for level-order evaluation."  The idea: a batch of
independent scalar expressions is levelled (topologically, by depth),
and each level's like operations are packed into one *vector* form, so
scalars flow through the pipes at one result per cycle instead of one
result per pipeline-latency.

:class:`ScalarBatch` builds expression DAGs from overloaded Python
operators; :func:`evaluate_level_order` schedules and executes them on
a node's vector unit, returning results plus the schedule (for the
timing comparison against naive scalar issue).
"""

import itertools

import numpy as np

_ids = itertools.count()


class Expr:
    """A node of a scalar expression DAG."""

    __slots__ = ("op", "args", "value", "uid")

    def __init__(self, op, args=(), value=None):
        self.op = op            # 'const' | 'add' | 'sub' | 'mul'
        self.args = tuple(args)
        self.value = value
        self.uid = next(_ids)

    def __add__(self, other):
        return Expr("add", (self, _lift(other)))

    def __radd__(self, other):
        return Expr("add", (_lift(other), self))

    def __sub__(self, other):
        return Expr("sub", (self, _lift(other)))

    def __rsub__(self, other):
        return Expr("sub", (_lift(other), self))

    def __mul__(self, other):
        return Expr("mul", (self, _lift(other)))

    def __rmul__(self, other):
        return Expr("mul", (_lift(other), self))

    def __neg__(self):
        return Expr("sub", (_lift(0.0), self))

    @property
    def depth(self) -> int:
        """Level: constants at 0, an op one past its deepest input."""
        if self.op == "const":
            return 0
        return 1 + max(a.depth for a in self.args)

    def __repr__(self):
        if self.op == "const":
            return f"Expr({self.value})"
        return f"Expr({self.op}, depth={self.depth})"


def _lift(value):
    if isinstance(value, Expr):
        return value
    return Expr("const", value=float(value))


def scalar(value) -> Expr:
    """A leaf scalar."""
    return _lift(value)


#: Which vector form executes each op-level.
_FORM_OF = {"add": "VADD", "sub": "VSUB", "mul": "VMUL"}


def _collect(roots):
    """All DAG nodes reachable from the roots, once each."""
    seen = {}
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node.uid in seen:
            continue
        seen[node.uid] = node
        stack.extend(node.args)
    return list(seen.values())


def schedule_levels(roots):
    """Group the DAG's operations by (depth, op).

    Returns an ordered list of (depth, op, [nodes]) — each entry is one
    vector-form issue.  Like operations at the same depth share an
    issue (the paper's "grouping like operations").
    """
    nodes = _collect(roots)
    groups = {}
    for node in nodes:
        if node.op == "const":
            continue
        groups.setdefault((node.depth, node.op), []).append(node)
    return [
        (depth, op, sorted(members, key=lambda n: n.uid))
        for (depth, op), members in sorted(groups.items())
    ]


def evaluate_level_order(node, roots, precision=64):
    """Process: evaluate a batch of scalar expressions level by level.

    Each (depth, op) group becomes one vector-form execution whose
    element i is group member i.  Returns (values, issues) where
    ``values`` lists each root's result and ``issues`` counts the
    vector forms executed.
    """
    roots = [_lift(r) for r in roots]
    levels = schedule_levels(roots)
    results = {}

    def value_of(e):
        if e.op == "const":
            return e.value
        return results[e.uid]

    issues = 0
    for _depth, op, members in levels:
        lhs = np.array([value_of(m.args[0]) for m in members])
        rhs = np.array([value_of(m.args[1]) for m in members])
        out = yield from node.vau.execute(
            _FORM_OF[op], [lhs, rhs], precision=precision
        )
        for member, value in zip(members, np.asarray(out)):
            results[member.uid] = float(value)
        issues += 1
    values = [value_of(r) for r in roots]
    return values, issues


def naive_scalar_ns(roots, specs, precision=64) -> int:
    """Time model for issuing every operation as an unpipelined scalar:
    each op pays a full pipeline latency."""
    ops = [n for n in _collect([_lift(r) for r in roots])
           if n.op != "const"]
    mul_stages = (specs.multiplier_stages_64 if precision == 64
                  else specs.multiplier_stages_32)
    total = 0
    for op_node in ops:
        stages = mul_stages if op_node.op == "mul" else specs.adder_stages
        total += stages * specs.cycle_ns
    return total


def reference_value(expr) -> float:
    """Evaluate an expression DAG in plain Python (ground truth)."""
    expr = _lift(expr)
    if expr.op == "const":
        return expr.value
    a = reference_value(expr.args[0])
    b = reference_value(expr.args[1])
    return {"add": a + b, "sub": a - b, "mul": a * b}[expr.op]
