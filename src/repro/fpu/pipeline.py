"""Pipeline timing arithmetic for the floating-point functional units.

The adder is a six-stage pipeline; the multiplier is five-stage in
32-bit mode and seven-stage in 64-bit mode (paper §II "Arithmetic").
Each unit accepts one operand pair per 125 ns cycle and delivers one
result per cycle once full, so an n-element vector operation costs

    (fill + n - 1) cycles,

where ``fill`` is the pipeline depth of the unit — or of the *chain*
of units for compound forms such as SAXPY, where the multiplier's
output feeds the adder's input directly.
"""

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np


@dataclass(frozen=True)
class PipelineTiming:
    """Timing model of one pipelined unit (or a chain of units)."""

    #: Pipeline depth in cycles (operand in → result out).
    stages: int
    #: Cycle time in nanoseconds.
    cycle_ns: int

    def __post_init__(self):
        if self.stages < 1:
            raise ValueError("pipeline needs at least one stage")
        if self.cycle_ns < 1:
            raise ValueError("cycle time must be positive")

    @property
    def latency_ns(self) -> int:
        """Scalar-operation latency: one trip through the pipe."""
        return self.stages * self.cycle_ns

    @property
    def throughput_per_s(self) -> float:
        """Asymptotic results per second (one per cycle)."""
        return 1e9 / self.cycle_ns

    def vector_ns(self, n: int) -> int:
        """Time to produce n results: fill plus one result per cycle."""
        if n < 0:
            raise ValueError("negative vector length")
        if n == 0:
            return 0
        return (self.stages + n - 1) * self.cycle_ns

    def chain(self, other: "PipelineTiming") -> "PipelineTiming":
        """Compose two units output-to-input (e.g. multiplier → adder).

        The chain's depth is the sum of depths; throughput is still one
        result per cycle.  Cycle times must match (they share the
        125 ns vector clock).
        """
        if other.cycle_ns != self.cycle_ns:
            raise ValueError("chained pipelines must share a clock")
        return PipelineTiming(self.stages + other.stages, self.cycle_ns)

    def efficiency(self, n: int) -> float:
        """Fraction of peak achieved on an n-element vector
        (n / (fill + n - 1)); shows why long vectors matter."""
        if n <= 0:
            return 0.0
        return n / (self.stages + n - 1)

    def vector_ns_array(self, lengths) -> list:
        """Vectorized :meth:`vector_ns` over a batch of lengths."""
        return vector_ns_array(self.stages - 1, lengths, self.cycle_ns)


def vector_ns_array(base_cycles, lengths, cycle_ns: int) -> list:
    """Batched evaluation of the affine pipeline cost model.

    ``base_cycles`` is the per-op fill term (chain depth − 1, plus any
    reduction drain) — a scalar or an array parallel to ``lengths``.
    Returns ``(base + n) * cycle_ns`` per op as a list of Python ints,
    with 0 where ``n == 0``: exactly what per-op
    :meth:`PipelineTiming.vector_ns` calls would produce, in one numpy
    pass.  This is the vector tier's "precomputed per-element timing
    array" — the micro-sequencer prices a whole queued chain of forms
    with a single affine evaluation.
    """
    base = np.asarray(base_cycles, dtype=np.int64)
    n = np.asarray(lengths, dtype=np.int64)
    if (n < 0).any():
        raise ValueError("negative vector length")
    return np.where(n > 0, (base + n) * int(cycle_ns), 0).tolist()


@lru_cache(maxsize=None)
def reduction_drain_cycles(stages: int) -> int:
    """Extra cycles to collapse a feedback accumulation.

    Feeding the adder's output back to its input (paper: "outputs from
    the functional units can be fed directly back as inputs to perform
    operations such as dot products and sums") leaves ``stages``
    partial sums in flight.  Collapsing them pairwise takes
    ceil(log2(stages)) passes, each a pipeline traversal.  This is an
    O(1) end-effect; it does not change asymptotic rates.
    """
    if stages < 1:
        raise ValueError("pipeline needs at least one stage")
    if stages == 1:
        return 0
    return math.ceil(math.log2(stages)) * stages
