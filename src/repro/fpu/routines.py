"""Math routines built from vector forms: divide, sqrt, reciprocal.

The T Series node has a pipelined adder and multiplier — *no divide or
square-root unit*.  FPS shipped these as library routines composed of
vector forms (Newton–Raphson on the multiplier), and so do we: each
routine below is a generator that issues real form executions on a
:class:`~repro.fpu.vector_forms.VectorArithmeticUnit`, so results
carry the machine's numerics (64-bit, flush-to-zero) and the timing
reflects the true multi-pass cost of division on this hardware.

Seeding uses the exponent-halving/negation bit trick the era's
libraries used (here: a NumPy-computed initial guess accurate to a few
bits, refined by NR iterations — convergence is quadratic, so four
iterations reach full double precision from a 4-bit seed).
"""

import numpy as np

#: Newton–Raphson iterations for full binary64 accuracy from the seed.
#: The reciprocal seed is only good to a factor of two (relative error
#: up to 0.5), and NR squares the error each pass: six passes reach
#: 2^-64.  The rsqrt magic-constant seed starts at ~3% and needs five.
RECIPROCAL_ITERATIONS = 6
RSQRT_ITERATIONS = 5


def _crude_reciprocal_seed(x):
    """A few-bit 1/x estimate: flip the exponent about the bias.

    Bit-level: seed = 2^(−e) for x ≈ m·2^e — within a factor of 2 of
    the truth, which NR then squares away.
    """
    x = np.asarray(x, dtype=np.float64)
    bits = x.view(np.uint64)
    exponent = ((bits >> 52) & 0x7FF).astype(np.int64)
    seed_exp = (2 * 1023 - exponent - 1).astype(np.uint64)
    seed_bits = (bits & (np.uint64(1) << np.uint64(63))) | (
        seed_exp << np.uint64(52)
    )
    return seed_bits.view(np.float64)


def _crude_rsqrt_seed(x):
    """A few-bit 1/sqrt(x) estimate by exponent halving."""
    x = np.asarray(x, dtype=np.float64)
    bits = x.view(np.uint64)
    # The classic magic-constant trick, double-precision flavour.
    seed_bits = np.uint64(0x5FE6EB50C7B537A9) - (bits >> np.uint64(1))
    return seed_bits.view(np.float64)


def vector_reciprocal(vau, x, iterations=RECIPROCAL_ITERATIONS):
    """Process: elementwise 1/x via Newton–Raphson.

    Iteration: y ← y·(2 − x·y), two multiplies and one subtract per
    pass, all as vector forms.  Inputs must be nonzero and finite.
    """
    x = np.asarray(x, dtype=np.float64)
    if not np.all(np.isfinite(x)) or np.any(x == 0):
        raise ValueError("reciprocal needs finite, nonzero inputs")
    y = _crude_reciprocal_seed(x)
    two = np.full_like(x, 2.0)
    for _ in range(iterations):
        xy = yield from vau.execute("VMUL", [x, y])
        correction = yield from vau.execute("VSUB", [two, xy])
        y = yield from vau.execute("VMUL", [y, correction])
    return np.asarray(y)


def vector_divide(vau, numerator, denominator,
                  iterations=RECIPROCAL_ITERATIONS):
    """Process: elementwise a/b = a·(1/b) via the reciprocal routine."""
    numerator = np.asarray(numerator, dtype=np.float64)
    recip = yield from vector_reciprocal(vau, denominator, iterations)
    result = yield from vau.execute("VMUL", [numerator, recip])
    return np.asarray(result)


def vector_rsqrt(vau, x, iterations=RSQRT_ITERATIONS):
    """Process: elementwise 1/sqrt(x) via Newton–Raphson.

    Iteration: y ← y·(1.5 − 0.5·x·y²) — three multiplies, one scalar
    multiply and one subtract per pass.
    """
    x = np.asarray(x, dtype=np.float64)
    if np.any(x <= 0) or not np.all(np.isfinite(x)):
        raise ValueError("rsqrt needs positive, finite inputs")
    y = _crude_rsqrt_seed(x)
    three_halves = np.full_like(x, 1.5)
    for _ in range(iterations):
        yy = yield from vau.execute("VMUL", [y, y])
        xyy = yield from vau.execute("VMUL", [x, yy])
        half_xyy = yield from vau.execute("VSMUL", [xyy], scalars=(0.5,))
        corr = yield from vau.execute("VSUB", [three_halves, half_xyy])
        y = yield from vau.execute("VMUL", [y, corr])
    return np.asarray(y)


def vector_sqrt(vau, x, iterations=RSQRT_ITERATIONS):
    """Process: elementwise sqrt(x) = x·rsqrt(x) (exact zeros kept)."""
    x = np.asarray(x, dtype=np.float64)
    if np.any(x < 0):
        raise ValueError("sqrt needs non-negative inputs")
    nonzero = x.copy()
    nonzero[nonzero == 0] = 1.0       # avoid the rsqrt pole
    rsqrt = yield from vector_rsqrt(vau, nonzero, iterations)
    result = yield from vau.execute("VMUL", [x, rsqrt])
    out = np.asarray(result).copy()
    out[x == 0] = 0.0
    return out


def divide_cost_model(n, specs, iterations=RECIPROCAL_ITERATIONS):
    """Predicted ns for an n-element vector divide.

    3 forms per NR pass plus the final multiply — each a pipeline
    fill + n elements; shows why division is ~16 arithmetic passes on
    this machine.
    """
    mul_fill = specs.multiplier_stages_64
    add_fill = specs.adder_stages
    per_mul = (mul_fill + n - 1) * specs.cycle_ns
    per_add = (add_fill + n - 1) * specs.cycle_ns
    return iterations * (2 * per_mul + per_add) + per_mul
