"""Bit-level floating-point arithmetic with flush-to-zero.

This is the numerics of the T Series adder and multiplier, implemented
from the bits up: unpack, align/multiply in integer arithmetic with
guard/round/sticky bits, round to nearest-even, and repack.  Gradual
underflow is not supported (paper §II "Arithmetic"): results whose
magnitude falls below the smallest normal number are flushed to zero,
and subnormal *inputs* read as zero.

All functions take and return integer encodings (``int`` bit patterns)
plus a :class:`~repro.fpu.ieee.Format`.  They are deliberately scalar
and exact; the fast vectorised path used by the machine model lives in
:mod:`repro.fpu.vector_forms` and is validated against this module.
"""

from repro.fpu.ieee import BINARY32, BINARY64, Format

#: Guard/round/sticky bits carried through intermediate computation.
GRS_BITS = 3


def _flush_input(bits: int, fmt: Format) -> int:
    """Apply flush-to-zero to an operand (subnormal encodings → ±0)."""
    if fmt.is_subnormal_encoding(bits):
        return fmt.zero_bits(fmt.sign_of(bits))
    return bits


def _unpack(bits: int, fmt: Format):
    """Split a (flushed) finite nonzero encoding into
    (sign, biased exponent, significand-with-hidden-bit)."""
    return (
        fmt.sign_of(bits),
        fmt.exp_of(bits),
        fmt.mant_of(bits) | fmt.hidden_bit,
    )


def round_to_format(sign: int, sig: int, pow2: int, fmt: Format) -> int:
    """Round ``(-1)**sign * sig * 2**pow2`` into ``fmt``.

    Round-to-nearest-even, as if the exponent range were unbounded,
    then: overflow → ±Inf; below the minimum normal → ±0 (flush).
    ``sig`` may have any bit length; ``sig == 0`` encodes a signed zero.

    This single routine is the rounding step of add, multiply, and the
    conversions, which keeps their numerics mutually consistent.
    """
    if sig == 0:
        return fmt.zero_bits(sign)
    target = fmt.mbits + 1 + GRS_BITS
    nbits = sig.bit_length()
    if nbits > target:
        shift = nbits - target
        sticky = 1 if sig & ((1 << shift) - 1) else 0
        sig = (sig >> shift) | sticky
        pow2 += shift
    elif nbits < target:
        sig <<= target - nbits
        pow2 -= target - nbits
    # sig now has exactly `target` bits; its MSB is the hidden bit, so
    # the value is 1.xxx * 2**e with:
    e_biased = pow2 + target - 1 + fmt.bias

    frac = sig & ((1 << GRS_BITS) - 1)
    sig >>= GRS_BITS
    half = 1 << (GRS_BITS - 1)
    if frac > half or (frac == half and (sig & 1)):
        sig += 1
        if sig >> (fmt.mbits + 1):
            sig >>= 1
            e_biased += 1

    if e_biased >= fmt.exp_mask:
        return fmt.inf_bits(sign)
    if e_biased < 1:
        return fmt.zero_bits(sign)  # flush-to-zero: no gradual underflow
    sign_field = fmt.sign_bit if sign else 0
    return sign_field | (e_biased << fmt.mbits) | (sig & fmt.mant_mask)


def fp_add(a: int, b: int, fmt: Format) -> int:
    """Floating add: ``a + b`` in ``fmt`` with RNE and flush-to-zero."""
    if fmt.is_nan(a) or fmt.is_nan(b):
        return fmt.nan_bits()
    a = _flush_input(a, fmt)
    b = _flush_input(b, fmt)
    sa, sb = fmt.sign_of(a), fmt.sign_of(b)
    if fmt.is_inf(a) or fmt.is_inf(b):
        if fmt.is_inf(a) and fmt.is_inf(b):
            return fmt.inf_bits(sa) if sa == sb else fmt.nan_bits()
        return fmt.inf_bits(sa) if fmt.is_inf(a) else fmt.inf_bits(sb)
    if fmt.is_zero(a) and fmt.is_zero(b):
        # RNE: -0 + -0 = -0; all other sign pairs give +0.
        return fmt.zero_bits(sa & sb)
    if fmt.is_zero(a):
        return b
    if fmt.is_zero(b):
        return a

    ea_, eb_ = fmt.exp_of(a), fmt.exp_of(b)
    _, ea, ma = _unpack(a, fmt)
    _, eb, mb = _unpack(b, fmt)
    ma <<= GRS_BITS
    mb <<= GRS_BITS
    # Align the smaller exponent to the larger, keeping a sticky bit.
    if ea < eb:
        sa, sb = sb, sa
        ea, eb = eb, ea
        ma, mb = mb, ma
    d = ea - eb
    if d:
        if d >= mb.bit_length() + 1:
            mb = 1  # pure sticky
        else:
            sticky = 1 if mb & ((1 << d) - 1) else 0
            mb = (mb >> d) | sticky
    # value scale: sig * 2**(ea - bias - mbits - GRS)
    pow2 = ea - fmt.bias - fmt.mbits - GRS_BITS
    if sa == sb:
        return round_to_format(sa, ma + mb, pow2, fmt)
    if ma > mb:
        return round_to_format(sa, ma - mb, pow2, fmt)
    if mb > ma:
        return round_to_format(sb, mb - ma, pow2, fmt)
    return fmt.zero_bits(0)  # exact cancellation → +0 under RNE


def fp_neg(a: int, fmt: Format) -> int:
    """Sign flip (NaN stays NaN; this is a bit operation in hardware)."""
    if fmt.is_nan(a):
        return fmt.nan_bits()
    return a ^ fmt.sign_bit


def fp_abs(a: int, fmt: Format) -> int:
    """Clear the sign bit."""
    if fmt.is_nan(a):
        return fmt.nan_bits()
    return a & ~fmt.sign_bit


def fp_sub(a: int, b: int, fmt: Format) -> int:
    """Floating subtract: ``a - b``."""
    if fmt.is_nan(b):
        return fmt.nan_bits()
    return fp_add(a, fp_neg(b, fmt), fmt)


def fp_mul(a: int, b: int, fmt: Format) -> int:
    """Floating multiply: ``a * b`` in ``fmt`` with RNE and FTZ."""
    if fmt.is_nan(a) or fmt.is_nan(b):
        return fmt.nan_bits()
    a = _flush_input(a, fmt)
    b = _flush_input(b, fmt)
    sign = fmt.sign_of(a) ^ fmt.sign_of(b)
    if fmt.is_inf(a) or fmt.is_inf(b):
        if fmt.is_zero(a) or fmt.is_zero(b):
            return fmt.nan_bits()  # inf * 0
        return fmt.inf_bits(sign)
    if fmt.is_zero(a) or fmt.is_zero(b):
        return fmt.zero_bits(sign)
    _, ea, ma = _unpack(a, fmt)
    _, eb, mb = _unpack(b, fmt)
    product = ma * mb  # 2*(mbits+1)-bit product
    # value = product * 2**(ea + eb - 2*bias - 2*mbits)
    pow2 = ea + eb - 2 * fmt.bias - 2 * fmt.mbits
    return round_to_format(sign, product, pow2, fmt)


#: Comparison outcome for unordered operands (NaN involved).
UNORDERED = 2


def fp_compare(a: int, b: int, fmt: Format) -> int:
    """Compare: -1 (a<b), 0 (equal), 1 (a>b), or UNORDERED (NaN).

    ±0 compare equal; subnormal encodings compare as zero (FTZ).
    """
    if fmt.is_nan(a) or fmt.is_nan(b):
        return UNORDERED
    a = _flush_input(a, fmt)
    b = _flush_input(b, fmt)
    if fmt.is_zero(a) and fmt.is_zero(b):
        return 0
    # Order by sign, then by magnitude (encodings order monotonically
    # within a sign under IEEE-754).
    sa, sb = fmt.sign_of(a), fmt.sign_of(b)
    if sa != sb:
        return -1 if sa else 1
    mag_a, mag_b = a & ~fmt.sign_bit, b & ~fmt.sign_bit
    if mag_a == mag_b:
        return 0
    if sa:
        return -1 if mag_a > mag_b else 1
    return 1 if mag_a > mag_b else -1


def fp_min(a: int, b: int, fmt: Format) -> int:
    """Smaller operand (NaN-propagating)."""
    c = fp_compare(a, b, fmt)
    if c == UNORDERED:
        return fmt.nan_bits()
    return a if c <= 0 else b


def fp_max(a: int, b: int, fmt: Format) -> int:
    """Larger operand (NaN-propagating)."""
    c = fp_compare(a, b, fmt)
    if c == UNORDERED:
        return fmt.nan_bits()
    return a if c >= 0 else b


def fp_convert(bits: int, src: Format, dst: Format) -> int:
    """Format conversion (the adder's data-conversion op).

    Widening is exact for normal values; narrowing rounds RNE and
    flushes as usual.
    """
    if src.is_nan(bits):
        return dst.nan_bits()
    bits = _flush_input(bits, src)
    sign = src.sign_of(bits)
    if src.is_inf(bits):
        return dst.inf_bits(sign)
    if src.is_zero(bits):
        return dst.zero_bits(sign)
    _, e, m = _unpack(bits, src)
    pow2 = e - src.bias - src.mbits
    return round_to_format(sign, m, pow2, dst)


def fp_from_int(value: int, fmt: Format) -> int:
    """Convert a Python/CP integer to floating point (RNE)."""
    if value == 0:
        return fmt.zero_bits(0)
    sign = 1 if value < 0 else 0
    return round_to_format(sign, abs(value), 0, fmt)


def fp_to_int(bits: int, fmt: Format) -> int:
    """Convert to integer, truncating toward zero.

    NaN converts to 0 and infinities saturate to ±2**31-ish extremes —
    the CP sees a 32-bit integer, so we saturate at its range.
    """
    lo, hi = -(1 << 31), (1 << 31) - 1
    if fmt.is_nan(bits):
        return 0
    bits = _flush_input(bits, fmt)
    sign = fmt.sign_of(bits)
    if fmt.is_inf(bits):
        return lo if sign else hi
    if fmt.is_zero(bits):
        return 0
    _, e, m = _unpack(bits, fmt)
    shift = e - fmt.bias - fmt.mbits
    if shift >= 0:
        mag = m << shift
    else:
        mag = m >> -shift if -shift < m.bit_length() + 1 else 0
    mag = -mag if sign else mag
    return max(lo, min(hi, mag))


# -- convenience wrappers over Python floats ----------------------------

def add64(x: float, y: float) -> float:
    """64-bit T Series add on Python floats (useful in tests)."""
    f = BINARY64
    return f.to_float(fp_add(f.from_float(x), f.from_float(y), f))


def mul64(x: float, y: float) -> float:
    """64-bit T Series multiply on Python floats."""
    f = BINARY64
    return f.to_float(fp_mul(f.from_float(x), f.from_float(y), f))


def add32(x: float, y: float) -> float:
    """32-bit T Series add on Python floats."""
    f = BINARY32
    return f.to_float(fp_add(f.from_float(x), f.from_float(y), f))


def mul32(x: float, y: float) -> float:
    """32-bit T Series multiply on Python floats."""
    f = BINARY32
    return f.to_float(fp_mul(f.from_float(x), f.from_float(y), f))
