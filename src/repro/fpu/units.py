"""The floating-point functional units as simulation components.

:class:`FloatingAdder` and :class:`FloatingMultiplier` wrap the
bit-level arithmetic of :mod:`repro.fpu.softfloat` in the pipeline
timing of :mod:`repro.fpu.pipeline` and in an engine
:class:`~repro.events.Resource` so concurrent issue serialises the way
the hardware would.  The units run **in parallel with each other and
with the control processor**; only the vector-form micro-sequencer
(:mod:`repro.fpu.vector_forms`) coordinates them.
"""

from repro.events import Mutex
from repro.fpu import softfloat
from repro.fpu.ieee import format_for
from repro.fpu.pipeline import PipelineTiming


class FunctionalUnit:
    """Common machinery: busy arbitration, utilisation counters."""

    def __init__(self, engine, name, stages_32, stages_64, cycle_ns):
        self.engine = engine
        self.name = name
        self.cycle_ns = cycle_ns
        self._timing = {
            32: PipelineTiming(stages_32, cycle_ns),
            64: PipelineTiming(stages_64, cycle_ns),
        }
        # Memoized pipeline depths: precision → stages.  ``stages()``
        # sits on the per-vector-form timing path, so it must not pay
        # for a PipelineTiming lookup plus attribute hops every call.
        self._stages = {32: stages_32, 64: stages_64}
        self.busy = Mutex(engine, name=f"{name}-issue")
        #: Total results produced (for measured-MFLOPS accounting).
        self.results = 0
        #: Total ns the unit spent streaming results.
        self.busy_ns = 0

    def timing(self, precision: int) -> PipelineTiming:
        """Pipeline timing for 32- or 64-bit mode."""
        try:
            return self._timing[precision]
        except KeyError:
            raise ValueError(f"unsupported precision {precision!r}") from None

    def stages(self, precision: int) -> int:
        """Pipeline depth in the given mode."""
        try:
            return self._stages[precision]
        except KeyError:
            raise ValueError(f"unsupported precision {precision!r}") from None

    def credit(self, n: int, duration_ns: int) -> None:
        """Apply the utilisation counters of an n-element streamed op
        whose time was modelled elsewhere.

        The vector-form micro-sequencer's chain path times a whole
        queued chain with one timeout and then credits each unit
        per-op through here — the counter totals are exactly what the
        per-op execute path would have accumulated.
        """
        self.results += n
        self.busy_ns += duration_ns

    def occupy(self, n: int, precision: int):
        """Process: hold the unit for an n-element vector operation.

        Returns the simulated duration.  Numeric results are computed
        by the caller (scalar path) or the micro-sequencer (vector
        path); this models time and contention only.
        """
        duration = self.timing(precision).vector_ns(n)
        with self.busy.request() as req:
            yield req
            yield self.engine.timeout(duration)
            self.results += n
            self.busy_ns += duration
        return duration

    def utilization(self) -> float:
        """Busy fraction of elapsed simulated time."""
        if self.engine.now == 0:
            return 0.0
        return self.busy_ns / self.engine.now

    def __repr__(self):
        return f"<{type(self).__name__} {self.name!r} results={self.results}>"


class FloatingAdder(FunctionalUnit):
    """Six-stage pipelined adder.

    Performs addition/subtraction in both widths, comparisons, and data
    conversions (paper §II).  Scalar bit-level entry points are exposed
    for the CP and for numerics tests.
    """

    def __init__(self, engine, specs):
        super().__init__(
            engine,
            "fadd",
            stages_32=specs.adder_stages,
            stages_64=specs.adder_stages,
            cycle_ns=specs.cycle_ns,
        )

    def add(self, a, b, precision):
        """Bit-level scalar a + b."""
        return softfloat.fp_add(a, b, format_for(precision))

    def sub(self, a, b, precision):
        """Bit-level scalar a - b."""
        return softfloat.fp_sub(a, b, format_for(precision))

    def compare(self, a, b, precision):
        """Scalar compare: -1/0/1/UNORDERED."""
        return softfloat.fp_compare(a, b, format_for(precision))

    def convert(self, bits, src_precision, dst_precision):
        """Width conversion (32↔64)."""
        return softfloat.fp_convert(
            bits, format_for(src_precision), format_for(dst_precision)
        )


class FloatingMultiplier(FunctionalUnit):
    """Five-stage (32-bit) / seven-stage (64-bit) pipelined multiplier."""

    def __init__(self, engine, specs):
        super().__init__(
            engine,
            "fmul",
            stages_32=specs.multiplier_stages_32,
            stages_64=specs.multiplier_stages_64,
            cycle_ns=specs.cycle_ns,
        )

    def mul(self, a, b, precision):
        """Bit-level scalar a * b."""
        return softfloat.fp_mul(a, b, format_for(precision))
