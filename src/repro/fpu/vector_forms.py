"""The vector-form micro-sequencer.

Paper §II: "The arithmetic functional units are supervised by a
preprogrammed micro-sequencer that implements a collection of vector
arithmetic operations referred to as *vector forms*.  The programmer
only needs to describe the input and output vectors and the vector
form desired."

Behaviourally a form maps input vectors (and scalars held in the
functional units' input registers) to an output vector or scalar;
timing-wise it streams one element per 125 ns cycle through a chain of
the adder and/or multiplier pipelines.  The micro-sequencer runs one
form at a time, **in parallel with the control processor**, and
signals completion (the hardware raises an interrupt; here the
returned event fires).

Numerics: the fast path computes with NumPy in the target width and
flushes subnormal results to zero; it is validated element-by-element
against the bit-exact :mod:`repro.fpu.softfloat` in the test suite.
Reductions (DOT, SUM) accumulate in pipeline-feedback order on the real
machine; we compute them with NumPy's summation and document the
reassociation (the paper makes no accuracy claim for reductions).
"""

import warnings
from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

# The arithmetic unit has no IEEE traps: overflow wraps to inf and
# invalid operations produce NaN silently (the paper's hardware raises
# no exceptions).  Float RuntimeWarnings attributed to this module's
# ufunc calls are therefore meaningless; silencing them here lets the
# optimized kernels run form computations without paying an errstate
# context per call (the reference kernel keeps the original guard).
warnings.filterwarnings(
    "ignore", category=RuntimeWarning,
    module=r"repro\.fpu\.vector_forms",
)

from repro.events import Mutex
from repro.events.engine import slow_kernel_requested, vector_kernel_requested
from repro.fpu.pipeline import reduction_drain_cycles, vector_ns_array
from repro.fpu.units import FloatingAdder, FloatingMultiplier


def dtype_for(precision: int):
    """NumPy dtype for an element width in bits."""
    if precision == 32:
        return np.float32
    if precision == 64:
        return np.float64
    raise ValueError(f"unsupported precision {precision!r}")


#: Smallest normal magnitude per dtype (precomputed: np.finfo is not
#: free and this sits on the per-vector-form hot path).
_TINY = {
    np.dtype(np.float32): np.finfo(np.float32).tiny,
    np.dtype(np.float64): np.finfo(np.float64).tiny,
}

#: Same thresholds keyed by element width — the execute hot path knows
#: the precision already, and an int key hashes faster than a dtype.
_TINY_BITS = {32: _TINY[np.dtype(np.float32)],
              64: _TINY[np.dtype(np.float64)]}


def flush_subnormals(array: np.ndarray) -> np.ndarray:
    """Flush subnormal values to (sign-preserving) zero.

    This is the unit's gradual-underflow-not-supported behaviour applied
    to a whole vector at once.  Vectors with no subnormals — the
    overwhelmingly common case — are returned as-is, without a copy.
    ``|x| < tiny`` is False for NaN and infinities, so the mask needs
    neither an ``isfinite`` term nor an errstate guard.
    """
    array = np.asarray(array)
    tiny = _TINY.get(array.dtype)
    if tiny is None:
        raise TypeError(f"not a float array: {array.dtype}")
    if array.size == 0:
        return array
    magnitude = np.abs(array)
    # Screen with one reduction: a min ≥ tiny means no zeros and no
    # subnormals (NaNs fail the compare and fall through to the mask).
    if magnitude.min() >= tiny:
        return array
    mask = (magnitude < tiny) & (magnitude > 0)
    if not mask.any():
        return array
    out = array.copy()
    out[mask] = np.copysign(np.zeros(1, dtype=out.dtype), out[mask])
    return out


def _flush_subnormals_reference(array: np.ndarray) -> np.ndarray:
    """The pre-optimization flush: always copies, errstate-guarded.

    Numerically identical to :func:`flush_subnormals`; kept as the
    ``REPRO_SLOW_KERNEL=1`` baseline so wall-clock comparisons measure
    the real cost of the fast path.
    """
    array = np.asarray(array)
    if array.dtype not in (np.float32, np.float64):
        raise TypeError(f"not a float array: {array.dtype}")
    tiny = np.finfo(array.dtype).tiny
    out = array.copy()
    with np.errstate(invalid="ignore"):
        mask = (out != 0) & (np.abs(out) < tiny) & np.isfinite(out)
    if mask.any():
        out[mask] = np.copysign(np.zeros(1, dtype=out.dtype), out[mask])
    return out


class ChainRef:
    """Placeholder input: the result of an earlier op in the same chain.

    The model layer threads register dataflow through a queued chain
    with these instead of materialized arrays — op k's input can be
    op j's (j < k) not-yet-computed result.  ``length`` optionally
    reads a prefix of that result (a shorter op consuming a longer
    register), mirroring ``VectorRegister.elements(count=...)``.
    """

    __slots__ = ("index", "length")

    def __init__(self, index: int, length: int = None):
        self.index = index
        self.length = length

    def __repr__(self):
        if self.length is None:
            return f"ChainRef({self.index})"
        return f"ChainRef({self.index}, length={self.length})"


@dataclass(frozen=True)
class VectorForm:
    """One entry in the micro-sequencer's form catalog."""

    name: str
    description: str
    #: Number of vector operands (≤2: the dual banks supply at most two
    #: vector inputs per cycle).
    vector_inputs: int
    #: Number of scalars held in functional-unit input registers.
    scalar_inputs: int
    uses_adder: bool
    uses_multiplier: bool
    #: Floating-point operations per element (for MFLOPS accounting).
    flops_per_element: int
    #: True if the result is a scalar (feedback accumulation).
    reduction: bool
    #: (inputs, scalars, dtype) → ndarray or scalar, pre-flush.
    compute: Callable

    def __post_init__(self):
        if self.vector_inputs > 2:
            raise ValueError(
                "the dual-bank memory feeds at most two vector inputs"
            )


def _form(name, desc, vin, sin, add, mul, flops, red, fn):
    return VectorForm(name, desc, vin, sin, add, mul, flops, red, fn)


#: The form catalog.  Names follow the FPS vector-op naming style.
FORMS = {}


def register_form(form: VectorForm) -> VectorForm:
    """Add a form to the catalog (also used by tests to build variants)."""
    if form.name in FORMS:
        raise ValueError(f"duplicate form {form.name!r}")
    FORMS[form.name] = form
    return form


def form_catalog() -> list:
    """Sorted form names — the stable iteration order the conformance
    layer (golden traces, the vector-workload fuzzer) samples from."""
    return sorted(FORMS)


def _elementwise(fn):
    def compute(inputs, scalars, dtype):
        return fn(*[np.asarray(v, dtype=dtype) for v in inputs],
                  *[dtype(s) for s in scalars])
    return compute


for _name, _desc, _vin, _sin, _add, _mul, _flops, _red, _fn in [
    ("VADD", "c[i] = a[i] + b[i]", 2, 0, True, False, 1, False,
     _elementwise(lambda a, b: a + b)),
    ("VSUB", "c[i] = a[i] - b[i]", 2, 0, True, False, 1, False,
     _elementwise(lambda a, b: a - b)),
    ("VMUL", "c[i] = a[i] * b[i]", 2, 0, False, True, 1, False,
     _elementwise(lambda a, b: a * b)),
    ("VSADD", "c[i] = s + a[i]", 1, 1, True, False, 1, False,
     _elementwise(lambda a, s: s + a)),
    ("VSSUB", "c[i] = a[i] - s", 1, 1, True, False, 1, False,
     _elementwise(lambda a, s: a - s)),
    ("VSMUL", "c[i] = s * a[i]", 1, 1, False, True, 1, False,
     _elementwise(lambda a, s: s * a)),
    ("SAXPY", "c[i] = s * x[i] + y[i]", 2, 1, True, True, 2, False,
     _elementwise(lambda x, y, s: s * x + y)),
    ("VNEG", "c[i] = -a[i]", 1, 0, True, False, 1, False,
     _elementwise(lambda a: -a)),
    ("VABS", "c[i] = |a[i]|", 1, 0, True, False, 1, False,
     _elementwise(lambda a: np.abs(a))),
    ("VMAX", "c[i] = max(a[i], b[i])", 2, 0, True, False, 1, False,
     _elementwise(lambda a, b: np.maximum(a, b))),
    ("VMIN", "c[i] = min(a[i], b[i])", 2, 0, True, False, 1, False,
     _elementwise(lambda a, b: np.minimum(a, b))),
    ("DOT", "sum_i a[i] * b[i]", 2, 0, True, True, 2, True,
     lambda inputs, scalars, dtype: dtype(
         np.dot(np.asarray(inputs[0], dtype=dtype),
                np.asarray(inputs[1], dtype=dtype)))),
    ("SUM", "sum_i a[i]", 1, 0, True, False, 1, True,
     lambda inputs, scalars, dtype: dtype(
         np.sum(np.asarray(inputs[0], dtype=dtype)))),
]:
    register_form(
        _form(_name, _desc, _vin, _sin, _add, _mul, _flops, _red, _fn)
    )


def _convert_compute(target):
    def compute(inputs, scalars, dtype):
        return np.asarray(inputs[0], dtype=dtype).astype(target)
    return compute


register_form(_form(
    "VCVT64", "widen 32-bit elements to 64-bit", 1, 0, True, False, 1,
    False, _convert_compute(np.float64),
))
register_form(_form(
    "VCVT32", "narrow 64-bit elements to 32-bit", 1, 0, True, False, 1,
    False, _convert_compute(np.float32),
))


class VectorArithmeticUnit:
    """The complete vector arithmetic subsystem of one node.

    Owns the adder and multiplier, runs one vector form at a time, and
    keeps FLOP/occupancy counters for measured-performance experiments.
    """

    def __init__(self, engine, specs):
        self.engine = engine
        self.specs = specs
        self.adder = FloatingAdder(engine, specs)
        self.multiplier = FloatingMultiplier(engine, specs)
        self._busy = Mutex(engine, name="vau")
        #: Total floating-point operations performed.
        self.flops = 0
        #: Total ns spent executing forms.
        self.busy_ns = 0
        #: Vector forms completed.
        self.completions = 0
        # REPRO_SLOW_KERNEL (read once, at construction — same contract
        # as the event kernel) selects the pre-optimization timing and
        # flush implementations so the reference run is an honest
        # baseline, not one that inherits the fast path's memoization.
        self._fast = not slow_kernel_requested()
        self._flush = (
            flush_subnormals if self._fast else _flush_subnormals_reference
        )
        # Memoized duration coefficients: (form name, precision) →
        # cycles for n = 0 elements (chain fill − 1, plus reduction
        # drain).  duration() is then one dict hit and two integer ops
        # for *any* n — exact, not bucketed, because the cost model is
        # affine in n.
        self._duration_base = {} if self._fast else None
        # Vector tier: execute_chain computes queued chains in batch
        # (one concatenated subnormal screen, one vectorized timing
        # evaluation).  The other tiers run the identical chain
        # protocol with per-op dispatch.
        self._batched = self._fast and vector_kernel_requested()
        #: Batched micro-sequencer counters (see engine_stats):
        #: chains executed, forms and elements computed through the
        #: batched path, and per-input flush calls elided by a clean
        #: whole-chain screen.
        self.chains = 0
        self.batched_forms = 0
        self.batched_elements = 0
        self.screens_elided = 0
        #: Chain-adoption counters (engine_stats: ``vau_chain_model``
        #: and ``chain_ops_fused``): fused model-layer chains executed
        #: — one pipeline fill for the whole chain instead of one per
        #: op — and the ops fused into them.  Identical on every tier.
        self.model_chains = 0
        self.model_chain_ops = 0
        vaus = getattr(engine, "vaus", None)
        if vaus is not None:
            vaus.append(self)

    # -- timing ---------------------------------------------------------

    def chain_depth(self, form: VectorForm, precision: int) -> int:
        """Pipeline fill of the unit chain a form streams through."""
        depth = 0
        if form.uses_multiplier:
            depth += self.multiplier.stages(precision)
        if form.uses_adder:
            depth += self.adder.stages(precision)
        return depth

    def duration(self, form_name: str, n: int, precision: int = 64) -> int:
        """Simulated ns for an n-element execution of a form."""
        if n < 0:
            raise ValueError("negative vector length")
        if n == 0:
            return 0
        memo = self._duration_base
        if memo is None:  # reference kernel: recompute per call
            form = FORMS[form_name]
            cycles = self.chain_depth(form, precision) + n - 1
            if form.reduction:
                cycles += reduction_drain_cycles(self.adder.stages(precision))
            return cycles * self.specs.cycle_ns
        base = memo.get((form_name, precision))
        if base is None:
            form = FORMS[form_name]
            base = self.chain_depth(form, precision) - 1
            if form.reduction:
                base += reduction_drain_cycles(self.adder.stages(precision))
            memo[(form_name, precision)] = base
        return (base + n) * self.specs.cycle_ns

    def peak_flops_per_s(self) -> float:
        """Peak rate with both pipes streaming: 2 per cycle (16 MFLOPS)."""
        return 2e9 / self.specs.cycle_ns

    # -- execution --------------------------------------------------------

    def _validate(self, form, inputs, scalars, precision):
        if len(inputs) != form.vector_inputs:
            raise ValueError(
                f"{form.name} takes {form.vector_inputs} vector inputs, "
                f"got {len(inputs)}"
            )
        if len(scalars) != form.scalar_inputs:
            raise ValueError(
                f"{form.name} takes {form.scalar_inputs} scalars, "
                f"got {len(scalars)}"
            )
        if not inputs:
            return 0
        n = len(inputs[0])
        for v in inputs:
            if len(v) != n:
                raise ValueError(
                    "input length mismatch: "
                    f"{sorted({len(u) for u in inputs})}"
                )
        return n

    def execute(self, form_name, inputs, scalars=(), precision=64):
        """Process: run one vector form; returns the flushed result.

        The caller may start this with ``engine.process`` and *not*
        wait on it — that is exactly the paper's CP/vector-unit
        overlap.
        """
        form = FORMS[form_name]
        dtype = dtype_for(precision)
        n = self._validate(form, inputs, scalars, precision)
        duration = self.duration(form_name, n, precision)
        req = self._busy.request()
        try:
            yield req
            yield self.engine.timeout(duration)
        finally:
            req.release()
        # Counters: each used unit produced one result per element.
        if form.uses_adder:
            self.adder.results += n
            self.adder.busy_ns += duration
        if form.uses_multiplier:
            self.multiplier.results += n
            self.multiplier.busy_ns += duration
        self.flops += form.flops_per_element * n
        self.busy_ns += duration
        self.completions += 1

        return self._compute_form(form, inputs, scalars, n, dtype, precision)

    def _compute_form(self, form, inputs, scalars, n, dtype, precision):
        """Screen inputs, run one form's arithmetic, screen the result.

        This is the numeric half of :meth:`execute` (shared with the
        chain path); timing and counters are the caller's business.
        """
        flush = self._flush
        if self._fast and len(inputs) == 2:
            # Dual-input forms dominate (SAXPY, VADD, DOT...): screen
            # both operands with one reduction over their concatenation;
            # a clean screen skips both per-input flush calls.
            a = np.asarray(inputs[0], dtype=dtype)
            b = np.asarray(inputs[1], dtype=dtype)
            magnitude = np.abs(np.concatenate((a, b)))
            if n == 0 or magnitude.min() >= _TINY_BITS[precision]:
                flushed_inputs = [a, b]
            else:
                # The min screen also trips on exact zeros, which need
                # no flushing (a zeroed accumulator row is the common
                # case) — one mask pass settles it for both operands.
                mask = (magnitude < _TINY_BITS[precision]) & (magnitude > 0)
                if mask.any():
                    flushed_inputs = [flush(a), flush(b)]
                else:
                    flushed_inputs = [a, b]
        else:
            flushed_inputs = [
                flush(np.asarray(v, dtype=dtype)) for v in inputs
            ]
        if self._fast:
            # IEEE-flag warnings from compute are filtered module-wide
            # (see the filterwarnings call at import): no context
            # manager needed on the hot path.
            result = form.compute(flushed_inputs, scalars, dtype)
        else:
            with np.errstate(
                over="ignore", invalid="ignore", under="ignore"
            ):
                result = form.compute(flushed_inputs, scalars, dtype)
        return self._screen_result(form, result, flush, precision)

    def _screen_result(self, form, result, flush, precision):
        """Subnormal-flush a form's result (scalar or vector)."""
        if form.reduction:
            scalar = np.asarray(result).reshape(1)
            return flush(scalar)[0]
        if self._fast and type(result) is np.ndarray:
            # Inline screen: compute always returns the target dtype,
            # so skip the flush call's asarray/dtype-lookup preamble.
            magnitude = np.abs(result)
            if (magnitude.size == 0
                    or magnitude.min() >= _TINY_BITS[precision]):
                return result
        return flush(np.asarray(result))

    # -- queued chains ----------------------------------------------------

    def _validate_chain_entry(self, form, inputs, scalars, index, entries):
        """Chain-aware :meth:`_validate`: inputs may be `ChainRef`s.

        A ref must point at an earlier non-reduction entry of this
        chain, and its (possibly prefix-truncated) length must agree
        with the entry's other inputs.  Returns the element count.
        """
        if len(inputs) != form.vector_inputs:
            raise ValueError(
                f"{form.name} takes {form.vector_inputs} vector inputs, "
                f"got {len(inputs)}"
            )
        if len(scalars) != form.scalar_inputs:
            raise ValueError(
                f"{form.name} takes {form.scalar_inputs} scalars, "
                f"got {len(scalars)}"
            )
        if not inputs:
            return 0
        lengths = []
        for v in inputs:
            if type(v) is ChainRef:
                if not 0 <= v.index < index:
                    raise ValueError(
                        f"chain op {index} references result {v.index}, "
                        "which does not precede it"
                    )
                ref_form, _i, _s, ref_n = entries[v.index]
                if ref_form.reduction:
                    raise ValueError(
                        f"chain op {index} uses the scalar result of "
                        f"{ref_form.name} as a vector input"
                    )
                if v.length is not None:
                    if v.length > ref_n:
                        raise ValueError(
                            f"ChainRef length {v.length} exceeds the "
                            f"{ref_n}-element result it references"
                        )
                    lengths.append(v.length)
                else:
                    lengths.append(ref_n)
            else:
                lengths.append(len(v))
        n = lengths[0]
        if any(m != n for m in lengths):
            raise ValueError(
                f"input length mismatch: {sorted(set(lengths))}"
            )
        return n

    @staticmethod
    def _resolve_refs(inputs, results):
        """Replace `ChainRef` placeholders with the computed results."""
        resolved = []
        for v in inputs:
            if type(v) is ChainRef:
                r = results[v.index]
                if v.length is not None and v.length != len(r):
                    r = r[:v.length]
                resolved.append(r)
            else:
                resolved.append(v)
        return resolved

    def _fused_durations(self, entries, precision):
        """Per-op duration shares under the fused chain cost model.

        The paper's micro-sequencer streams a queued chain back to
        back: the pipeline fills **once** (the deepest unit chain any
        op uses), then results drain one element per cycle across all
        ops.  Total = ``(fill + Σ nᵢ − 1)`` cycles plus a reduction
        drain per reduction op.  The fill is attributed to the first
        non-empty op so the per-op shares sum exactly to the total —
        a deterministic integer split, identical on every tier (no
        memo involved, so reference and fast agree bit-for-bit).
        """
        cycle = self.specs.cycle_ns
        fill = 0
        for form, _inputs, _scalars, n in entries:
            if n:
                depth = self.chain_depth(form, precision)
                if depth > fill:
                    fill = depth
        durations = []
        first = True
        for form, _inputs, _scalars, n in entries:
            if n == 0:
                durations.append(0)
                continue
            cycles = n
            if form.reduction:
                cycles += reduction_drain_cycles(
                    self.adder.stages(precision)
                )
            if first:
                cycles += fill - 1
                first = False
            durations.append(cycles * cycle)
        return durations

    def _chain_durations(self, entries, precision):
        """Per-op simulated durations for a queued chain.

        The batched tier prices the whole chain with one vectorized
        affine evaluation over memoized per-form bases; the other
        tiers call :meth:`duration` per op.  Identical integers either
        way — the cost model is affine in n, so batching changes how
        the arithmetic is issued, not its results.
        """
        if not self._batched:
            return [self.duration(form.name, n, precision)
                    for form, _inputs, _scalars, n in entries]
        memo = self._duration_base
        bases = []
        lengths = []
        for form, _inputs, _scalars, n in entries:
            base = memo.get((form.name, precision))
            if base is None:
                base = self.chain_depth(form, precision) - 1
                if form.reduction:
                    base += reduction_drain_cycles(
                        self.adder.stages(precision)
                    )
                memo[(form.name, precision)] = base
            bases.append(base)
            lengths.append(n)
        return vector_ns_array(bases, lengths, self.specs.cycle_ns)

    def _compute_chain_batched(self, entries, dtype, precision):
        """Compute every form of a chain with one whole-chain screen.

        A single concatenated reduction screens every vector input of
        every op; when the whole batch is clean (the overwhelmingly
        common case) the per-input flush calls are elided entirely and
        each form computes straight on its operands.  A dirty batch
        falls back to the per-op screen logic, which flushes exactly
        the arrays that need it — either way the values are
        bit-identical to per-op dispatch, because flushing a clean
        array is the identity.
        """
        flush = self._flush
        arrays = []
        pool = []
        for form, inputs, scalars, n in entries:
            vecs = [np.asarray(v, dtype=dtype) for v in inputs]
            arrays.append(vecs)
            for v in vecs:
                if v.size:
                    pool.append(v)
        clean = True
        if pool:
            magnitude = np.abs(np.concatenate(pool))
            clean = bool(magnitude.min() >= _TINY_BITS[precision])
        self.chains += 1
        self.batched_forms += len(entries)
        self.batched_elements += sum(n for _f, _i, _s, n in entries)
        results = []
        if clean:
            self.screens_elided += sum(len(vecs) for vecs in arrays)
            for (form, _inputs, scalars, _n), vecs in zip(entries, arrays):
                result = form.compute(vecs, scalars, dtype)
                results.append(
                    self._screen_result(form, result, flush, precision)
                )
            return results
        for (form, _inputs, scalars, n), vecs in zip(entries, arrays):
            results.append(
                self._compute_form(form, vecs, scalars, n, dtype, precision)
            )
        return results

    def execute_chain(self, ops, precision=64, fused=False):
        """Process: run a queued chain of forms under one unit hold.

        ``ops`` is a sequence of ``(form_name, inputs)`` or
        ``(form_name, inputs, scalars)`` entries; an input may be a
        :class:`ChainRef` naming an earlier op's result (register
        dataflow threaded through the chain without waiting on it).
        The micro-sequencer queues the whole chain: the unit is
        requested once, completion fires once, and the per-op results
        come back as a list — the same event pattern, simulated
        timing, counter totals, and bit-exact values on every kernel
        tier.  What differs per tier is the host arithmetic: the vector
        tier batches the chain (one vectorized timing evaluation, one
        whole-chain subnormal screen — see
        :meth:`_compute_chain_batched`), the others dispatch per op.

        ``fused=False`` (the default) prices each op with its own
        pipeline fill — the historical queued-chain model.  ``fused=
        True`` is the model-layer streaming mode: the pipeline fills
        once for the whole chain (see :meth:`_fused_durations`), which
        is what :meth:`repro.core.node.ProcessorNode.run_chain` and
        the matmul/gauss inner loops dispatch.
        """
        dtype = dtype_for(precision)
        entries = []
        has_refs = False
        for op in ops:
            form_name, inputs = op[0], op[1]
            scalars = op[2] if len(op) > 2 else ()
            form = FORMS[form_name]
            if any(type(v) is ChainRef for v in inputs):
                has_refs = True
                n = self._validate_chain_entry(
                    form, inputs, scalars, len(entries), entries
                )
            else:
                n = self._validate(form, inputs, scalars, precision)
            entries.append((form, inputs, scalars, n))
        if fused:
            durations = self._fused_durations(entries, precision)
        else:
            durations = self._chain_durations(entries, precision)
        total = 0
        for d in durations:
            total += d
        req = self._busy.request()
        try:
            yield req
            yield self.engine.timeout(total)
        finally:
            req.release()
        adder = self.adder
        multiplier = self.multiplier
        for (form, _inputs, _scalars, n), duration in zip(entries, durations):
            if form.uses_adder:
                adder.credit(n, duration)
            if form.uses_multiplier:
                multiplier.credit(n, duration)
            self.flops += form.flops_per_element * n
            self.busy_ns += duration
            self.completions += 1
        if fused:
            self.model_chains += 1
            self.model_chain_ops += len(entries)
        if self._batched:
            if has_refs:
                return self._compute_chain_optimistic(
                    entries, dtype, precision
                )
            return self._compute_chain_batched(entries, dtype, precision)
        if not has_refs:
            return [
                self._compute_form(form, inputs, scalars, n, dtype, precision)
                for form, inputs, scalars, n in entries
            ]
        results = []
        for form, inputs, scalars, n in entries:
            vecs = self._resolve_refs(inputs, results)
            results.append(
                self._compute_form(form, vecs, scalars, n, dtype, precision)
            )
        return results

    def _compute_chain_optimistic(self, entries, dtype, precision):
        """Batched compute for chains with :class:`ChainRef` dataflow.

        Dependent ops cannot be screened up front (an input may be a
        result that does not exist yet), so the vector tier computes
        the whole chain **optimistically** — no per-op screens — while
        pooling every memory-sourced input and every result.  One
        concatenated screen then settles it: if nothing in the pool is
        subnormal, no per-op flush would have fired anywhere, so the
        optimistic results are bit-identical to per-op dispatch (the
        overwhelmingly common case).  A dirty pool discards them and
        recomputes the chain per op with full screens — exactly the
        dispatch the other tiers run.
        """
        flush = self._flush
        tiny = _TINY_BITS[precision]
        pool = []
        results = []
        for form, inputs, scalars, n in entries:
            vecs = []
            for v in inputs:
                if type(v) is ChainRef:
                    r = results[v.index]
                    if v.length is not None and v.length != len(r):
                        r = r[:v.length]
                    vecs.append(r)
                else:
                    arr = np.asarray(v, dtype=dtype)
                    if arr.size:
                        pool.append(arr)
                    vecs.append(arr)
            result = form.compute(vecs, scalars, dtype)
            if form.reduction:
                scalar = np.asarray(result).reshape(1)
                pool.append(scalar)
                results.append(scalar[0])
            else:
                if result.size:
                    pool.append(result)
                results.append(result)
        clean = True
        if pool:
            magnitude = np.abs(np.concatenate(pool))
            if not (magnitude.size == 0 or magnitude.min() >= tiny):
                # The min screen also trips on exact zeros (zeroed
                # accumulators, exact cancellation) which need no
                # flushing — the mask settles the whole pool at once.
                mask = (magnitude < tiny) & (magnitude > 0)
                clean = not mask.any()
        self.chains += 1
        self.batched_forms += len(entries)
        self.batched_elements += sum(n for _f, _i, _s, n in entries)
        if clean:
            self.screens_elided += sum(
                len(inputs) for _f, inputs, _s, _n in entries
            )
            return results
        results = []
        for form, inputs, scalars, n in entries:
            vecs = self._resolve_refs(inputs, results)
            results.append(
                self._compute_form(form, vecs, scalars, n, dtype, precision)
            )
        return results

    def start_chain(self, ops, precision=64, fused=False):
        """Fire-and-forget: start a queued chain, return its event."""
        return self.engine.process(
            self.execute_chain(ops, precision, fused), name="vau-chain"
        )

    def start(self, form_name, inputs, scalars=(), precision=64):
        """Fire-and-forget: start a form, return its completion event."""
        return self.engine.process(
            self.execute(form_name, inputs, scalars, precision),
            name=f"vau-{form_name}",
        )

    def measured_mflops(self) -> float:
        """FLOPs per elapsed simulated µs (the measured rate)."""
        if self.engine.now == 0:
            return 0.0
        return self.flops / (self.engine.now / 1000.0)

    def __repr__(self):
        return f"<VectorArithmeticUnit flops={self.flops}>"
