"""Inter-node communications: framing, links, sublinks, DMA, adapter.

Public surface:

* :class:`FrameSpec` — bit-serial framing math (13 bit-times/byte).
* :class:`SerialLink`, :class:`LinkEnd`, :class:`Wire`,
  :class:`Message` — the physical link.
* :class:`SubLink`, :class:`SubLinkMux` and the role constants —
  four-way multiplexing.
* :class:`DMAEngine` — the 5 µs-startup DMA model.
* :class:`LinkAdapter` — the per-node front end (4 links → 16 sublinks).
"""

from repro.links.adapter import LinkAdapter
from repro.links.dma import DMAEngine
from repro.links.fabric import (
    FabricEndpoint,
    FabricSublink,
    LinkPort,
    NodeLinkSet,
    connect,
)
from repro.links.frame import FrameSpec
from repro.links.link import LinkEnd, Message, SerialLink, Wire
from repro.links.sublink import (
    ROLE_COMPUTE,
    ROLE_IO,
    ROLE_SYSTEM,
    SubLink,
    SubLinkMux,
)

__all__ = [
    "DMAEngine",
    "FabricEndpoint",
    "FabricSublink",
    "FrameSpec",
    "LinkAdapter",
    "LinkEnd",
    "LinkPort",
    "Message",
    "NodeLinkSet",
    "connect",
    "ROLE_COMPUTE",
    "ROLE_IO",
    "ROLE_SYSTEM",
    "SerialLink",
    "SubLink",
    "SubLinkMux",
    "Wire",
]
