"""The node's link adapter: four links, sixteen sublinks, one DMA.

The adapter is the node-side owner of communications.  Machine wiring
(:mod:`repro.core.machine`) attaches each of the node's four link ends
here, the adapter muxes each into four sublinks, and node software
sends/receives via (link, sublink) coordinates or by role.

Budget per the paper (§III): per node, 2 sublinks carry system
communication, 2 are reserved for mass storage / external I/O, and up
to 12 connect to other compute nodes — enough for a 12-cube with I/O
or a 14-cube without.
"""

from repro.links.dma import DMAEngine
from repro.links.sublink import (
    ROLE_COMPUTE,
    ROLE_IO,
    ROLE_SYSTEM,
    SubLinkMux,
)


class LinkAdapter:
    """Per-node communications front end."""

    def __init__(self, engine, specs, name="adapter"):
        self.engine = engine
        self.specs = specs
        self.name = name
        self.dma = DMAEngine(engine, specs)
        self._ends = [None] * specs.links_per_node
        self._muxes = [None] * specs.links_per_node

    # -- wiring ----------------------------------------------------------

    def attach(self, link_index: int, link_end, roles=None) -> SubLinkMux:
        """Attach a link end at position ``link_index`` and mux it."""
        if not 0 <= link_index < len(self._ends):
            raise ValueError(f"link index {link_index} out of range")
        if self._ends[link_index] is not None:
            raise ValueError(f"link {link_index} already attached")
        self._ends[link_index] = link_end
        link_end.owner = self
        mux = SubLinkMux(link_end, roles=roles)
        self._muxes[link_index] = mux
        return mux

    def attached(self, link_index: int) -> bool:
        """True if a link is wired at that position."""
        return self._ends[link_index] is not None

    @property
    def links_attached(self) -> int:
        return sum(end is not None for end in self._ends)

    def mux(self, link_index: int) -> SubLinkMux:
        """The sublink mux on one link (raises if unwired)."""
        mux = self._muxes[link_index]
        if mux is None:
            raise ValueError(f"no link attached at index {link_index}")
        return mux

    def sublink(self, link_index: int, sub_index: int):
        """A sublink by (link, sub) coordinates."""
        return self.mux(link_index).sublink(sub_index)

    def sublinks(self, role=None):
        """All wired sublinks, optionally filtered by role."""
        out = []
        for mux in self._muxes:
            if mux is None:
                continue
            out.extend(mux.sublinks if role is None else mux.by_role(role))
        return out

    def budget(self) -> dict:
        """Sublink counts by role across wired links."""
        return {
            "total": len(self.sublinks()),
            ROLE_SYSTEM: len(self.sublinks(ROLE_SYSTEM)),
            ROLE_IO: len(self.sublinks(ROLE_IO)),
            ROLE_COMPUTE: len(self.sublinks(ROLE_COMPUTE)),
        }

    # -- traffic --------------------------------------------------------

    def send(self, link_index: int, sub_index: int, payload, nbytes: int):
        """Process: DMA startup, then transmit on the sublink."""
        sub = self.sublink(link_index, sub_index)
        yield from self.dma.start_transfer()
        message = yield from sub.send(payload, nbytes)
        return message

    def recv(self, link_index: int, sub_index: int):
        """Process: receive the next message on the sublink."""
        sub = self.sublink(link_index, sub_index)
        message = yield from sub.recv()
        return message

    def transfer_ns(self, nbytes: int) -> int:
        """Predicted one-message time: DMA startup + framed wire time."""
        if not any(self._ends):
            raise RuntimeError("no links attached")
        end = next(e for e in self._ends if e is not None)
        return self.dma.effective_ns(end.link.frame.transfer_ns(nbytes))

    def __repr__(self):
        return f"<LinkAdapter {self.name!r} links={self.links_attached}>"
