"""Link DMA.

Paper §II: "The links operate via DMA transfers with a startup time of
about 5 µs."  The DMA engine charges that startup to each transfer and
then streams the bytes; transfers on *different* links proceed
concurrently (each link has its own DMA channel), while transfers on
the same wire serialise at the wire.

The control processor is "degraded only slightly" with all links
running; we model zero CP slowdown and document the approximation —
the 10 MB/s random-access port has ample headroom over the links'
aggregate ≈2.3 MB/s per direction.
"""


class DMAEngine:
    """Per-node DMA: startup accounting shared by all the node's links."""

    def __init__(self, engine, specs):
        self.engine = engine
        self.startup_ns = specs.dma_startup_ns
        #: Transfers started (for overhead accounting).
        self.transfers = 0
        #: Total startup time charged.
        self.startup_total_ns = 0

    def start_transfer(self):
        """Process: charge one transfer's startup latency."""
        yield self.engine.timeout(self.startup_ns)
        self.transfers += 1
        self.startup_total_ns += self.startup_ns

    def effective_ns(self, wire_ns: int) -> int:
        """Total time of a transfer including startup."""
        return self.startup_ns + wire_ns

    def overhead_fraction(self, wire_ns: int) -> float:
        """Startup share of a transfer — why small messages are costly."""
        total = self.effective_ns(wire_ns)
        return self.startup_ns / total if total else 0.0

    def __repr__(self):
        return f"<DMAEngine transfers={self.transfers}>"
