"""The machine-level link fabric: sublinks to *different* peers.

A node has four physical links but up to twelve hypercube neighbours
(a 12-cube with I/O, 14 without).  The T Series resolves this by
multiplexing each link four ways — so the four sublinks of one
physical link connect to *different* nodes and **divide the link's
bandwidth** (paper §II).

Model: each node-side physical link is a pair of shared media
(:class:`Wire` for tx and rx).  A :class:`FabricSublink` joins a
(port, sublink) endpoint on one node to one on another; transmitting a
message holds the sender's tx medium *and* the receiver's rx medium
for the framed duration, so concurrent traffic on sibling sublinks
serialises — bandwidth division emerges rather than being asserted.

Deadlock safety: the two media are always acquired in global creation
order, so hold-two-locks cycles cannot form.
"""

import itertools

from repro.events import Store
from repro.links.frame import FrameSpec
from repro.links.link import Message, Wire

_wire_uid = itertools.count()


class LinkPort:
    """One physical link socket on a node: shared tx and rx media."""

    def __init__(self, engine, frame: FrameSpec, name: str):
        self.engine = engine
        self.frame = frame
        self.name = name
        self.tx = Wire(engine, frame, f"{name}.tx")
        self.rx = Wire(engine, frame, f"{name}.rx")
        self.tx.uid = next(_wire_uid)
        self.rx.uid = next(_wire_uid)

    def __repr__(self):
        return f"<LinkPort {self.name!r}>"


class FabricEndpoint:
    """One side of a fabric sublink: a (port, sub-index) slot plus inbox."""

    def __init__(self, port: LinkPort, sub_index: int, owner=None):
        self.port = port
        self.sub_index = sub_index
        self.owner = owner
        self.inbox = Store(
            port.engine, name=f"{port.name}.{sub_index}-inbox"
        )


class FabricSublink:
    """A point-to-point sublink between two nodes' link ports."""

    def __init__(self, endpoint_a: FabricEndpoint, endpoint_b: FabricEndpoint,
                 name="sublink"):
        if endpoint_a.port is endpoint_b.port:
            raise ValueError("a sublink cannot loop back to its own port")
        self.endpoints = (endpoint_a, endpoint_b)
        self.name = name
        self.engine = endpoint_a.port.engine
        self.frame = endpoint_a.port.frame
        endpoint_a.sublink = self
        endpoint_b.sublink = self
        #: Payload bytes carried (both directions).
        self.bytes_moved = 0
        self.messages = 0
        # -- fault hooks (driven by repro.system.failures) ------------
        #: Corrupt the next N frames in flight (delivered with
        #: ``Message.corrupted`` set; payload object unchanged).
        self.corrupt_next = 0
        #: Outage window [outage_from, outage_until] in ns; a frame
        #: whose transmission interval overlaps the window is lost
        #: (transmitted but never delivered).  ``outage_until`` None
        #: means the sublink is stuck down until :meth:`repair`.
        self.outage_from = None
        self.outage_until = None
        self.frames_corrupted = 0
        self.frames_lost = 0

    def corrupt_next_frame(self, count=1):
        """Arm transient corruption for the next ``count`` frames."""
        self.corrupt_next += count

    def fail(self, from_ns, until_ns=None):
        """Take the sublink down for [from_ns, until_ns] (None=forever)."""
        self.outage_from = from_ns
        self.outage_until = until_ns

    def repair(self):
        """Clear any outage window."""
        self.outage_from = None
        self.outage_until = None

    def _lost(self, start_ns, end_ns) -> bool:
        """True when a frame transmitted over [start, end] hits the
        outage window."""
        if self.outage_from is None or end_ns < self.outage_from:
            return False
        return self.outage_until is None or start_ns <= self.outage_until

    def other(self, endpoint: FabricEndpoint) -> FabricEndpoint:
        """The endpoint at the far side."""
        if endpoint is self.endpoints[0]:
            return self.endpoints[1]
        if endpoint is self.endpoints[1]:
            return self.endpoints[0]
        raise ValueError("endpoint not on this sublink")

    def send_from(self, endpoint: FabricEndpoint, payload, nbytes: int):
        """Process: transmit from ``endpoint`` to the far side.

        Holds the local tx medium and the remote rx medium for the
        framed duration (acquired in global uid order), then delivers.
        """
        if nbytes < 0:
            raise ValueError("negative message size")
        peer = self.other(endpoint)
        tx = endpoint.port.tx
        rx = peer.port.rx
        first, second = sorted((tx, rx), key=lambda w: w.uid)
        duration = self.frame.transfer_ns(nbytes)
        sent_at = self.engine.now
        with first._busy.request() as r1:
            yield r1
            with second._busy.request() as r2:
                yield r2
                yield self.engine.timeout(duration)
                for wire in (tx, rx):
                    wire.bytes_moved += nbytes
                    wire.busy_ns += duration
                    wire.messages += 1
        corrupted = False
        if self.corrupt_next:
            self.corrupt_next -= 1
            self.frames_corrupted += 1
            corrupted = True
        message = Message(
            payload, nbytes, sent_at, self.engine.now,
            sublink=peer.sub_index, corrupted=corrupted,
        )
        self.bytes_moved += nbytes
        self.messages += 1
        if self._lost(sent_at, self.engine.now):
            # The wire time was spent, but the frame never arrives.
            # Unreliable callers will time out or hang; the reliable
            # transport retries after its ACK timeout.
            self.frames_lost += 1
            return message
        yield peer.inbox.put(message)
        return message

    def __repr__(self):
        return f"<FabricSublink {self.name!r}>"


class NodeLinkSet:
    """A node's communications front end over the fabric.

    Sublink *slots* are numbered 0..15: slot s lives on physical link
    ``s // 4``, sub-index ``s % 4``.  Machine wiring connects slots to
    peers and records each slot's role; node software addresses
    traffic by slot.
    """

    def __init__(self, engine, specs, name="node"):
        self.engine = engine
        self.specs = specs
        self.name = name
        frame = FrameSpec.from_specs(specs)
        self.ports = [
            LinkPort(engine, frame, f"{name}.L{i}")
            for i in range(specs.links_per_node)
        ]
        self.slots = specs.sublinks_per_node
        self._endpoints = [None] * self.slots
        self._roles = [None] * self.slots
        #: DMA startup per transfer (paper: ~5 µs).
        self.dma_startup_ns = specs.dma_startup_ns
        self.dma_transfers = 0
        #: Node memory for DMA cycle stealing (set by ProcessorNode;
        #: active only when specs.dma_memory_traffic is on).
        self.memory = None

    def _steal_port_cycles(self, nbytes: int):
        """Process: charge the random-access port for DMA traffic.

        The link adapter reads/writes message data through the same
        port the CP's gather/scatter uses; stealing happens in bursts
        so the CP interleaves between them.
        """
        words = -(-nbytes // 4)
        burst = self.specs.dma_burst_words
        while words > 0:
            take = min(burst, words)
            yield from self.memory.word_port.access(take)
            words -= take

    def _dma_active(self) -> bool:
        return (self.specs.dma_memory_traffic
                and self.memory is not None)

    def port_of_slot(self, slot: int) -> LinkPort:
        """The physical link a slot rides on."""
        self._check_slot(slot)
        return self.ports[slot // 4]

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range (0..{self.slots - 1})")

    def make_endpoint(self, slot: int, role: str) -> FabricEndpoint:
        """Claim a slot; returns the endpoint for wiring."""
        self._check_slot(slot)
        if self._endpoints[slot] is not None:
            raise ValueError(f"slot {slot} already wired")
        endpoint = FabricEndpoint(
            self.port_of_slot(slot), slot % 4, owner=self
        )
        self._endpoints[slot] = endpoint
        self._roles[slot] = role
        return endpoint

    def endpoint(self, slot: int) -> FabricEndpoint:
        self._check_slot(slot)
        ep = self._endpoints[slot]
        if ep is None:
            raise ValueError(f"slot {slot} not wired")
        return ep

    def role_of(self, slot: int):
        self._check_slot(slot)
        return self._roles[slot]

    def wired_slots(self, role=None):
        """Slots in use, optionally filtered by role."""
        return [
            s for s in range(self.slots)
            if self._endpoints[s] is not None
            and (role is None or self._roles[s] == role)
        ]

    def send(self, slot: int, payload, nbytes: int):
        """Process: DMA startup then transmit on a slot.

        With ``specs.dma_memory_traffic`` on, the DMA's reads steal
        word-port cycles *concurrently* with the wire transfer (the
        port is ~17× faster than the wire, so the wire still paces the
        message; the CP feels the stolen cycles).
        """
        endpoint = self.endpoint(slot)
        yield self.engine.timeout(self.dma_startup_ns)
        self.dma_transfers += 1
        stealer = None
        if self._dma_active():
            stealer = self.engine.process(
                self._steal_port_cycles(nbytes),
                name=f"{self.name}-dma-read",
            )
        message = yield from endpoint.sublink.send_from(
            endpoint, payload, nbytes
        )
        if stealer is not None:
            yield stealer
        return message

    def recv(self, slot: int):
        """Process: next message arriving on a slot.

        With DMA memory traffic on, the adapter's writes into memory
        steal port cycles before the message is handed to software.
        """
        endpoint = self.endpoint(slot)
        message = yield self.endpoint(slot).inbox.get()
        if self._dma_active():
            yield from self._steal_port_cycles(message.nbytes)
        return message

    def transfer_ns(self, nbytes: int) -> int:
        """Predicted uncontended one-message time."""
        frame = self.ports[0].frame
        return self.dma_startup_ns + frame.transfer_ns(nbytes)

    def __repr__(self):
        wired = len(self.wired_slots())
        return f"<NodeLinkSet {self.name!r} wired={wired}/{self.slots}>"


def connect(set_a: NodeLinkSet, slot_a: int, set_b: NodeLinkSet,
            slot_b: int, role: str, name=None) -> FabricSublink:
    """Wire one sublink between two nodes' slots."""
    endpoint_a = set_a.make_endpoint(slot_a, role)
    endpoint_b = set_b.make_endpoint(slot_b, role)
    return FabricSublink(
        endpoint_a, endpoint_b,
        name=name or f"{set_a.name}.{slot_a}<->{set_b.name}.{slot_b}",
    )
