"""Bit-serial framing of the inter-node links.

Paper §II "Communications": "Every 8-bit byte is sent with two
synchronization bits and one stop bit, and requires two acknowledge
bits from the receiver.  This results in a maximum unidirectional
bandwidth of over 0.5 MB/s per link."

We model the wire cost of a data byte as 13 bit-times (8 data + 2 sync
+ 1 stop + 2 ack — the ack path is pipelined with the next byte on the
real hardware, but its bit-times still bound the sustained rate).  At
the 7.5 Mbit/s bit rate this gives ≈0.577 MB/s, i.e. "over 0.5 MB/s";
the *measured* figure is produced by experiment E2, not asserted.
"""

from dataclasses import dataclass

from repro.core.specs import NS_PER_S
from repro.events.engine import slow_kernel_requested


@dataclass(frozen=True)
class FrameSpec:
    """Framing parameters of one serial link."""

    bit_rate: int
    data_bits: int = 8
    sync_bits: int = 2
    stop_bits: int = 1
    ack_bits: int = 2

    def __post_init__(self):
        if self.bit_rate <= 0:
            raise ValueError("bit rate must be positive")
        if min(self.data_bits, self.sync_bits, self.stop_bits,
               self.ack_bits) < 0 or self.data_bits == 0:
            raise ValueError("invalid framing bit counts")
        # Memoized wire-time lookup (the dataclass is frozen, so the
        # cache and the precomputed ns factor are smuggled in via
        # object.__setattr__).  transfer_ns() sits on every DMA/frame
        # hot path and transfer sizes repeat heavily.  REPRO_SLOW_KERNEL
        # (read at construction, like the event kernel) disables the
        # memo so the reference run prices every call at full cost.
        object.__setattr__(
            self, "_ns_factor", self.bits_per_byte * NS_PER_S
        )
        object.__setattr__(
            self, "_transfer_cache", None if slow_kernel_requested() else {}
        )

    @property
    def bits_per_byte(self) -> int:
        """Wire bits consumed per data byte (13 in the paper's framing)."""
        return self.data_bits + self.sync_bits + self.stop_bits + self.ack_bits

    @property
    def overhead_fraction(self) -> float:
        """Fraction of wire time that is not payload (5/13)."""
        return 1 - self.data_bits / self.bits_per_byte

    def transfer_ns(self, nbytes: int) -> int:
        """Wire time for ``nbytes`` data bytes, rounded to whole ns."""
        cache = self._transfer_cache
        if cache is None:  # reference kernel: recompute per call
            if nbytes < 0:
                raise ValueError("negative byte count")
            num = nbytes * self.bits_per_byte * NS_PER_S
            return (num + self.bit_rate // 2) // self.bit_rate
        ns = cache.get(nbytes)
        if ns is None:
            if nbytes < 0:
                raise ValueError("negative byte count")
            num = nbytes * self._ns_factor
            ns = (num + self.bit_rate // 2) // self.bit_rate
            if len(cache) < 8192:  # bound the memo for huge sweeps
                cache[nbytes] = ns
        return ns

    @property
    def effective_mb_s(self) -> float:
        """Payload bandwidth after framing (bytes/s ÷ 1e6)."""
        return self.bit_rate / self.bits_per_byte / 1e6

    @classmethod
    def from_specs(cls, specs) -> "FrameSpec":
        """Build from :class:`~repro.core.specs.TSeriesSpecs`."""
        return cls(
            bit_rate=specs.link_bit_rate,
            data_bits=specs.link_data_bits,
            sync_bits=specs.link_sync_bits,
            stop_bits=specs.link_stop_bits,
            ack_bits=specs.link_ack_bits,
        )
