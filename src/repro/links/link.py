"""Serial links: one bidirectional point-to-point connection.

A :class:`SerialLink` is two independent wires (one per direction),
each carrying framed bytes at the link bit rate.  Each end is a
:class:`LinkEnd` owned by one device (a node's link adapter or a
system board); sending acquires the outgoing wire for the message's
framed duration and delivers the payload into the peer end's inbox at
completion.

The links themselves know nothing of sublinks or DMA — those are the
adapter's business (:mod:`repro.links.sublink`,
:mod:`repro.links.dma`).
"""

from repro.events import Mutex, Store
from repro.links.frame import FrameSpec


class Wire:
    """One direction of a link: serialised, framed, counted."""

    def __init__(self, engine, frame: FrameSpec, name: str):
        self.engine = engine
        self.frame = frame
        self.name = name
        self._busy = Mutex(engine, name=f"{name}-wire")
        #: Payload bytes moved.
        self.bytes_moved = 0
        #: Total ns the wire was transmitting.
        self.busy_ns = 0
        #: Messages carried.
        self.messages = 0

    def transmit(self, nbytes: int):
        """Process: occupy the wire for ``nbytes`` framed bytes."""
        duration = self.frame.transfer_ns(nbytes)
        with self._busy.request() as req:
            yield req
            yield self.engine.timeout(duration)
        self.bytes_moved += nbytes
        self.busy_ns += duration
        self.messages += 1
        return duration

    def measured_mb_s(self) -> float:
        """Payload bytes per elapsed simulated time, in MB/s."""
        if self.engine.now == 0:
            return 0.0
        return self.bytes_moved / self.engine.now * 1000.0

    def utilization(self) -> float:
        """Busy fraction of elapsed time."""
        if self.engine.now == 0:
            return 0.0
        return self.busy_ns / self.engine.now


class Message:
    """A payload in flight: what was sent, how big, when, over what."""

    __slots__ = ("payload", "nbytes", "sent_at", "delivered_at", "sublink",
                 "corrupted")

    def __init__(self, payload, nbytes, sent_at, delivered_at, sublink=None,
                 corrupted=False):
        self.payload = payload
        self.nbytes = nbytes
        self.sent_at = sent_at
        self.delivered_at = delivered_at
        self.sublink = sublink
        #: True when the frame was mangled in flight (injected link
        #: fault).  The payload object is delivered unchanged — the
        #: flag models a failed frame checksum, which is what a real
        #: receiver sees; reliable transports NAK and retry on it.
        self.corrupted = corrupted

    def __repr__(self):
        return (
            f"<Message {self.nbytes}B sent={self.sent_at} "
            f"delivered={self.delivered_at}>"
        )


class LinkEnd:
    """One device's handle on a link."""

    def __init__(self, link, side: int):
        self.link = link
        self.side = side
        self.engine = link.engine
        #: Incoming messages (unbounded: the receiver's memory buffers).
        self.inbox = Store(link.engine, name=f"{link.name}[{side}]-inbox")
        #: Device this end is attached to (set by the owner; metadata).
        self.owner = None

    @property
    def peer(self) -> "LinkEnd":
        """The other end of the link."""
        return self.link.ends[1 - self.side]

    @property
    def tx_wire(self) -> Wire:
        """The wire this end transmits on."""
        return self.link.wires[self.side]

    @property
    def rx_wire(self) -> Wire:
        """The wire this end receives from."""
        return self.link.wires[1 - self.side]

    def send(self, payload, nbytes: int, sublink: int = None):
        """Process: transmit ``payload`` (accounted as ``nbytes`` data
        bytes) and deliver it to the peer's inbox on completion."""
        if nbytes < 0:
            raise ValueError("negative message size")
        sent_at = self.engine.now
        yield from self.tx_wire.transmit(nbytes)
        message = Message(
            payload, nbytes, sent_at, self.engine.now, sublink=sublink
        )
        yield self.peer.inbox.put(message)
        return message

    def recv(self):
        """Process: take the next message from this end's inbox."""
        message = yield self.inbox.get()
        return message

    def __repr__(self):
        return f"<LinkEnd {self.link.name}[{self.side}]>"


class SerialLink:
    """A bidirectional link: two wires, two ends."""

    def __init__(self, engine, specs, name="link"):
        self.engine = engine
        self.name = name
        self.frame = FrameSpec.from_specs(specs)
        self.wires = (
            Wire(engine, self.frame, f"{name}.0to1"),
            Wire(engine, self.frame, f"{name}.1to0"),
        )
        self.ends = (LinkEnd(self, 0), LinkEnd(self, 1))

    def end(self, side: int) -> LinkEnd:
        """The end on ``side`` (0 or 1)."""
        return self.ends[side]

    def __repr__(self):
        return f"<SerialLink {self.name!r}>"
