"""Sublink multiplexing.

Paper §II: "Each link is multiplexed four ways to provide a total of
16 bidirectional sublinks per node.  With software support, these
sublinks divide the available bandwidth."

A :class:`SubLinkMux` splits one :class:`~repro.links.link.LinkEnd`
into four :class:`SubLink` endpoints.  Sublinks share the underlying
wire at message granularity (the FIFO wire arbiter interleaves their
messages), which divides bandwidth among active sublinks exactly as
the paper describes.  Each sublink has its own inbox, so receivers
demultiplex for free.
"""

from repro.events import Store
from repro.links.link import Message

#: Sublink roles per the paper's budget: 2 system + 2 I/O + 12 compute.
ROLE_SYSTEM = "system"
ROLE_IO = "io"
ROLE_COMPUTE = "compute"


class SubLink:
    """One of the four multiplexed channels of a link end."""

    def __init__(self, mux, index: int, role: str = ROLE_COMPUTE):
        self.mux = mux
        self.index = index
        self.role = role
        self.engine = mux.end.engine
        self.inbox = Store(
            self.engine, name=f"{mux.end.link.name}[{mux.end.side}].{index}"
        )
        #: Payload bytes sent on this sublink.
        self.bytes_sent = 0
        self.messages_sent = 0

    @property
    def end(self):
        """The link end this sublink rides on."""
        return self.mux.end

    def peer_sublink(self) -> "SubLink":
        """The matching sublink at the other end of the link."""
        peer_mux = getattr(self.end.peer, "mux", None)
        if peer_mux is None:
            raise RuntimeError(
                f"peer of {self.end!r} has no sublink mux attached"
            )
        return peer_mux.sublinks[self.index]

    def send(self, payload, nbytes: int):
        """Process: transmit over the shared wire, deliver to the peer
        sublink's inbox at completion."""
        if nbytes < 0:
            raise ValueError("negative message size")
        sent_at = self.engine.now
        yield from self.end.tx_wire.transmit(nbytes)
        message = Message(
            payload, nbytes, sent_at, self.engine.now, sublink=self.index
        )
        yield self.peer_sublink().inbox.put(message)
        self.bytes_sent += nbytes
        self.messages_sent += 1
        return message

    def recv(self):
        """Process: take the next message addressed to this sublink."""
        message = yield self.inbox.get()
        return message

    def __repr__(self):
        return (
            f"<SubLink {self.end.link.name}[{self.end.side}].{self.index} "
            f"role={self.role}>"
        )


class SubLinkMux:
    """The four-way multiplexer on one link end."""

    WAYS = 4

    def __init__(self, end, roles=None):
        roles = roles or [ROLE_COMPUTE] * self.WAYS
        if len(roles) != self.WAYS:
            raise ValueError(f"a link multiplexes {self.WAYS} ways")
        self.end = end
        self.sublinks = [SubLink(self, i, role) for i, role in enumerate(roles)]
        end.mux = self  # registered so the peer can route deliveries

    def sublink(self, index: int) -> SubLink:
        """Sublink by position (0..3)."""
        return self.sublinks[index]

    def by_role(self, role: str):
        """All sublinks with a given role."""
        return [s for s in self.sublinks if s.role == role]

    def __repr__(self):
        return f"<SubLinkMux on {self.end!r}>"
