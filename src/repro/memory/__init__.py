"""The node memory subsystem: dual-ported DRAM, vector registers, parity.

Public surface:

* :class:`DualPortMemory` — the 1 MB store with its two timed ports.
* :class:`VectorRegister` — a row-sized register feeding the vector unit.
* :class:`MemoryPort` — one port's arbitration and bandwidth counters.
* :class:`ParityStore`, :class:`ParityError` — byte parity and fault
  injection.
* :class:`AddressError` — bounds/alignment violations.
"""

from repro.memory.dram import (
    AddressError,
    BANK_A,
    BANK_B,
    DualPortMemory,
)
from repro.memory.parity import ParityError, ParityStore, parity_of
from repro.memory.ports import MemoryPort
from repro.memory.vector_register import VectorRegister

__all__ = [
    "AddressError",
    "BANK_A",
    "BANK_B",
    "DualPortMemory",
    "MemoryPort",
    "ParityError",
    "ParityStore",
    "VectorRegister",
    "parity_of",
]
