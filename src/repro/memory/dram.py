"""The 1 MB dual-ported, dual-bank node memory.

Organisation (paper §II "Memory"):

* The control processor and the links see one bank of 256K 32-bit
  words through the **random-access port** (400 ns per word, 10 MB/s).
* The vector unit sees the same storage as two banks of 1024-byte
  rows — 256 rows in bank A, 768 in bank B — through the **row port**
  (400 ns per full row, 2560 MB/s).
* The banks matter because one vector operation reads one operand row
  from each bank per cycle and writes results into either, which is
  what lets SAXPY run at full arithmetic speed with no cache.

Addresses are byte addresses; word accesses must be 4-byte aligned
(the CP is byte-addressable but the memory port moves words).
"""

import numpy as np

from repro.memory.parity import ParityStore
from repro.memory.ports import MemoryPort
from repro.memory.vector_register import VectorRegister

BANK_A = "A"
BANK_B = "B"


class AddressError(Exception):
    """Out-of-range or misaligned access."""


class DualPortMemory:
    """One node's memory with both ports and parity."""

    def __init__(self, engine, specs):
        self.engine = engine
        self.specs = specs
        self.size = specs.memory_bytes
        self.row_bytes = specs.row_bytes
        self._data = np.zeros(self.size, dtype=np.uint8)
        self.parity = ParityStore(self.size)
        self.word_port = MemoryPort(
            engine, specs.word_access_ns, 4, name="random-access"
        )
        self.row_port = MemoryPort(
            engine, specs.row_access_ns, specs.row_bytes, name="row"
        )
        #: First byte of bank B (bank A is the low 64K words).
        self.bank_a_bytes = specs.bank_a_words * 4

    # -- geometry ----------------------------------------------------------

    @property
    def rows(self) -> int:
        """Total rows (1024 for a 1 MB node)."""
        return self.size // self.row_bytes

    def bank_of_row(self, row: int) -> str:
        """Which bank a row lives in ('A' for the first 256)."""
        self._check_row(row)
        return BANK_A if row * self.row_bytes < self.bank_a_bytes else BANK_B

    def bank_of_address(self, address: int) -> str:
        """Which bank a byte address lives in."""
        if not 0 <= address < self.size:
            raise AddressError(f"address {address:#x} out of range")
        return BANK_A if address < self.bank_a_bytes else BANK_B

    def rows_in_bank(self, bank: str) -> range:
        """Row numbers belonging to a bank."""
        split = self.bank_a_bytes // self.row_bytes
        if bank == BANK_A:
            return range(0, split)
        if bank == BANK_B:
            return range(split, self.rows)
        raise ValueError(f"unknown bank {bank!r}")

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise AddressError(f"row {row} out of range (0..{self.rows - 1})")

    def _check_word(self, address: int) -> None:
        if address % 4:
            raise AddressError(f"unaligned word address {address:#x}")
        if not 0 <= address <= self.size - 4:
            raise AddressError(f"address {address:#x} out of range")

    # -- untimed (behavioural) access -------------------------------------
    # Used for test setup, checkpoint capture, and inside timed operations
    # after the port delay has been charged.

    def peek_word(self, address: int) -> int:
        """Read a 32-bit word without advancing time (checks parity)."""
        self._check_word(address)
        raw = self._data[address:address + 4]
        self.parity.check(address, raw)
        return int(raw.view(np.uint32)[0])

    def poke_word(self, address: int, value: int) -> None:
        """Write a 32-bit word without advancing time (updates parity)."""
        self._check_word(address)
        raw = np.array([value & 0xFFFFFFFF], dtype=np.uint32).view(np.uint8)
        self._data[address:address + 4] = raw
        self.parity.update(address, raw)

    def peek_bytes(self, address: int, count: int) -> np.ndarray:
        """Read raw bytes (copy) without advancing time."""
        if count < 0 or not 0 <= address <= self.size - count:
            raise AddressError(f"range {address:#x}+{count} out of bounds")
        raw = self._data[address:address + count]
        self.parity.check(address, raw)
        return raw.copy()

    def poke_bytes(self, address: int, data) -> None:
        """Write raw bytes without advancing time."""
        data = np.asarray(data, dtype=np.uint8)
        if not 0 <= address <= self.size - data.size:
            raise AddressError(
                f"range {address:#x}+{data.size} out of bounds"
            )
        self._data[address:address + data.size] = data
        self.parity.update(address, data)

    def read_row(self, row: int) -> np.ndarray:
        """Read a full row (copy) without advancing time."""
        self._check_row(row)
        start = row * self.row_bytes
        raw = self._data[start:start + self.row_bytes]
        self.parity.check(start, raw)
        return raw.copy()

    def write_row(self, row: int, data) -> None:
        """Write a full row without advancing time."""
        self._check_row(row)
        data = np.asarray(data, dtype=np.uint8)
        if data.size != self.row_bytes:
            raise ValueError(f"a row is {self.row_bytes} bytes")
        start = row * self.row_bytes
        self._data[start:start + self.row_bytes] = data
        self.parity.update(start, data)

    def snapshot(self) -> np.ndarray:
        """Copy of the whole memory (checkpointing)."""
        return self._data.copy()

    def restore(self, image) -> None:
        """Overwrite the whole memory from a snapshot image."""
        image = np.asarray(image, dtype=np.uint8)
        if image.size != self.size:
            raise ValueError("snapshot image size mismatch")
        self._data[:] = image
        self.parity.update(0, image)

    # -- timed access (processes) -------------------------------------------

    def word_read(self, address: int):
        """Process: timed 32-bit read through the random-access port."""
        self._check_word(address)
        yield from self.word_port.access(1)
        return self.peek_word(address)

    def word_write(self, address: int, value: int):
        """Process: timed 32-bit write through the random-access port."""
        self._check_word(address)
        yield from self.word_port.access(1)
        self.poke_word(address, value)

    def words_read(self, address: int, count: int):
        """Process: timed sequential read of ``count`` words."""
        if count < 0:
            raise ValueError("negative count")
        self._check_word(address)
        if count:
            self._check_word(address + 4 * (count - 1))
        yield from self.word_port.access(count)
        raw = self.peek_bytes(address, 4 * count)
        return raw.view(np.uint32).copy()

    def words_write(self, address: int, values):
        """Process: timed sequential write of 32-bit words."""
        values = np.asarray(values, dtype=np.uint32)
        self._check_word(address)
        if values.size:
            self._check_word(address + 4 * (values.size - 1))
        yield from self.word_port.access(values.size)
        self.poke_bytes(address, values.view(np.uint8))

    def row_to_register(self, row: int, register: VectorRegister):
        """Process: load a row into a vector register (one row access)."""
        self._check_row(row)
        yield from self.row_port.access(1)
        # Same semantics as ``read_row`` + ``load_bytes``, minus the
        # intermediate copy: the register copies out of the live slice.
        start = row * self.row_bytes
        raw = self._data[start:start + self.row_bytes]
        self.parity.check(start, raw)
        register.load_bytes(raw, row=row)

    def register_to_row(self, register: VectorRegister, row: int):
        """Process: store a vector register into a row."""
        self._check_row(row)
        yield from self.row_port.access(1)
        self.write_row(row, register.raw)

    def row_move(self, src_row: int, dst_row: int, register: VectorRegister):
        """Process: move a whole row via a register (two row accesses).

        This is the paper's physical-data-movement idiom: "moving data
        physically, rather than keeping linked lists of pointers to
        vectors, as for example, in pivoting rows of a matrix."
        """
        yield from self.row_to_register(src_row, register)
        yield from self.register_to_row(register, dst_row)

    def __repr__(self):
        return f"<DualPortMemory {self.size} bytes, {self.rows} rows>"
