"""Byte parity for the node memory.

Paper §II: "There is one parity bit for each byte in memory."  We keep
the parity bits in a side array, update them on every write, and check
them on reads.  :meth:`ParityStore.inject_error` flips a stored parity
bit, which the checkpoint/recovery experiments use to model the memory
faults that snapshots guard against.
"""

import numpy as np

from repro.events.engine import turbo_kernel_requested

#: Parity lookup: _PARITY_LUT[b] is the even-parity bit of byte b.
_PARITY_LUT = np.array(
    [bin(b).count("1") & 1 for b in range(256)], dtype=np.uint8
)


class ParityError(Exception):
    """A read observed a byte whose stored parity bit does not match."""

    def __init__(self, address):
        super().__init__(f"parity error at byte address {address:#x}")
        self.address = address


def parity_of(data: np.ndarray) -> np.ndarray:
    """Even-parity bit of each byte in ``data``."""
    return _PARITY_LUT[np.asarray(data, dtype=np.uint8)]


class ParityStore:
    """The parity side-array for a block of ``size`` bytes.

    Two equivalent representations, chosen at construction from the
    kernel tier (same sampling contract as the event engine):

    * **eager** (reference/fast) — a real bit array: every write
      recomputes parity, every read recomputes and compares, exactly
      like the hardware.
    * **flip-set** (turbo and vector) — only the *discrepancies* are
      stored.
      :meth:`check` always receives the bytes currently held by the
      memory (that is how :class:`~repro.memory.dram.DualPortMemory`
      calls it), so without injected faults the stored parity equals
      the parity of the data by construction and a check can never
      fire.  The set holds the addresses whose stored parity bit has
      been flipped by :meth:`inject_error` and not yet overwritten; a
      check fails exactly on the lowest flipped address in its range —
      bit-identical outcomes at O(1) per access instead of O(n).
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("parity store needs a positive size")
        self.size = size
        self._bits = None if turbo_kernel_requested() else np.zeros(
            size, dtype=np.uint8
        )
        self._flips = set()
        #: Count of parity checks performed (reads).
        self.checks = 0
        #: Count of errors detected.
        self.errors_detected = 0

    def update(self, start: int, data: np.ndarray) -> None:
        """Recompute parity for bytes written at ``start``."""
        if self._bits is None:
            flips = self._flips
            if flips:
                # A write restores correct parity over its span.
                end = start + len(data)
                self._flips = {a for a in flips if not start <= a < end}
            return
        data = np.asarray(data, dtype=np.uint8)
        self._bits[start:start + len(data)] = _PARITY_LUT[data]

    def check(self, start: int, data: np.ndarray) -> None:
        """Verify bytes read at ``start``; raises :class:`ParityError`."""
        self.checks += 1
        if self._bits is None:
            flips = self._flips
            if not flips:
                return
            end = start + len(data)
            bad = [a for a in flips if start <= a < end]
            if not bad:
                return
            self.errors_detected += 1
            raise ParityError(min(bad))
        data = np.asarray(data, dtype=np.uint8)
        expected = self._bits[start:start + len(data)]
        actual = _PARITY_LUT[data]
        # Byte-compare first: the match path is a pair of memcpys and a
        # memcmp, far cheaper than materialising an index array.
        if expected.tobytes() == actual.tobytes():
            return
        bad = np.nonzero(expected != actual)[0]
        self.errors_detected += 1
        raise ParityError(start + int(bad[0]))

    def inject_error(self, address: int) -> None:
        """Flip the stored parity bit for one byte (fault injection)."""
        if not 0 <= address < self.size:
            raise ValueError(f"address {address:#x} outside parity store")
        if self._bits is None:
            # Flipping twice restores the correct bit, exactly as ^= 1.
            if address in self._flips:
                self._flips.discard(address)
            else:
                self._flips.add(address)
            return
        self._bits[address] ^= 1

    def __repr__(self):
        return f"<ParityStore size={self.size} checks={self.checks}>"
