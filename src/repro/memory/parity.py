"""Byte parity for the node memory.

Paper §II: "There is one parity bit for each byte in memory."  We keep
the parity bits in a side array, update them on every write, and check
them on reads.  :meth:`ParityStore.inject_error` flips a stored parity
bit, which the checkpoint/recovery experiments use to model the memory
faults that snapshots guard against.
"""

import numpy as np

#: Parity lookup: _PARITY_LUT[b] is the even-parity bit of byte b.
_PARITY_LUT = np.array(
    [bin(b).count("1") & 1 for b in range(256)], dtype=np.uint8
)


class ParityError(Exception):
    """A read observed a byte whose stored parity bit does not match."""

    def __init__(self, address):
        super().__init__(f"parity error at byte address {address:#x}")
        self.address = address


def parity_of(data: np.ndarray) -> np.ndarray:
    """Even-parity bit of each byte in ``data``."""
    return _PARITY_LUT[np.asarray(data, dtype=np.uint8)]


class ParityStore:
    """The parity side-array for a block of ``size`` bytes."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("parity store needs a positive size")
        self.size = size
        self._bits = np.zeros(size, dtype=np.uint8)
        #: Count of parity checks performed (reads).
        self.checks = 0
        #: Count of errors detected.
        self.errors_detected = 0

    def update(self, start: int, data: np.ndarray) -> None:
        """Recompute parity for bytes written at ``start``."""
        data = np.asarray(data, dtype=np.uint8)
        self._bits[start:start + len(data)] = _PARITY_LUT[data]

    def check(self, start: int, data: np.ndarray) -> None:
        """Verify bytes read at ``start``; raises :class:`ParityError`."""
        data = np.asarray(data, dtype=np.uint8)
        self.checks += 1
        expected = self._bits[start:start + len(data)]
        actual = _PARITY_LUT[data]
        # Byte-compare first: the match path is a pair of memcpys and a
        # memcmp, far cheaper than materialising an index array.
        if expected.tobytes() == actual.tobytes():
            return
        bad = np.nonzero(expected != actual)[0]
        self.errors_detected += 1
        raise ParityError(start + int(bad[0]))

    def inject_error(self, address: int) -> None:
        """Flip the stored parity bit for one byte (fault injection)."""
        if not 0 <= address < self.size:
            raise ValueError(f"address {address:#x} outside parity store")
        self._bits[address] ^= 1

    def __repr__(self):
        return f"<ParityStore size={self.size} checks={self.checks}>"
