"""Memory ports: the two sides of the dual-ported DRAM.

The random-access port serves the control processor and the link
adapter one 32-bit word per 400 ns; the row port serves the vector
registers one 1024-byte row per 400 ns.  The two ports are independent
(that is the point of the dual-ported design), but each port serialises
its own clients — modelled with a capacity-1 resource per port.
"""

from repro.events import Mutex


class MemoryPort:
    """One port: FIFO-arbitrated, fixed time per access.

    Attributes
    ----------
    accesses : int
        Completed accesses (for measured-bandwidth experiments).
    busy_ns : int
        Total time the port spent transferring.
    """

    def __init__(self, engine, access_ns: int, bytes_per_access: int,
                 name: str):
        if access_ns <= 0 or bytes_per_access <= 0:
            raise ValueError("port timing/width must be positive")
        self.engine = engine
        self.access_ns = access_ns
        self.bytes_per_access = bytes_per_access
        self.name = name
        self._arbiter = Mutex(engine, name=f"{name}-port")
        self.accesses = 0
        self.busy_ns = 0

    def access(self, count: int = 1):
        """Process: perform ``count`` back-to-back accesses."""
        if count < 0:
            raise ValueError("negative access count")
        if count == 0:
            return 0
        duration = count * self.access_ns
        req = self._arbiter.request()
        try:
            yield req
            yield self.engine.timeout(duration)
        finally:
            req.release()
        self.accesses += count
        self.busy_ns += duration
        return duration

    @property
    def peak_bandwidth_mb_s(self) -> float:
        """Bytes per access over access time, in MB/s."""
        return self.bytes_per_access / self.access_ns * 1000.0

    def measured_bandwidth_mb_s(self) -> float:
        """Bytes actually moved per elapsed simulated time."""
        if self.engine.now == 0:
            return 0.0
        return (self.accesses * self.bytes_per_access) / self.engine.now * 1000.0

    def utilization(self) -> float:
        """Busy fraction of elapsed simulated time."""
        if self.engine.now == 0:
            return 0.0
        return self.busy_ns / self.engine.now

    def __repr__(self):
        return f"<MemoryPort {self.name!r} accesses={self.accesses}>"
