"""Vector registers.

Paper §II: "A vector register can be loaded with an entire 1024-byte
row of memory, in parallel, in the same time that it would have taken
to read or write a single 32-bit word."  A register therefore holds
one row — 256 elements in 32-bit mode or 128 in 64-bit mode — and is
the only data source/sink of the arithmetic unit.
"""

import numpy as np

from repro.fpu.vector_forms import dtype_for


class VectorRegister:
    """One row-sized register (1024 bytes by default)."""

    def __init__(self, size_bytes: int, index: int = 0):
        if size_bytes <= 0 or size_bytes % 8:
            raise ValueError("register size must be a positive multiple of 8")
        self.size_bytes = size_bytes
        self.index = index
        self._data = np.zeros(size_bytes, dtype=np.uint8)
        #: Row number most recently loaded from, or None.
        self.loaded_row = None

    def capacity(self, precision: int) -> int:
        """Element count in the given mode (256 for 32-bit, 128 for 64)."""
        return self.size_bytes // (precision // 8)

    @property
    def raw(self) -> np.ndarray:
        """The backing bytes (a live view)."""
        return self._data

    def load_bytes(self, data, row: int = None) -> None:
        """Fill the register from raw bytes (a row's contents)."""
        data = np.asarray(data, dtype=np.uint8)
        if data.size != self.size_bytes:
            raise ValueError(
                f"register holds {self.size_bytes} bytes, got {data.size}"
            )
        self._data[:] = data
        self.loaded_row = row

    def elements(self, precision: int, count: int = None) -> np.ndarray:
        """A float view of the contents (copy, in element type)."""
        dtype = dtype_for(precision)
        view = self._data.view(dtype)
        if count is None:
            return view.copy()
        if not 0 <= count <= view.size:
            raise ValueError(f"count {count} exceeds register capacity")
        return view[:count].copy()

    def set_elements(self, values, precision: int) -> None:
        """Write float elements starting at element 0.

        Shorter-than-capacity writes leave the tail untouched, the way
        a partial vector result would.
        """
        dtype = dtype_for(precision)
        values = np.asarray(values, dtype=dtype)
        view = self._data.view(dtype)
        if values.size > view.size:
            raise ValueError(
                f"{values.size} elements exceed register capacity {view.size}"
            )
        view[:values.size] = values
        self.loaded_row = None

    def __repr__(self):
        return f"<VectorRegister {self.index} row={self.loaded_row}>"
