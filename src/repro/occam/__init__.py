"""Occam-style programming model: SEQ / PAR / ALT over channels.

Public surface:

* :func:`Seq`, :func:`Par`, :func:`Alt`, :func:`seq_for`,
  :func:`par_for` — process combinators.
* :class:`Guard`, :class:`TimeoutGuard`, :data:`SKIP` — ALT guards.
* :class:`OccamProgram` — a process network with named channels.

Channels themselves are :class:`repro.events.Channel` (rendezvous,
unbuffered — Occam semantics).
"""

from repro.occam.combinators import (
    Alt,
    Guard,
    Par,
    SKIP,
    Seq,
    TimeoutGuard,
    par_for,
    seq_for,
)
from repro.occam.program import OccamProgram
from repro.occam import compiler

__all__ = [
    "Alt",
    "Guard",
    "OccamProgram",
    "Par",
    "SKIP",
    "Seq",
    "TimeoutGuard",
    "compiler",
    "par_for",
    "seq_for",
]
