"""Whole-program ahead-of-time block translation.

The turbo and vector kernel tiers translate basic blocks lazily: the
first execution of a hot PC pays for decoding and packing the chain
run (see :meth:`repro.cp.cpu.CPU._translate_block`).  This module
pre-compiles the *entire* code image once — chains tile the code store
linearly, so a single forward scan visits every chain boundary the
interpreter could ever dispatch from — and serializes the resulting
block tables to a JSON artifact keyed by the code's SHA-256.

A simulator that loads the artifact starts warm: every translatable
PC hits the imported table, the runtime translator is never invoked
(``block_translations`` stays 0), and execution is bit-identical to a
cold run because :meth:`CPU.import_blocks` rebuilds each record from
the same decode identities and cost tables runtime translation uses.
``CPU.patch_code`` treats imported blocks exactly like translated
ones — a patch invalidates every block whose span overlaps the write
and clears the negative cache, so self-modifying programs stay
correct after a warm start.

Artifacts live in a cache directory (``.repro-aot/`` by default, or
``$REPRO_AOT_DIR``), one file per code image::

    .repro-aot/<sha256 of code>.json
"""

import hashlib
import json
import os

from repro.cp.cpu import CPU
from repro.events.engine import force_kernel

#: Default artifact directory, relative to the working directory.
DEFAULT_AOT_DIR = ".repro-aot"


def aot_dir() -> str:
    """The artifact cache directory (``$REPRO_AOT_DIR`` overrides)."""
    return os.environ.get("REPRO_AOT_DIR", DEFAULT_AOT_DIR)


def code_digest(code) -> str:
    return hashlib.sha256(bytes(code)).hexdigest()


def artifact_path(code, directory=None) -> str:
    """Where the artifact for ``code`` lives under ``directory``."""
    return os.path.join(directory or aot_dir(),
                        f"{code_digest(code)}.json")


def precompile_cpu(cpu: CPU) -> int:
    """Translate every chain boundary in ``cpu``'s code store.

    Chains tile the code linearly (``_decode`` advances one full
    prefix chain per call), so scanning forward from PC 0 and
    attempting a block at every boundary yields a superset of the
    blocks lazy runtime translation could ever build — each one
    identical to its lazy twin, because translation is a pure function
    of the code image.  Undecodable bytes end the scan: the runtime
    falls back to byte-wise execution there, and so does a warm-
    started CPU (those PCs simply stay untranslated).

    Returns the number of blocks in the table afterwards.
    """
    pc = 0
    size = len(cpu.code)
    while pc < size:
        entry = cpu._decode(pc)
        if entry is None:
            break
        if pc not in cpu._blocks and pc not in cpu._unblocked:
            cpu._translate_block(pc)
        pc = entry[2]
    return len(cpu._blocks)


def compile_blocks(code) -> dict:
    """Build the serialized whole-program block table for ``code``.

    Runs on a scratch turbo-tier CPU regardless of the ambient kernel
    tier, so artifact production is deterministic.
    """
    with force_kernel(tier="turbo"):
        cpu = CPU(code)
        precompile_cpu(cpu)
        return cpu.export_blocks()


def save_artifact(code, directory=None) -> str:
    """Compile ``code``'s block table and write the artifact.

    Returns the artifact path.  Idempotent: recompiling the same code
    rewrites the same content at the same digest-keyed path.
    """
    path = artifact_path(code, directory)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    payload = compile_blocks(code)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
    os.replace(tmp, path)
    return path


def load_artifact(code, directory=None):
    """The stored payload for ``code``, or None when absent/unreadable.

    A corrupt or stale file is treated as a cache miss (the caller
    recompiles); :meth:`CPU.import_blocks` still re-verifies the code
    digest and every chain before installing anything.
    """
    path = artifact_path(code, directory)
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if payload.get("code_sha256") != code_digest(code):
        return None
    return payload


def warm_start(cpu: CPU, directory=None, write_back=True) -> bool:
    """Attach the AOT block table for ``cpu``'s code.

    On a cache hit the artifact is imported (no runtime translation);
    on a miss the table is compiled ahead of time now, written back
    (unless ``write_back`` is false), and imported.  Returns True on
    an artifact-cache hit.  Only meaningful on block-translating
    tiers; raises ``CPUError`` elsewhere, matching ``import_blocks``.
    """
    payload = load_artifact(cpu.code, directory)
    hit = payload is not None
    if payload is None:
        if write_back:
            save_artifact(cpu.code, directory)
            payload = load_artifact(cpu.code, directory)
        if payload is None:
            payload = compile_blocks(bytes(cpu.code))
    cpu.import_blocks(payload)
    return hit
