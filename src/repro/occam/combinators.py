"""The Occam process combinators: SEQ, PAR, ALT and replicators.

Paper §II "Control": "Occam differs from languages like Pascal or C in
that it directly provides for the execution of parallel, communicating
processes. ... A single process can be constructed from a collection
by specifying sequential, alternative or parallel execution of the
constituent processes."

This module is that programming model as a Python DSL over the event
kernel.  A *process body* is a generator (yielding kernel events);
combinators compose bodies into bodies:

* ``Seq(a, b, c)`` — run bodies one after another.
* ``Par(engine, a, b, c)`` — run bodies concurrently; finish when all do.
* ``Alt(engine, guards)`` — wait for the first ready guard; run its
  branch.  Scan order is priority order (this is Occam's PRI ALT —
  plain ALT's nondeterminism is resolved deterministically, which is a
  legal refinement).
* ``seq_for`` / ``par_for`` — the replicated forms (SEQ i = 0 FOR n).

Channels are :class:`repro.events.Channel` — rendezvous, unbuffered,
exactly Occam's semantics.
"""

from repro.events import Channel

#: Sentinel result of a SKIP guard.
SKIP = object()


def Seq(*bodies):
    """Sequential composition: a body that runs each body in turn.

    Returns the list of the bodies' return values.
    """
    def _seq():
        results = []
        for body in bodies:
            result = yield from body
            results.append(result)
        return results

    return _seq()


def Par(engine, *bodies):
    """Parallel composition: all bodies run concurrently.

    Finishes when every body has finished (the PAR barrier); returns
    their results in order.
    """
    def _par():
        procs = [engine.process(body, name="par-branch") for body in bodies]
        collected = yield engine.all_of(procs)
        return [collected[i] for i in range(len(procs))]

    return _par()


class Guard:
    """One ALT alternative: an input guard with an optional branch.

    Parameters
    ----------
    channel : Channel
        The channel this guard watches.
    branch : callable, optional
        Called with the received value.  If it returns a generator, the
        generator is run as the branch body and its return value is the
        ALT's result; otherwise the return value itself is.
    enabled : bool
        A disabled guard never fires (Occam's boolean guard).
    """

    def __init__(self, channel, branch=None, enabled=True):
        if not isinstance(channel, Channel):
            raise TypeError("Guard needs a rendezvous Channel")
        self.channel = channel
        self.branch = branch
        self.enabled = enabled


class TimeoutGuard:
    """An ALT alternative that fires after a delay (Occam's timer guard)."""

    def __init__(self, delay, branch=None, enabled=True):
        if delay < 0:
            raise ValueError("negative timeout guard delay")
        self.delay = delay
        self.branch = branch
        self.enabled = enabled


def Alt(engine, guards):
    """Alternation: wait until some guard is ready, run its branch.

    Returns ``(index, result)`` where ``index`` is the position of the
    selected guard and ``result`` is the branch's return value (the
    received message if there is no branch; SKIP for a timeout guard
    with no branch).

    Guards are scanned in order at each wake-up, so earlier guards have
    priority (PRI ALT).
    """
    guards = list(guards)
    if not guards:
        raise ValueError("ALT needs at least one guard")
    if not any(g.enabled for g in guards):
        raise ValueError("ALT with no enabled guard would block forever")

    def _run_branch(guard, value):
        if guard.branch is None:
            return iter(())  # empty body
        result = guard.branch(value)
        if hasattr(result, "send") and hasattr(result, "throw"):
            return result
        def _const():
            return result
            yield  # pragma: no cover
        return _const()

    def _alt():
        timeout_event = None
        timeout_index = None
        for i, g in enumerate(guards):
            if isinstance(g, TimeoutGuard) and g.enabled:
                timeout_event = engine.timeout(g.delay)
                timeout_index = i
                break  # the earliest timer guard wins; later ones can't
        while True:
            # Scan for a ready channel guard, priority order.
            for i, g in enumerate(guards):
                if isinstance(g, TimeoutGuard):
                    if (g.enabled and timeout_index == i
                            and timeout_event.processed):
                        result = yield from _run_branch(g, SKIP)
                        return (i, result if g.branch else SKIP)
                    continue
                if g.enabled and g.channel.ready:
                    value = yield g.channel.get()
                    result = yield from _run_branch(g, value)
                    return (i, result if g.branch else value)
            # Nothing ready: sleep until an arrival (or the timer).
            waits = [
                g.channel.watch()
                for g in guards
                if isinstance(g, Guard) and g.enabled
            ]
            if timeout_event is not None and not timeout_event.processed:
                waits.append(timeout_event)
            yield engine.any_of(waits)

    return _alt()


def seq_for(count, body_factory):
    """Replicated SEQ: run ``body_factory(i)`` for i in 0..count-1."""
    def _seq():
        results = []
        for i in range(count):
            result = yield from body_factory(i)
            results.append(result)
        return results

    return _seq()


def par_for(engine, count, body_factory):
    """Replicated PAR: run ``body_factory(i)`` concurrently for all i."""
    return Par(engine, *[body_factory(i) for i in range(count)])
