"""A miniature Occam compiler targeting the control processor.

Paper §II: "All features of the microprocessor are directly accessed
through a high-level language called Occam."  This module compiles an
Occam-like AST — SEQ, PAR, WHILE, IF, assignment, and channel
input/output — to the CP's assembly, which then assembles and runs on
the :class:`~repro.cp.cpu.CPU`.  PAR lowers to STARTP/ENDP with a
join-counter workspace (the transputer's process model), and channel
communication lowers to the IN/OUT soft-channel rendezvous.

Deliberate simplifications, documented: variables (including
replicator indices) are statically allocated *global* words — Occam's
allocation is static too, but we skip scoping, so concurrent PAR
branches must use distinct variable names (real Occam enforces the
equivalent usage rules statically).  Channel OUT staging and computed
channel addresses *are* workspace-local (per process), so parked
rendezvous are safe.  The three-register evaluation stack is respected
by spilling nested subexpressions to temporaries.  Replicated SEQ/PAR
and channel arrays (runtime-indexed; one writer and one reader per
element, as Occam requires) are supported; timers and ALT are not (the
DSL in :mod:`repro.occam.combinators` covers ALT at process level).

Example::

    ast = Seq([
        Assign("x", Num(0)),
        Assign("i", Num(10)),
        While(Gt(Var("i"), Num(0)), Seq([
            Assign("x", Add(Var("x"), Var("i"))),
            Assign("i", Sub(Var("i"), Num(1))),
        ])),
    ])
    cpu = run_occam(ast)
    read_variable(cpu, "x")   # 55
"""

import itertools
from dataclasses import dataclass, field
from typing import List

from repro.cp.assembler import assemble
from repro.cp.cpu import CPU
from repro.cp.scheduler import NOT_PROCESS

# ---------------------------------------------------------------- AST --


@dataclass(frozen=True)
class Num:
    """Integer literal."""
    value: int


@dataclass(frozen=True)
class Var:
    """Named variable reference."""
    name: str


@dataclass(frozen=True)
class BinOp:
    """Binary operation; ``op`` is an ISA mnemonic (add, sub, mul,
    div, rem, and, or, xor, shl, shr, gt)."""
    op: str
    left: object
    right: object


def Add(a, b):
    return BinOp("add", a, b)


def Sub(a, b):
    return BinOp("sub", a, b)


def Mul(a, b):
    return BinOp("mul", a, b)


def Div(a, b):
    return BinOp("div", a, b)


def Mod(a, b):
    return BinOp("rem", a, b)


def Gt(a, b):
    return BinOp("gt", a, b)


@dataclass(frozen=True)
class Eq:
    """Equality test (compiles to eqc / sub+eqc)."""
    left: object
    right: object


@dataclass(frozen=True)
class ArrayRef:
    """``name[index]`` — word-array subscript (no bounds checking, as
    on the real machine without explicit checks)."""
    name: str
    index: object


@dataclass(frozen=True)
class AssignArray:
    """``name[index] := expr``."""
    name: str
    index: object
    expr: object


@dataclass(frozen=True)
class Skip:
    """SKIP: do nothing."""


@dataclass(frozen=True)
class Assign:
    """``name := expr``."""
    name: str
    expr: object


@dataclass(frozen=True)
class Seq:
    """Sequential composition."""
    body: List[object] = field(default_factory=list)


@dataclass(frozen=True)
class Par:
    """Parallel composition (STARTP/ENDP join)."""
    body: List[object] = field(default_factory=list)


@dataclass(frozen=True)
class While:
    """``WHILE cond: body`` (cond ≠ 0 means true)."""
    cond: object
    body: object


@dataclass(frozen=True)
class If:
    """``IF cond THEN then ELSE orelse``."""
    cond: object
    then: object
    orelse: object = Skip()


@dataclass(frozen=True)
class RepSeq:
    """``SEQ name = start FOR count`` — replicated SEQ.

    Lowered to a runtime loop over the index variable."""
    name: str
    start: object
    count: object
    body: object


@dataclass(frozen=True)
class RepPar:
    """``PAR name = start FOR count`` — replicated PAR.

    ``start`` and ``count`` must be literals (the branch set is fixed
    at compile time, as in Occam); the index is substituted as a
    constant into each branch."""
    name: str
    start: int
    count: int
    body: object


@dataclass(frozen=True)
class ChanRef:
    """``name[index]`` — an element of a channel array.

    The index may be a runtime expression: the IN/OUT instructions
    take the channel *address* from the evaluation stack, so channel
    selection can be computed (each element is its own rendezvous
    word — Occam's usual one-writer/one-reader rule still applies per
    element)."""
    name: str
    index: object


@dataclass(frozen=True)
class In:
    """``chan ? var`` — channel input into a variable.

    ``channel`` is a name (scalar channel) or a :class:`ChanRef`."""
    channel: object
    name: str


@dataclass(frozen=True)
class Out:
    """``chan ! expr`` — channel output of an expression."""
    channel: object
    expr: object


def _as_expr(value):
    """Accept ints or expression nodes for replicator bounds."""
    return Num(value) if isinstance(value, int) else value


def substitute(node, name: str, value: int):
    """Replace every ``Var(name)`` with ``Num(value)`` in a subtree.

    Used to expand replicated PAR: each branch gets its index as a
    compile-time constant.
    """
    if isinstance(node, Var):
        return Num(value) if node.name == name else node
    if isinstance(node, (Num, Skip)):
        return node
    if isinstance(node, BinOp):
        return BinOp(node.op, substitute(node.left, name, value),
                     substitute(node.right, name, value))
    if isinstance(node, Eq):
        return Eq(substitute(node.left, name, value),
                  substitute(node.right, name, value))
    if isinstance(node, ArrayRef):
        return ArrayRef(node.name, substitute(node.index, name, value))
    if isinstance(node, Assign):
        return Assign(node.name, substitute(node.expr, name, value))
    if isinstance(node, AssignArray):
        return AssignArray(node.name,
                           substitute(node.index, name, value),
                           substitute(node.expr, name, value))
    if isinstance(node, Seq):
        return Seq([substitute(c, name, value) for c in node.body])
    if isinstance(node, Par):
        return Par([substitute(c, name, value) for c in node.body])
    if isinstance(node, While):
        return While(substitute(node.cond, name, value),
                     substitute(node.body, name, value))
    if isinstance(node, If):
        return If(substitute(node.cond, name, value),
                  substitute(node.then, name, value),
                  substitute(node.orelse, name, value))
    if isinstance(node, ChanRef):
        return ChanRef(node.name, substitute(node.index, name, value))
    if isinstance(node, In):
        return In(substitute(node.channel, name, value)
                  if isinstance(node.channel, ChanRef) else node.channel,
                  node.name)
    if isinstance(node, Out):
        return Out(substitute(node.channel, name, value)
                   if isinstance(node.channel, ChanRef) else node.channel,
                   substitute(node.expr, name, value))
    if isinstance(node, RepSeq):
        if node.name == name:
            return node  # inner replicator shadows the index
        return RepSeq(node.name,
                      substitute(_as_expr(node.start), name, value),
                      substitute(_as_expr(node.count), name, value),
                      substitute(node.body, name, value))
    if isinstance(node, RepPar):
        if node.name == name:
            return node
        return RepPar(node.name, node.start, node.count,
                      substitute(node.body, name, value))
    raise CompileError(f"cannot substitute into {node!r}")


# ------------------------------------------------------------ compiler --

#: Memory map (byte addresses in the CPU's data memory).
VARIABLE_BASE = 0x1000       # named variables, one word each
TEMP_BASE = 0x2000           # expression spill slots
CHANNEL_BASE = 0x3000        # soft channel words
JOIN_BASE = 0x4000           # PAR join workspaces (16 words each)
JOIN_STRIDE = 64             # ENDP hands the join address to the last
                             # finisher as its workspace pointer, so a
                             # slot must absorb positive stl offsets
                             # (≤ +12) and a neighbour's below-wptr
                             # channel spills (−16..−4) without overlap
ARRAY_BASE = 0x5000          # word arrays, ARRAY_WORDS each
ARRAY_WORDS = 256            # default array extent (words)
CHAN_ARRAY_BASE = 0x9000     # channel arrays, CHAN_ARRAY_WORDS each
CHAN_ARRAY_WORDS = 64        # default channel-array extent
CHILD_WS_TOP = 0xE000        # child process workspaces, descending


class CompileError(Exception):
    """Unknown construct, operator, or undeclared name misuse."""


class OccamCompiler:
    """One compilation unit.

    ``opt_level`` selects the optimizer pipeline applied to the
    emitted assembly (see :mod:`repro.occam.optimizer`): 0 is the
    naive translation, 1 runs constant folding and dead-code
    elimination, 2 adds workspace-slot reallocation and channel-op
    fusion.  After :meth:`compile`, ``opt_report`` holds the
    optimizer's per-pass statistics (None at ``-O0``).
    """

    def __init__(self, opt_level: int = 0):
        self.opt_level = opt_level
        self.opt_report = None
        self.variables = {}
        self.channels = {}
        self.arrays = {}
        self.channel_arrays = {}
        self._labels = itertools.count()
        self._joins = itertools.count()
        self._children = itertools.count()
        self._temp_high_water = 0
        self._lines = []
        self._deferred = []      # child process bodies, emitted at end

    # -- allocation -----------------------------------------------------

    def variable_address(self, name: str) -> int:
        if name not in self.variables:
            self.variables[name] = VARIABLE_BASE + 4 * len(self.variables)
        return self.variables[name]

    def channel_address(self, name: str) -> int:
        if name not in self.channels:
            self.channels[name] = CHANNEL_BASE + 4 * len(self.channels)
        return self.channels[name]

    def array_base(self, name: str) -> int:
        if name not in self.arrays:
            self.arrays[name] = ARRAY_BASE + 4 * ARRAY_WORDS * \
                len(self.arrays)
        return self.arrays[name]

    def channel_array_base(self, name: str) -> int:
        if name not in self.channel_arrays:
            self.channel_arrays[name] = CHAN_ARRAY_BASE + \
                4 * CHAN_ARRAY_WORDS * len(self.channel_arrays)
        return self.channel_arrays[name]

    def _label(self, stem: str) -> str:
        return f"{stem}_{next(self._labels)}"

    def _emit(self, line: str) -> None:
        self._lines.append(f"    {line}")

    def _emit_label(self, label: str) -> None:
        self._lines.append(f"{label}:")

    # -- expressions -------------------------------------------------------
    # The evaluation stack is three deep; we keep at most two live
    # entries by spilling compound right operands to temp slots.

    def _compile_load(self, node, temp_depth: int) -> None:
        if isinstance(node, Num):
            self._emit(f"ldc {node.value}")
        elif isinstance(node, Var):
            self._emit(f"ldc {self.variable_address(node.name)}")
            self._emit("ldnl 0")
        elif isinstance(node, BinOp):
            self._compile_binop(node, temp_depth)
        elif isinstance(node, Eq):
            self._compile_eq(node, temp_depth)
        elif isinstance(node, ArrayRef):
            self._compile_array_address(node, temp_depth)
            self._emit("ldnl 0")
        else:
            raise CompileError(f"not an expression: {node!r}")

    def _compile_array_address(self, node: ArrayRef, temp_depth: int):
        """Leave the element's byte address in A (base + 4·index)."""
        self._compile_load(node.index, temp_depth)
        self._emit("ldc 2")
        self._emit("shl")           # 4 × index
        self._emit(f"ldc {self.array_base(node.name)}")
        self._emit("add")

    def _is_leaf(self, node) -> bool:
        return isinstance(node, (Num, Var))

    def _temp_address(self, depth: int) -> int:
        self._temp_high_water = max(self._temp_high_water, depth + 1)
        return TEMP_BASE + 4 * depth

    def _compile_binop(self, node: BinOp, temp_depth: int) -> None:
        if node.op not in ("add", "sub", "mul", "div", "rem", "and",
                           "or", "xor", "shl", "shr", "gt"):
            raise CompileError(f"unknown operator {node.op!r}")
        if self._is_leaf(node.right):
            self._compile_load(node.left, temp_depth)   # → B after next
            self._compile_load(node.right, temp_depth)  # → A
        else:
            # Spill the compound right side to a temp first; the left
            # subtree's own spills must stay above this slot.
            temp = self._temp_address(temp_depth)
            self._compile_load(node.right, temp_depth + 1)
            self._emit(f"ldc {temp}")
            self._emit("stnl 0")
            self._compile_load(node.left, temp_depth + 1)
            self._emit(f"ldc {temp}")
            self._emit("ldnl 0")
        self._emit(node.op)

    def _compile_eq(self, node: Eq, temp_depth: int) -> None:
        if isinstance(node.right, Num):
            self._compile_load(node.left, temp_depth)
            self._emit(f"eqc {node.right.value}")
        else:
            self._compile_binop(BinOp("sub", node.left, node.right),
                                temp_depth)
            self._emit("eqc 0")

    def _stage_channel(self, spec):
        """Resolve a channel spec; returns an int address (scalar) or
        the temp slot holding a computed channel-array address."""
        if isinstance(spec, str):
            return ("direct", self.channel_address(spec))
        if isinstance(spec, ChanRef):
            # Compute the element address into workspace local 3
            # (per-process, like the OUT staging slot).
            self._compile_load(spec.index, 0)
            self._emit("ldc 2")
            self._emit("shl")
            self._emit(f"ldc {self.channel_array_base(spec.name)}")
            self._emit("add")
            self._emit("stl 3")
            return ("indirect", 3)
        raise CompileError(f"not a channel: {spec!r}")

    def _load_channel(self, staged) -> None:
        kind, value = staged
        if kind == "direct":
            self._emit(f"ldc {value}")
        else:
            self._emit(f"ldl {value}")

    # -- processes -----------------------------------------------------------

    def _compile_process(self, node) -> None:
        if isinstance(node, Skip):
            return
        if isinstance(node, Assign):
            self._compile_load(node.expr, 0)
            self._emit(f"ldc {self.variable_address(node.name)}")
            self._emit("stnl 0")
            return
        if isinstance(node, AssignArray):
            # Address first (spilled), then the value; stnl needs
            # A=address, B=value.
            slot = self._temp_address(9)  # dedicated address slot
            self._compile_array_address(
                ArrayRef(node.name, node.index), 0
            )
            self._emit(f"ldc {slot}")
            self._emit("stnl 0")
            self._compile_load(node.expr, 0)
            self._emit(f"ldc {slot}")
            self._emit("ldnl 0")
            self._emit("stnl 0")
            return
        if isinstance(node, Seq):
            for child in node.body:
                self._compile_process(child)
            return
        if isinstance(node, While):
            top = self._label("while")
            done = self._label("wend")
            self._emit_label(top)
            self._compile_load(node.cond, 0)
            self._emit(f"cj {done}")
            # cj not taken pops the condition; taken leaves a 0 in A,
            # which is harmless (dead value).
            self._compile_process(node.body)
            self._emit(f"j {top}")
            self._emit_label(done)
            return
        if isinstance(node, If):
            orelse = self._label("else")
            done = self._label("fi")
            self._compile_load(node.cond, 0)
            self._emit(f"cj {orelse}")
            self._compile_process(node.then)
            self._emit(f"j {done}")
            self._emit_label(orelse)
            self._compile_process(node.orelse)
            self._emit_label(done)
            return
        if isinstance(node, Out):
            # Stage the value in the *workspace* (local slot 2): a
            # parked OUT's data pointer must stay valid while other
            # processes run, so staging must be per-process, not
            # global.
            chan_slot = self._stage_channel(node.channel)
            self._compile_load(node.expr, 0)
            self._emit("stl 2")
            self._emit("ldlp 2")
            self._load_channel(chan_slot)
            self._emit("ldc 4")
            self._emit("out")
            return
        if isinstance(node, In):
            chan_slot = self._stage_channel(node.channel)
            self._emit(f"ldc {self.variable_address(node.name)}")
            self._load_channel(chan_slot)
            self._emit("ldc 4")
            self._emit("in")
            return
        if isinstance(node, Par):
            self._compile_par(node)
            return
        if isinstance(node, RepSeq):
            # SEQ i = start FOR count  ⇒  i := start; WHILE count'
            # (compiled as a down-counter in a hidden variable).
            counter = f"{node.name}.rep"
            self._compile_process(Seq([
                Assign(node.name, _as_expr(node.start)),
                Assign(counter, _as_expr(node.count)),
                While(Gt(Var(counter), Num(0)), Seq([
                    node.body,
                    Assign(node.name, Add(Var(node.name), Num(1))),
                    Assign(counter, Sub(Var(counter), Num(1))),
                ])),
            ]))
            return
        if isinstance(node, RepPar):
            if not isinstance(node.start, int) or \
                    not isinstance(node.count, int):
                raise CompileError(
                    "replicated PAR needs literal start/count"
                )
            branches = [
                substitute(node.body, node.name, node.start + k)
                for k in range(node.count)
            ]
            self._compile_par(Par(branches))
            return
        raise CompileError(f"not a process: {node!r}")

    def _compile_par(self, node: Par) -> None:
        branches = list(node.body)
        if not branches:
            return
        if len(branches) == 1:
            self._compile_process(branches[0])
            return
        join = JOIN_BASE + JOIN_STRIDE * next(self._joins)
        cont = self._label("parend")
        # Join setup: successor address and branch count.
        self._emit(f"ldc {cont}")
        self._emit(f"ldc {join}")
        self._emit("stnl 0")
        self._emit(f"ldc {len(branches)}")
        self._emit(f"ldc {join}")
        self._emit("stnl 1")
        # Start branches 1..n−1 as child processes.
        child_labels = []
        for branch in branches[1:]:
            index = next(self._children)
            label = f"child_{index}"
            wptr = CHILD_WS_TOP - 256 * index
            child_labels.append((label, branch))
            self._emit(f"ldc {label}")
            self._emit(f"ldc {wptr}")
            self._emit("startp")
        # The parent runs branch 0 inline, then joins; whichever
        # participant finishes last continues at `cont`.
        self._compile_process(branches[0])
        self._emit(f"ldc {join}")
        self._emit("endp")
        self._emit_label(cont)
        # Children are emitted out of line (after the main flow).
        for label, branch in child_labels:
            self._deferred.append((label, branch, join))

    def _emit_deferred(self) -> None:
        while self._deferred:
            label, branch, join = self._deferred.pop(0)
            self._emit_label(label)
            self._compile_process(branch)
            self._emit(f"ldc {join}")
            self._emit("endp")

    # -- top level --------------------------------------------------------

    def compile(self, program) -> str:
        """Compile an AST to assembly source."""
        self._lines = []
        # Prologue: initialise every channel word to NotProcess.
        body_marker = len(self._lines)
        self._compile_process(program)
        self._emit("terminate")
        self._emit_deferred()
        prologue = []
        for name in self.channels:
            prologue.append("    mint")
            prologue.append(f"    ldc {self.channels[name]}")
            prologue.append("    stnl 0")
        for name, base in self.channel_arrays.items():
            # Initialise every element word to NotProcess via a loop.
            counter = TEMP_BASE + 4 * 12  # prologue-only scratch
            label = self._label("chaninit")
            prologue.append(f"    ldc {CHAN_ARRAY_WORDS - 1}")
            prologue.append(f"    ldc {counter}")
            prologue.append("    stnl 0")
            prologue.append(f"{label}:")
            prologue.append("    mint")
            prologue.append(f"    ldc {counter}")
            prologue.append("    ldnl 0")
            prologue.append("    ldc 2")
            prologue.append("    shl")
            prologue.append(f"    ldc {base}")
            prologue.append("    add")
            prologue.append("    stnl 0")
            prologue.append(f"    ldc {counter}")
            prologue.append("    ldnl 0")
            prologue.append("    adc -1")
            prologue.append("    dup")
            prologue.append(f"    ldc {counter}")
            prologue.append("    stnl 0")
            prologue.append("    adc 1")
            prologue.append(f"    cj {label}_done")
            prologue.append(f"    j {label}")
            prologue.append(f"{label}_done:")
        del body_marker
        source = "\n".join(prologue + self._lines) + "\n"
        if self.opt_level:
            from repro.occam.optimizer import optimize

            source, self.opt_report = optimize(source,
                                               level=self.opt_level)
        return source


def compile_occam(program, opt_level: int = 0) -> str:
    """Compile an AST; returns the assembly source."""
    return OccamCompiler(opt_level=opt_level).compile(program)


def run_occam(program, max_steps: int = 2_000_000, opt_level: int = 0):
    """Compile, assemble, and run an AST; returns (cpu, compiler).

    Read results back with :func:`read_variable`.
    """
    compiler = OccamCompiler(opt_level=opt_level)
    source = compiler.compile(program)
    assembled = assemble(source)
    cpu = CPU(assembled.code)
    cpu.run(max_steps=max_steps)
    return cpu, compiler


def read_variable(cpu, compiler, name: str) -> int:
    """Fetch a compiled variable's final value (signed)."""
    from repro.cp.cpu import to_signed

    if name not in compiler.variables:
        raise CompileError(f"no such variable {name!r}")
    return to_signed(cpu.memory.read_word(compiler.variables[name]))


def variables_snapshot(cpu, compiler) -> dict:
    """Final values of every compiled variable, as a JSON-able dict.

    Hidden replicator down-counters (``name.rep``) are included — they
    are architectural state too, and the conformance oracle compares
    everything the kernel tiers could disagree on.
    """
    from repro.cp.cpu import to_signed

    return {
        name: to_signed(cpu.memory.read_word(address))
        for name, address in sorted(compiler.variables.items())
    }


def read_array(cpu, compiler, name: str, count: int) -> list:
    """Fetch the first ``count`` elements of a compiled array."""
    from repro.cp.cpu import to_signed

    if name not in compiler.arrays:
        raise CompileError(f"no such array {name!r}")
    base = compiler.arrays[name]
    return [
        to_signed(cpu.memory.read_word(base + 4 * i))
        for i in range(count)
    ]
