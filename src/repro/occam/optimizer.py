"""Optimizing pass pipeline over compiled Occam assembly.

The Occam compiler emits naive, pattern-regular CP-ISA assembly; this
module rewrites that assembly into tighter code through four
independently toggleable passes, run in a fixed order:

* ``fold`` — constant folding: constant binary/unary ops collapse to a
  single ``ldc`` (re-minimizing the PFIX/NFIX prefix chain, since the
  assembler re-encodes the folded literal minimally), constant
  conditions turn ``cj`` into ``j`` or delete the branch, constant
  spills to the compiler's global temp slots are forwarded to their
  reloads and dead spill stores are deleted.
* ``dce`` — dead-code elimination: CFG reachability from the entry
  block and every address-taken label (child process entries, PAR join
  continuations), dropping unreachable blocks — the blocks constant
  branch folding strands — plus jump-to-next elimination.
* ``realloc`` — workspace-slot reallocation: global ``TEMP_BASE``
  expression spills are rewritten to per-process workspace locals
  (``stl``/``ldl``), using the ``JOIN_STRIDE`` safety analysis from
  the PAR join layout to pick provably free slots.
* ``fuse`` — channel-op fusion: the five-instruction staged OUT
  sequence collapses to ``outword`` when the value is a leaf, saving
  the staging store/pointer dance per communication.

Soundness contract
------------------

The passes assume (and only claim correctness for) code with the
Occam compiler's discipline:

* at most two live evaluation-stack entries at any point, so ``Creg``
  never carries a meaningful value — rewrites are free to change it;
* expression code is straight-line (no labels or branches inside an
  expression), and every global temp slot is stored before it is
  loaded within one expression;
* out-of-bounds array subscripts that alias compiler-internal spill
  slots are undefined behaviour (the machine has no bounds checks);
* the final evaluation-stack registers and temp-slot memory are dead
  at every statement boundary — only variables, channel traffic, the
  error flag, and termination behaviour are observable program
  results.

Within that contract every pass preserves observable behaviour: same
channel rendezvous in the same order, same final variable values, same
error-flag state, same termination (the optimized program simply gets
there in fewer instructions and cycles).  The conformance harness
(:mod:`repro.testing.gen_occam`) enforces this differentially on every
fuzz case across all four kernel tiers.
"""

import re

from repro.cp.assembler import assemble
from repro.occam.compiler import JOIN_STRIDE, TEMP_BASE

MIN_INT = -(1 << 31)
MAX_INT = (1 << 31) - 1

#: The compiler's global expression-spill slots (see TEMP_BASE in
#: :mod:`repro.occam.compiler`): 16 words is far above the deepest
#: spill the expression grammar can produce (depth ≤ 12 incl. the
#: prologue scratch slot).
TEMP_SLOTS = 16
TEMP_LIMIT = TEMP_BASE + 4 * TEMP_SLOTS

#: Workspace slots provably free in every workspace shape the compiler
#: creates.  A PAR join workspace is the tightest: ``join+0/+4`` hold
#: the successor/count words, ``stl 2``/``stl 3`` stage OUT values and
#: computed channel addresses, and the *next* join's below-wptr channel
#: parking words occupy the top four words of the 64-byte stride.
#: That leaves words 4..11 — eight slots — free everywhere (child and
#: top-level workspaces are 256 bytes apart, so they are looser).
REALLOC_SLOT_BASE = 4
REALLOC_SLOT_COUNT = 8
assert 4 * (REALLOC_SLOT_BASE + REALLOC_SLOT_COUNT) <= JOIN_STRIDE - 16

#: Instructions after which control does not fall through.
_NO_FALLTHROUGH = ("j", "terminate", "endp", "stopp", "ret", "gcall")

#: Instructions that can move control or switch processes: any cached
#: constant-spill knowledge dies here (another process may run, or we
#: re-enter from elsewhere).
_FLOW_BARRIERS = ("j", "cj", "call", "ret", "gcall", "in", "out",
                  "outword", "startp", "endp", "stopp", "runp",
                  "terminate")


class Ins:
    """One instruction: mnemonic plus operand (int, label name, or
    None for secondaries)."""

    __slots__ = ("mn", "arg")

    def __init__(self, mn, arg=None):
        self.mn = mn
        self.arg = arg

    def __repr__(self):
        return f"Ins({self.mn!r}, {self.arg!r})"

    def __eq__(self, other):
        return (isinstance(other, Ins) and other.mn == self.mn
                and other.arg == self.arg)


class Label:
    """A label definition."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"Label({self.name!r})"

    def __eq__(self, other):
        return isinstance(other, Label) and other.name == self.name


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$")


class OptimizeError(Exception):
    """The source is not in the shape the compiler emits."""


def parse(source: str):
    """Parse compiler-emitted assembly into a list of items."""
    items = []
    for raw in source.splitlines():
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match:
            items.append(Label(match.group(1)))
            line = match.group(2).strip()
            if not line:
                continue
        parts = line.split(None, 1)
        arg = None
        if len(parts) > 1:
            text = parts[1].strip()
            try:
                arg = int(text, 0)
            except ValueError:
                arg = text
        items.append(Ins(parts[0].lower(), arg))
    return items


def render(items) -> str:
    """Render items back to assembly source."""
    lines = []
    for item in items:
        if isinstance(item, Label):
            lines.append(f"{item.name}:")
        elif item.arg is None:
            lines.append(f"    {item.mn}")
        else:
            lines.append(f"    {item.mn} {item.arg}")
    return "\n".join(lines) + "\n"


def _count_instructions(items) -> int:
    return sum(1 for item in items if isinstance(item, Ins))


# -------------------------------------------------- constant arithmetic --


def _u(value: int) -> int:
    return value & 0xFFFFFFFF


def _s(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


def _checked(result: int):
    """Signed result, or None when the CPU would set the error flag
    (folding must preserve error semantics, so those stay unfolded)."""
    return result if MIN_INT <= result <= MAX_INT else None


def fold_binary(mn: str, b: int, a: int):
    """The constant result of ``b <mn> a`` exactly as the CPU computes
    it, or None when unfoldable (error-flag effects, unknown op)."""
    if mn == "add":
        return _checked(b + a)
    if mn == "sub":
        return _checked(b - a)
    if mn == "mul":
        return _checked(b * a)
    if mn == "diff":
        return _s(_u(b) - _u(a))
    if mn == "div":
        if a == 0 or (a == -1 and b == MIN_INT):
            return None  # error flag + zero result: keep the op
        return int(b / a)  # matches _sec_div's float truncation
    if mn == "rem":
        if a == 0:
            return None
        return b - int(b / a) * a
    if mn == "gt":
        return 1 if b > a else 0
    if mn == "and":
        return _s(_u(b) & _u(a))
    if mn == "or":
        return _s(_u(b) | _u(a))
    if mn == "xor":
        return _s(_u(b) ^ _u(a))
    if mn == "shl":
        return _s(_u(_u(b) << a)) if 0 <= a < 32 else 0
    if mn == "shr":
        return _s(_u(b) >> a) if 0 <= a < 32 else 0
    return None


def _const_of(item):
    """The constant an instruction pushes, or None."""
    if isinstance(item, Ins):
        if item.mn == "ldc" and isinstance(item.arg, int):
            return item.arg
        if item.mn == "mint":
            return MIN_INT
    return None


def _is(item, mn, arg=...):
    return (isinstance(item, Ins) and item.mn == mn
            and (arg is ... or item.arg == arg))


def _is_temp_addr(value) -> bool:
    return isinstance(value, int) and TEMP_BASE <= value < TEMP_LIMIT


# ------------------------------------------------------ pass 1: folding --


def _fold_window(items):
    """One peephole sweep; returns (items, changed)."""
    out = []
    changed = False
    i = 0
    n = len(items)
    while i < n:
        item = items[i]
        a = items[i + 1] if i + 1 < n else None
        b = items[i + 2] if i + 2 < n else None
        ca = _const_of(item)
        # ldc x; ldc y; binop  →  ldc result
        if ca is not None and a is not None and b is not None:
            cb = _const_of(a)
            if cb is not None and isinstance(b, Ins) and b.arg is None:
                result = fold_binary(b.mn, ca, cb)
                if result is not None:
                    out.append(Ins("ldc", result))
                    i += 3
                    changed = True
                    continue
        if ca is not None and a is not None and isinstance(a, Ins):
            # ldc x; eqc n / adc n / not  →  ldc result
            if a.mn == "eqc" and isinstance(a.arg, int):
                out.append(Ins("ldc", 1 if ca == a.arg else 0))
                i += 2
                changed = True
                continue
            if a.mn == "adc" and isinstance(a.arg, int):
                result = _checked(ca + a.arg)
                if result is not None:
                    out.append(Ins("ldc", result))
                    i += 2
                    changed = True
                    continue
            if a.mn == "not":
                out.append(Ins("ldc", _s(~_u(ca))))
                i += 2
                changed = True
                continue
            # Constant conditions: cj taken leaves a dead 0 in A (the
            # compiler's conditions are consumed by the branch), so a
            # false constant becomes an unconditional jump; a true
            # constant pops itself (cj not-taken pops A) so both
            # instructions vanish.
            if a.mn == "cj":
                if ca == 0:
                    out.append(Ins("j", a.arg))
                else:
                    pass  # never taken: drop ldc and cj entirely
                i += 2
                changed = True
                continue
        out.append(item)
        i += 1
    return out, changed


def _forward_spills(items):
    """Forward constant temp-slot spills to their reloads.

    Within a basic block, after ``ldc v; ldc T; stnl 0`` (a constant
    spill to global temp slot T), a later ``ldc T; ldnl 0`` reload is
    replaced by ``ldc v``.  Knowledge dies at labels and at any
    instruction that can transfer control or switch processes, and a
    store through a *computed* address (a runtime array subscript)
    kills every tracked slot — it could alias any of them.
    """
    out = []
    changed = False
    consts = {}
    i = 0
    n = len(items)
    while i < n:
        item = items[i]
        if isinstance(item, Label):
            consts.clear()
            out.append(item)
            i += 1
            continue
        nxt = items[i + 1] if i + 1 < n else None
        if _is(item, "ldc") and isinstance(item.arg, int):
            if _is(nxt, "stnl", 0):
                if _is_temp_addr(item.arg):
                    value = _const_of(out[-1]) if out else None
                    if value is not None:
                        consts[item.arg] = value
                    else:
                        consts.pop(item.arg, None)
                else:
                    # Constant store elsewhere; only kills an aliasing
                    # tracked slot (exact address known).
                    consts.pop(item.arg, None)
                out.append(item)
                out.append(nxt)
                i += 2
                continue
            if _is(nxt, "ldnl", 0) and item.arg in consts:
                out.append(Ins("ldc", consts[item.arg]))
                i += 2
                changed = True
                continue
            out.append(item)
            i += 1
            continue
        if _is(item, "stnl") or _is(item, "ldnlp"):
            # Store through a computed address (or address arithmetic
            # that precedes one): could alias any temp slot.
            consts.clear()
        elif isinstance(item, Ins) and item.mn in _FLOW_BARRIERS:
            consts.clear()
        out.append(item)
        i += 1
    return out, changed


def _crossing_temps(items):
    """Temp addresses whose value flows between basic blocks.

    A temp loaded in some block before any store to it in that block
    receives its value from another block (only the prologue's
    channel-array init counter does this); such slots must keep their
    global homes and their stores.
    """
    crossing = set()
    stored = set()
    i = 0
    n = len(items)
    while i < n:
        item = items[i]
        if isinstance(item, Label):
            stored.clear()
            i += 1
            continue
        nxt = items[i + 1] if i + 1 < n else None
        if _is(item, "ldc") and _is_temp_addr(item.arg):
            if _is(nxt, "stnl", 0):
                stored.add(item.arg)
                i += 2
                continue
            if _is(nxt, "ldnl", 0):
                if item.arg not in stored:
                    crossing.add(item.arg)
                i += 2
                continue
        elif isinstance(item, Ins) and item.mn in _FLOW_BARRIERS:
            stored.clear()
        i += 1
    return crossing


def _delete_dead_spills(items):
    """Delete constant spills whose every reload was forwarded away.

    A spill ``ldc v; ldc T; stnl 0`` is dead when no reload of T
    remains before the next store to T in the same block (expression
    spills are strictly block-local store-before-load) — unless T is a
    block-crossing slot, or a computed load that could alias it
    survives in the window.
    """
    crossing = _crossing_temps(items)
    out = []
    changed = False
    i = 0
    n = len(items)
    while i < n:
        item = items[i]
        a = items[i + 1] if i + 1 < n else None
        b = items[i + 2] if i + 2 < n else None
        if (_const_of(item) is not None and _is(a, "ldc")
                and _is_temp_addr(a.arg) and _is(b, "stnl", 0)
                and a.arg not in crossing
                and _spill_is_dead(items, i + 3, a.arg)):
            i += 3
            changed = True
            continue
        out.append(item)
        i += 1
    return out, changed


def _spill_is_dead(items, start, temp):
    """True when no load of ``temp`` (direct or possibly-aliasing
    computed) occurs from ``start`` until the next store to it or the
    end of the block."""
    i = start
    n = len(items)
    while i < n:
        item = items[i]
        if isinstance(item, Label):
            return True
        nxt = items[i + 1] if i + 1 < n else None
        if _is(item, "ldc") and item.arg == temp:
            if _is(nxt, "stnl", 0):
                return True
            if _is(nxt, "ldnl", 0):
                return False
        elif _is(item, "ldnl") and not (_is(items[i - 1], "ldc")
                                        if i else False):
            return False  # computed load could alias the slot
        elif isinstance(item, Ins) and item.mn in _NO_FALLTHROUGH:
            return True
        i += 1
    return True


def fold_constants(items):
    """Constant folding + spill forwarding to a fixpoint."""
    while True:
        items, c1 = _fold_window(items)
        items, c2 = _forward_spills(items)
        items, c3 = _delete_dead_spills(items)
        if not (c1 or c2 or c3):
            return items


# ---------------------------------------------------------- pass 2: DCE --


def _split_blocks(items):
    """Split into basic blocks; returns (blocks, label_block) where
    each block is a list of items and label_block maps label → block
    index."""
    blocks = []
    label_block = {}
    current = []

    def flush():
        if current:
            blocks.append(list(current))
            current.clear()

    for item in items:
        if isinstance(item, Label):
            if any(isinstance(x, Ins) for x in current):
                flush()
            current.append(item)
            label_block[item.name] = len(blocks)
        else:
            current.append(item)
            if item.mn in _NO_FALLTHROUGH or item.mn in ("cj", "call"):
                flush()
    flush()
    return blocks, label_block


def eliminate_dead_code(items):
    """Drop blocks unreachable from the entry, then jumps-to-next.

    Reachability follows branch targets, fallthrough, and — crucially
    for the Occam compiler's output — *address-taken* labels: a
    ``ldc child_k`` or ``ldc parend_k`` in a reachable block makes the
    child process entry / join continuation reachable, even though no
    branch instruction names it.
    """
    blocks, label_block = _split_blocks(items)
    if not blocks:
        return items
    reachable = set()
    work = [0]
    while work:
        index = work.pop()
        if index in reachable or index >= len(blocks):
            continue
        reachable.add(index)
        block = blocks[index]
        falls = True
        for item in block:
            if not isinstance(item, Ins):
                continue
            if isinstance(item.arg, str) and item.arg in label_block:
                work.append(label_block[item.arg])
            if item.mn in _NO_FALLTHROUGH:
                falls = False
        if falls and index + 1 < len(blocks):
            work.append(index + 1)
    out = []
    for index, block in enumerate(blocks):
        if index in reachable:
            out.extend(block)
    # Jump-to-next elimination: a j whose target label immediately
    # follows it (possibly through other labels) is a no-op branch.
    cleaned = []
    for i, item in enumerate(out):
        if _is(item, "j") and isinstance(item.arg, str):
            j = i + 1
            skip = False
            while j < len(out) and isinstance(out[j], Label):
                if out[j].name == item.arg:
                    skip = True
                    break
                j += 1
            if skip:
                continue
        cleaned.append(item)
    return cleaned


# ---------------------------------------- pass 3: workspace reallocation --


def reallocate_workspace(items):
    """Rewrite global temp-slot spills to workspace locals.

    Every temp slot whose accesses are all same-block store-before-load
    pairs (i.e. not block-crossing) is remapped to one of the eight
    provably free workspace words (slots 4..11 — see the JOIN_STRIDE
    analysis at the top of this module):

    * ``ldc T; stnl 0``  →  ``stl s``   (4 bytes → 1, 2 instrs → 1)
    * ``ldc T; ldnl 0``  →  ``ldl s``

    Workspace locals are per-process, which is *stronger* isolation
    than the shared global slots (safe today only because expression
    evaluation cannot be preempted); slots beyond the eight free words
    keep their global homes.
    """
    crossing = _crossing_temps(items)
    used = []
    for item, nxt in zip(items, items[1:]):
        if (_is(item, "ldc") and _is_temp_addr(item.arg)
                and item.arg not in crossing
                and (_is(nxt, "stnl", 0) or _is(nxt, "ldnl", 0))
                and item.arg not in used):
            used.append(item.arg)
    slot_of = {
        temp: REALLOC_SLOT_BASE + index
        for index, temp in enumerate(sorted(used)[:REALLOC_SLOT_COUNT])
    }
    if not slot_of:
        return items
    out = []
    i = 0
    n = len(items)
    while i < n:
        item = items[i]
        nxt = items[i + 1] if i + 1 < n else None
        if _is(item, "ldc") and item.arg in slot_of:
            if _is(nxt, "stnl", 0):
                out.append(Ins("stl", slot_of[item.arg]))
                i += 2
                continue
            if _is(nxt, "ldnl", 0):
                out.append(Ins("ldl", slot_of[item.arg]))
                i += 2
                continue
        out.append(item)
        i += 1
    return out


# ------------------------------------------------- pass 4: channel fusion --


def _leaf_producer(items, end):
    """The start index of a one-value leaf producer ending at ``end``
    (inclusive), or None.  Leaves: ``ldc k`` (constant), ``ldl s``
    (reallocated local), ``ldc addr; ldnl 0`` (variable load) — each
    adds at most one stack entry above the fused channel address."""
    item = items[end]
    if _is(item, "ldc") and isinstance(item.arg, int):
        return end
    if _is(item, "ldl"):
        return end
    if (_is(item, "ldnl", 0) and end > 0
            and _is(items[end - 1], "ldc")
            and isinstance(items[end - 1].arg, int)):
        return end - 1
    return None


_CHILD_LABEL = re.compile(r"^child_\d+$")
_JOIN_LABEL = re.compile(r"^parend_\d+$")


def _fusable_regions(items):
    """Index ranges (start, end) where ``wptr+0`` is provably dead.

    ``outword`` stages its value at ``wptr+0``, so fusion is only
    sound where word 0 of the *executing process's* workspace is dead.
    ENDP is the one instruction the compiler emits that retargets
    wptr — the last branch to finish a PAR continues *at the join
    workspace* — and a join's word 0 holds the live continuation
    address from PAR setup until that ENDP consumes it.  With a PAR
    inside a loop, the loop body re-enters its own setup sitting on
    the join it just finished, so any code downstream of a ``parend``
    continuation label can run with ``wptr+0`` live.

    A process region (program entry, or a ``child_k`` body — children
    are always started on a fresh dedicated workspace whose word 0
    nothing touches) that contains **no** ``parend`` label keeps its
    entry wptr for its whole lifetime, so its word 0 stays dead and
    every OUT in it may fuse.
    """
    regions = []
    start = 0
    for index, item in enumerate(items):
        if isinstance(item, Label) and _CHILD_LABEL.match(item.name):
            regions.append((start, index))
            start = index
    regions.append((start, len(items)))
    return [
        (lo, hi) for lo, hi in regions
        if not any(isinstance(items[k], Label)
                   and _JOIN_LABEL.match(items[k].name)
                   for k in range(lo, hi))
    ]


def fuse_channel_ops(items):
    """Fuse staged OUT sequences into ``outword``.

    The compiler's OUT protocol stages the value in workspace slot 2::

        <value>; stl 2; ldlp 2; <chan>; ldc 4; out

    When the value is a leaf (one stack entry), this becomes::

        <chan>; <value>; outword

    ``outword`` stages the word at ``wptr+0`` instead, which is only
    dead in process regions whose wptr provably never moves off its
    entry workspace — see :func:`_fusable_regions`.  ``<chan>`` is
    ``ldc addr`` for scalar channels or ``ldl 3`` for staged
    channel-array addresses.  Saves three instructions and the staging
    memory round-trip per communication.
    """
    fusable = _fusable_regions(items)
    out = []
    i = 0
    n = len(items)
    while i < n:
        if not any(lo <= i < hi for lo, hi in fusable):
            out.append(items[i])
            i += 1
            continue
        # Match ... P(leaf) stl2 ldlp2 CH ldc4 out  anchored at `out`.
        if (i + 4 < n and _is(items[i + 4], "out")
                and _is(items[i + 3], "ldc", 4)
                and (_is(items[i + 2], "ldc")
                     and isinstance(items[i + 2].arg, int)
                     or _is(items[i + 2], "ldl", 3))
                and _is(items[i + 1], "ldlp", 2)
                and _is(items[i], "stl", 2)):
            start = _leaf_producer(out, len(out) - 1) if out else None
            if start is not None:
                producer = out[start:]
                del out[start:]
                out.append(items[i + 2])      # channel address
                out.extend(producer)          # the word
                out.append(Ins("outword"))
                i += 5
                continue
        out.append(items[i])
        i += 1
    return out


# -------------------------------------------------------------- pipeline --


PASSES = {
    "fold": fold_constants,
    "dce": eliminate_dead_code,
    "realloc": reallocate_workspace,
    "fuse": fuse_channel_ops,
}

#: Pass order is fixed: folding first (it creates the dead branches
#: and constant spills the later passes consume), DCE second, then
#: slot reallocation, then fusion (which benefits from folded leaf
#: values and reallocated locals).
PASS_ORDER = ("fold", "dce", "realloc", "fuse")

OPT_LEVELS = {
    0: (),
    1: ("fold", "dce"),
    2: PASS_ORDER,
}


def run_passes(items, passes):
    """Run the named passes in canonical order; returns
    (items, per-pass report)."""
    unknown = set(passes) - set(PASSES)
    if unknown:
        raise OptimizeError(
            f"unknown passes: {', '.join(sorted(unknown))}")
    report = {}
    for name in PASS_ORDER:
        if name not in passes:
            continue
        before = _count_instructions(items)
        items = PASSES[name](items)
        report[name] = {
            "instructions_before": before,
            "instructions_after": _count_instructions(items),
        }
    return items, report


def optimize(source: str, level: int = 2, passes=None):
    """Optimize compiler-emitted assembly source.

    ``level`` selects a canonical pass set (see ``OPT_LEVELS``);
    ``passes`` overrides it with an explicit collection of pass names.
    Returns ``(optimized_source, report)`` where the report carries
    per-pass instruction counts plus whole-program byte sizes (the
    assembler re-minimizes every prefix chain when re-encoding, so the
    byte delta includes the prefix re-minimization win).
    """
    if passes is None:
        try:
            passes = OPT_LEVELS[level]
        except KeyError:
            raise OptimizeError(f"unknown optimization level {level!r}")
    items = parse(source)
    bytes_before = len(assemble(source).code)
    instructions_before = _count_instructions(items)
    items, report = run_passes(items, set(passes))
    optimized = render(items)
    report = {
        "passes": report,
        "instructions_before": instructions_before,
        "instructions_after": _count_instructions(items),
        "bytes_before": bytes_before,
        "bytes_after": len(assemble(optimized).code),
    }
    return optimized, report
