"""A parser for Occam-style concrete syntax.

Real Occam is indentation-structured; so is this subset.  The grammar
covers exactly what the compiler (:mod:`repro.occam.compiler`) lowers:

::

    SEQ                     -- sequential block
      x := 0
      i := 10
      WHILE i > 0           -- loop (condition true when ≠ 0)
        SEQ
          x := x + i
          i := i - 1
    PAR                     -- parallel block (STARTP/ENDP join)
      c ! x * 2             -- channel output
      c ? y                 -- channel input
    IF a > b                -- two-armed conditional: first indented
      r := 1                -- process is THEN, optional ELSE keyword
      ELSE
      r := 2
    SKIP

Expressions: integer literals, variables, ``+ - * / \\``
(backslash is Occam's remainder), comparisons ``> < = <>``, and the
bitwise ``/\\  \\/  ><  << >>`` operators, with parentheses.
Comments run from ``--`` to end of line.

:func:`parse` returns the AST; :func:`run_source` parses, compiles,
assembles and executes in one call.
"""

import re

from repro.occam import compiler as C


class OccamSyntaxError(Exception):
    """Bad token, bad indentation, or malformed statement."""

    def __init__(self, message, line=None):
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)
        self.line = line


# ---------------------------------------------------------------- lexer --

_TOKEN_RE = re.compile(r"""
    (?P<num>-?\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<op><>|<<|>>|/\\|\\/|><|:=|[-+*/\\()<>=?!\[\]])
  | (?P<ws>\s+)
""", re.VERBOSE)


def _tokenize(text, lineno):
    out = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if not match:
            raise OccamSyntaxError(f"bad character {text[index]!r}", lineno)
        index = match.end()
        if match.lastgroup == "ws":
            continue
        out.append((match.lastgroup, match.group()))
    return out


# ----------------------------------------------------- expression parser --

#: Binary operators by precedence level (loosest first), mapped to AST
#: constructors.  Occam's real grammar has no precedence (it requires
#: parentheses); we allow conventional precedence as a convenience.
_LEVELS = [
    {">": lambda a, b: C.Gt(a, b),
     "<": lambda a, b: C.Gt(b, a),
     "=": lambda a, b: C.Eq(a, b),
     "<>": lambda a, b: C.Eq(C.Eq(a, b), C.Num(0))},
    {"+": C.Add, "-": C.Sub,
     "\\/": lambda a, b: C.BinOp("or", a, b),
     "><": lambda a, b: C.BinOp("xor", a, b)},
    {"*": C.Mul, "/": C.Div, "\\": C.Mod,
     "/\\": lambda a, b: C.BinOp("and", a, b),
     "<<": lambda a, b: C.BinOp("shl", a, b),
     ">>": lambda a, b: C.BinOp("shr", a, b)},
]


class _ExprParser:
    def __init__(self, tokens, lineno):
        self.tokens = tokens
        self.pos = 0
        self.lineno = lineno

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) \
            else (None, None)

    def take(self):
        token = self.peek()
        self.pos += 1
        return token

    def parse(self):
        expr = self._level(0)
        if self.pos != len(self.tokens):
            raise OccamSyntaxError(
                f"unexpected {self.peek()[1]!r}", self.lineno
            )
        return expr

    def _level(self, depth):
        if depth == len(_LEVELS):
            return self._atom()
        left = self._level(depth + 1)
        while self.peek()[0] == "op" and self.peek()[1] in _LEVELS[depth]:
            _kind, op = self.take()
            right = self._level(depth + 1)
            left = _LEVELS[depth][op](left, right)
        return left

    def _atom(self):
        kind, value = self.take()
        if kind == "num":
            return C.Num(int(value))
        if kind == "name":
            if self.peek() == ("op", "["):
                self.take()
                index = self._level(0)
                _kind, closing = self.take()
                if closing != "]":
                    raise OccamSyntaxError("expected ']'", self.lineno)
                return C.ArrayRef(value, index)
            return C.Var(value)
        if kind == "op" and value == "(":
            inner = self._level(0)
            kind, value = self.take()
            if value != ")":
                raise OccamSyntaxError("expected ')'", self.lineno)
            return inner
        if kind == "op" and value == "-":
            return C.Sub(C.Num(0), self._atom())
        raise OccamSyntaxError(
            f"expected an expression, got {value!r}", self.lineno
        )


def parse_expression(text, lineno=None):
    """Parse one expression string to AST."""
    return _ExprParser(_tokenize(text, lineno), lineno).parse()


# ------------------------------------------------------ statement parser --

class _Line:
    __slots__ = ("indent", "text", "number")

    def __init__(self, indent, text, number):
        self.indent = indent
        self.text = text
        self.number = number


def _logical_lines(source):
    lines = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split("--", 1)[0].rstrip()
        if not text.strip():
            continue
        indent = len(text) - len(text.lstrip())
        lines.append(_Line(indent, text.strip(), number))
    return lines


def _parse_channel(text, lineno):
    """A channel spec: a bare name or ``name[index]``."""
    array = re.fullmatch(r"([A-Za-z_][A-Za-z0-9_.]*)\s*\[(.+)\]", text)
    if array:
        return C.ChanRef(array.group(1),
                         parse_expression(array.group(2), lineno))
    if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", text):
        raise OccamSyntaxError(f"bad channel {text!r}", lineno)
    return text


class _Parser:
    def __init__(self, lines):
        self.lines = lines
        self.pos = 0

    def peek(self):
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def parse_process(self):
        line = self.peek()
        if line is None:
            raise OccamSyntaxError("expected a process, got end of input")
        self.pos += 1
        text = line.text

        if text == "SKIP":
            return C.Skip()
        if text in ("SEQ", "PAR"):
            body = self._parse_block(line.indent)
            return (C.Seq if text == "SEQ" else C.Par)(body)
        replicator = re.match(
            r"^(SEQ|PAR)\s+([A-Za-z_][A-Za-z0-9_.]*)\s*=\s*(.+?)\s+FOR\s+(.+)$",
            text,
        )
        if replicator:
            kind, name, start_text, count_text = replicator.groups()
            start = parse_expression(start_text, line.number)
            count = parse_expression(count_text, line.number)
            body = self._parse_block(line.indent)
            body = body[0] if len(body) == 1 else C.Seq(body)
            if kind == "SEQ":
                return C.RepSeq(name, start, count, body)
            for bound, what in ((start, "start"), (count, "count")):
                if not isinstance(bound, C.Num):
                    raise OccamSyntaxError(
                        f"replicated PAR needs a literal {what}",
                        line.number,
                    )
            return C.RepPar(name, start.value, count.value, body)
        if text.startswith("WHILE"):
            cond = parse_expression(text[len("WHILE"):], line.number)
            body = self._parse_block(line.indent)
            if len(body) != 1:
                body = [C.Seq(body)]
            return C.While(cond, body[0])
        if text.startswith("IF"):
            cond = parse_expression(text[len("IF"):], line.number)
            arms = self._parse_if_block(line.indent)
            then, orelse = arms
            return C.If(cond, then, orelse)
        if ":=" in text:
            target, expr_text = text.split(":=", 1)
            target = target.strip()
            expr = parse_expression(expr_text, line.number)
            array = re.fullmatch(
                r"([A-Za-z_][A-Za-z0-9_.]*)\s*\[(.+)\]", target
            )
            if array:
                index = parse_expression(array.group(2), line.number)
                return C.AssignArray(array.group(1), index, expr)
            if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", target):
                raise OccamSyntaxError(
                    f"bad assignment target {target!r}", line.number
                )
            return C.Assign(target, expr)
        if "!" in text:
            channel, expr_text = text.split("!", 1)
            return C.Out(
                _parse_channel(channel.strip(), line.number),
                parse_expression(expr_text, line.number),
            )
        if "?" in text:
            channel, name = text.split("?", 1)
            name = name.strip()
            if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", name):
                raise OccamSyntaxError(
                    f"bad input target {name!r}", line.number
                )
            return C.In(_parse_channel(channel.strip(), line.number),
                        name)
        raise OccamSyntaxError(f"unrecognised statement {text!r}",
                               line.number)

    def _parse_block(self, parent_indent):
        body = []
        block_indent = None
        while True:
            line = self.peek()
            if line is None or line.indent <= parent_indent:
                break
            if block_indent is None:
                block_indent = line.indent
            elif line.indent > block_indent:
                raise OccamSyntaxError(
                    f"unexpected indentation", line.number
                )
            body.append(self.parse_process())
        return body

    def _parse_if_block(self, parent_indent):
        """IF body: THEN process, then optional `ELSE` + process."""
        body_lines_start = self.pos
        line = self.peek()
        if line is None or line.indent <= parent_indent:
            raise OccamSyntaxError("IF needs an indented process")
        then = self.parse_process()
        orelse = C.Skip()
        nxt = self.peek()
        if nxt is not None and nxt.indent > parent_indent \
                and nxt.text == "ELSE":
            self.pos += 1
            orelse = self.parse_process()
        del body_lines_start
        return then, orelse


def parse(source: str):
    """Parse Occam-style source text to a compiler AST."""
    lines = _logical_lines(source)
    if not lines:
        return C.Skip()
    parser = _Parser(lines)
    processes = []
    while parser.peek() is not None:
        if parser.peek().indent != lines[0].indent:
            raise OccamSyntaxError(
                "top-level processes must share indentation",
                parser.peek().number,
            )
        processes.append(parser.parse_process())
    return processes[0] if len(processes) == 1 else C.Seq(processes)


def run_source(source: str, max_steps: int = 2_000_000):
    """Parse, compile, assemble, and execute; returns (cpu, compiler)."""
    ast = parse(source)
    return C.run_occam(ast, max_steps=max_steps)
