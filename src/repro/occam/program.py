"""Running Occam-style process networks.

An :class:`OccamProgram` bundles an engine, a set of named channels,
and a top-level process body, so examples and application code can say

    prog = OccamProgram()
    c = prog.channel("pipe")
    prog.spawn(producer(prog.engine, c))
    prog.spawn(consumer(prog.engine, c))
    prog.run()

and get deterministic, timed execution of the whole network.
"""

from repro.events import Channel, DeadlockError, Engine


class OccamProgram:
    """A process network on its own engine."""

    def __init__(self, engine=None):
        self.engine = engine or Engine()
        self.channels = {}
        self._processes = []

    def channel(self, name: str) -> Channel:
        """Create (or fetch) a named rendezvous channel."""
        if name not in self.channels:
            self.channels[name] = Channel(self.engine, name=name)
        return self.channels[name]

    def spawn(self, body, name=None):
        """Start a process body; returns its Process event."""
        proc = self.engine.process(body, name=name)
        self._processes.append(proc)
        return proc

    def run(self, until=None):
        """Run the network to completion (or ``until``).

        Raises :class:`~repro.events.DeadlockError` if processes remain
        blocked with nothing scheduled — the classic sign of a
        mis-wired Occam network.
        """
        result = self.engine.run(until=until)
        if until is None:
            stuck = [p for p in self._processes if p.is_alive]
            if stuck:
                names = ", ".join(p.name for p in stuck)
                raise DeadlockError(f"processes never finished: {names}")
        return result

    @property
    def now(self):
        """Current simulated time."""
        return self.engine.now

    def __repr__(self):
        return (
            f"<OccamProgram processes={len(self._processes)} "
            f"channels={len(self.channels)}>"
        )
