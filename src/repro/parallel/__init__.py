"""Deterministic parallel sweep execution.

Benchmark sweeps and fuzz campaigns are embarrassingly parallel —
every cell (one machine configuration, one fuzz case, one fault
seed) builds its own engine from scratch — but naive pooling breaks
the property the repo is built on: byte-identical reports.  This
subsystem runs cells across worker processes while keeping the merged
result exactly equal to a serial run: seeded, index-keyed work
partitioning; JSON-normalised cell outcomes on both paths; an
order-independent merge keyed by cell index; and worker-crash
isolation that fails the crashed cell instead of the whole sweep.
"""

from repro.parallel.sweep import (
    CellResult,
    SweepError,
    SweepResult,
    resolve_jobs,
    run_cells,
)

__all__ = [
    "CellResult",
    "SweepError",
    "SweepResult",
    "resolve_jobs",
    "run_cells",
]
