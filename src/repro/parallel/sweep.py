"""The deterministic process-pool sweep runner.

Contract
--------
``run_cells(run_one, cells, jobs=N)`` produces *exactly* the same
merged values as ``jobs=1``, for any ``N``:

* **Partitioning is deterministic.**  Worker ``w`` of ``jobs`` gets
  cells ``cells[w::jobs]`` — a pure function of the cell list and the
  job count, never of scheduling order.
* **Outcomes are JSON-normalised on both paths.**  Every cell value is
  round-tripped through ``json`` before merging, so a serial run
  (tuples, ints) and a parallel run (values pickled through a queue)
  yield the same Python objects, and anything non-JSON-able fails
  loudly on either path rather than only under ``--jobs``.
* **The merge is order-independent.**  Results are keyed by cell
  index and reassembled in index order; which worker finished first
  is unobservable in the merged output.
* **Crashes are isolated.**  A worker that dies mid-cell (segfault,
  ``os._exit``, OOM kill) fails *that cell* with a structured error;
  the worker's remaining cells are respawned onto a fresh process and
  the sweep completes.

Per-cell wall-clock timings are measured and reported, but they live
on the :class:`CellResult` — never inside the merged value — so
comparison payloads stay byte-identical across hosts and job counts.

The pool uses the ``fork`` start method: cells and the cell function
reach workers by address-space inheritance (no pickling of closures),
and only the JSON-normalised outcomes travel back, over a dedicated
pipe per worker.  Pipe sends are synchronous — unlike a
``multiprocessing.Queue``, whose feeder thread can lose
already-completed results when a worker dies — so after a crash the
parent can still drain everything the worker finished before death.
"""

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait


class SweepError(RuntimeError):
    """Raised when merged values are requested but cells failed."""


@dataclass
class CellResult:
    """Outcome of one sweep cell."""

    index: int
    ok: bool
    value: object = None
    error: str = None
    #: Wall-clock seconds spent inside ``run_one`` (measurement only —
    #: never part of the merged comparison payload).
    wall_s: float = 0.0
    worker: int = 0
    #: True when the failure was a hard worker death (process exit),
    #: not an exception from ``run_one`` — the retryable class: the
    #: scheduler's bounded-backoff retry keys off this flag rather
    #: than string-matching the error text.
    crashed: bool = False


@dataclass
class SweepResult:
    """All cell results of one sweep, in cell-index order."""

    jobs: int
    results: list = field(default_factory=list)
    wall_s: float = 0.0

    def failures(self) -> list:
        return [r for r in self.results if not r.ok]

    def values(self) -> list:
        """Merged cell values in cell order; raises on any failure."""
        bad = self.failures()
        if bad:
            raise SweepError(
                "; ".join(f"cell {r.index}: {r.error}" for r in bad)
            )
        return [r.value for r in self.results]

    def timings(self) -> list:
        """Per-cell wall seconds, in cell order (diagnostic only)."""
        return [r.wall_s for r in self.results]

    def timing_summary(self) -> dict:
        """Roll-up of the per-cell wall clocks (diagnostic only).

        Summarises :class:`CellResult` timings for sweep reports —
        cell count, worker count, sweep wall, total/mean/min/max cell
        seconds, and the slowest cell's index.  Deliberately separate
        from :meth:`values`: timings never enter the merged
        comparison payload, so serial and parallel merges stay
        byte-identical.
        """
        walls = self.timings()
        total = sum(walls)
        return {
            "cells": len(walls),
            "jobs": self.jobs,
            "sweep_wall_s": self.wall_s,
            "total_cell_s": total,
            "mean_cell_s": total / len(walls) if walls else 0.0,
            "min_cell_s": min(walls) if walls else 0.0,
            "max_cell_s": max(walls) if walls else 0.0,
            "slowest_cell_index": (
                max(range(len(walls)), key=walls.__getitem__)
                if walls else None
            ),
        }


def resolve_jobs(jobs=None) -> int:
    """Resolve a job-count request to a concrete worker count.

    ``None`` falls back to ``REPRO_SWEEP_JOBS`` (default 1 — parallel
    execution is always opt-in); ``"auto"`` or ``0`` means one worker
    per available CPU.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_SWEEP_JOBS", "1") or "1"
    if jobs in ("auto", "0", 0):
        return max(1, os.cpu_count() or 1)
    count = int(jobs)
    if count < 0:
        raise ValueError(f"jobs must be >= 0, got {count}")
    return max(1, count)


def _normalise(value):
    """JSON round-trip: the canonical merged-value representation."""
    return json.loads(json.dumps(value))


def _run_inline(run_one, cells) -> list:
    results = []
    for index, cell in enumerate(cells):
        start = time.perf_counter()
        try:
            value = _normalise(run_one(cell))
        except Exception as exc:
            results.append(CellResult(
                index, False, None,
                f"{type(exc).__name__}: {exc}",
                time.perf_counter() - start, 0,
            ))
        else:
            results.append(CellResult(
                index, True, value, None,
                time.perf_counter() - start, 0,
            ))
    return results


def _worker_main(run_one, tasks, conn):
    """Run ``tasks`` (``(index, cell)`` pairs) and stream results.

    Every ``send`` writes straight into the pipe before the next cell
    starts, so a later hard death cannot lose a finished result.
    """
    for index, cell in tasks:
        start = time.perf_counter()
        try:
            value = _normalise(run_one(cell))
        except BaseException as exc:  # noqa: BLE001 - reported, re-raised
            conn.send(("error", index,
                       f"{type(exc).__name__}: {exc}",
                       time.perf_counter() - start))
            if not isinstance(exc, Exception):
                raise  # KeyboardInterrupt / SystemExit propagate
        else:
            conn.send(("done", index, value,
                       time.perf_counter() - start))
    conn.close()


class _Worker:
    """Parent-side bookkeeping for one worker process."""

    def __init__(self, ctx, worker_id, run_one, tasks, daemon=True):
        self.id = worker_id
        self.tasks = tasks
        self.cursor = 0       # tasks completed (done or error)
        self.conn, child_conn = ctx.Pipe(duplex=False)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(run_one, tasks, child_conn),
            daemon=daemon,
        )
        self.proc.start()
        child_conn.close()  # parent keeps only the read end


def run_cells(run_one, cells, jobs=None, isolate=False,
              daemon=True) -> SweepResult:
    """Run ``run_one(cell)`` over every cell; deterministic merge.

    ``run_one`` must build its entire scenario from the cell value —
    cells are round-robined over ``jobs`` worker processes and any
    state smuggled through globals would differ between serial and
    parallel runs.  Returns a :class:`SweepResult` whose ``values()``
    are identical for every ``jobs`` setting.

    ``isolate=True`` forces fork-pool execution even for a single
    cell, so a cell that kills its process (``os._exit``) reports as
    a crashed :class:`CellResult` instead of taking the caller down —
    the scheduler's crash-retry path depends on this.

    ``daemon=False`` spawns non-daemonic workers.  Daemonic processes
    cannot have children, so a caller whose cells themselves open a
    fork pool (the fuzz campaign running machine-room chaos cases,
    which drain through the scheduler's pool) must opt out; everyone
    else keeps daemonic workers, which the OS reaps with the parent.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    sweep_start = time.perf_counter()
    if not isolate and (jobs == 1 or len(cells) <= 1):
        results = _run_inline(run_one, cells)
        return SweepResult(1, results,
                           time.perf_counter() - sweep_start)

    ctx = multiprocessing.get_context("fork")
    results = {}
    respawns = 0
    next_id = 0
    live = []

    def record(worker, msg):
        kind, index, payload, wall = msg
        worker.cursor += 1
        if kind == "done":
            results[index] = CellResult(index, True, payload, None,
                                        wall, worker.id)
        else:
            results[index] = CellResult(index, False, None, payload,
                                        wall, worker.id)

    def spawn(tasks):
        nonlocal next_id
        worker = _Worker(ctx, next_id, run_one, tasks, daemon=daemon)
        next_id += 1
        live.append(worker)
        return worker

    for w in range(min(jobs, len(cells))):
        spawn([(i, cells[i]) for i in range(w, len(cells), jobs)])

    def retire(worker):
        """Drain and dismiss a worker whose pipe hit EOF or whose
        process exited.  Sends are synchronous, so everything it
        completed is already in the pipe; any unfinished task after
        the drain means it died mid-cell."""
        nonlocal respawns
        try:
            while worker.conn.poll():
                record(worker, worker.conn.recv())
        except EOFError:
            pass
        if worker.cursor < len(worker.tasks):
            # Died mid-sweep: the in-flight cell is, deterministically,
            # the next unfinished task.  Fail it and respawn the rest
            # onto a fresh worker.
            worker.proc.join(timeout=5.0)
            index, _cell = worker.tasks[worker.cursor]
            worker.cursor += 1
            results[index] = CellResult(
                index, False, None,
                f"worker crashed (exit code {worker.proc.exitcode})",
                0.0, worker.id, crashed=True,
            )
            remaining = worker.tasks[worker.cursor:]
            if remaining and respawns < len(cells):
                respawns += 1
                spawn(remaining)
        live.remove(worker)
        worker.conn.close()
        worker.proc.join(timeout=5.0)

    while len(results) < len(cells):
        ready = _wait(
            [w.conn for w in live] + [w.proc.sentinel for w in live],
            timeout=10.0,
        )
        by_conn = {w.conn: w for w in live}
        by_sentinel = {w.proc.sentinel: w for w in live}
        for obj in ready:
            worker = by_conn.get(obj)
            if worker is not None:
                if worker not in live:
                    continue  # already retired via its sentinel
                try:
                    record(worker, worker.conn.recv())
                except EOFError:
                    retire(worker)
                continue
            worker = by_sentinel[obj]
            if worker in live:
                retire(worker)

    for worker in live:
        worker.conn.close()
        worker.proc.join(timeout=5.0)
        if worker.proc.is_alive():  # pragma: no cover - defensive
            worker.proc.terminate()
    ordered = [results[i] for i in range(len(cells))]
    return SweepResult(jobs, ordered, time.perf_counter() - sweep_start)
