"""Message passing and collectives over the simulated hypercube.

Public surface:

* :class:`HypercubeProgram`, :class:`NodeContext` — the SPMD API.
* :class:`HypercubeTransport` — routed point-to-point transport.
* :class:`ReliableTransport` — its ARQ variant: checksummed envelopes,
  ACK/timeout/backoff retry, detour routing around dead nodes.
* :class:`Envelope`, :data:`HEADER_BYTES` — the message format.
* :mod:`repro.runtime.collectives` — broadcast / reduce / allreduce /
  gather / allgather / barrier / alltoall.
* Mappings: :class:`IdentityMapping`, :class:`RingMapping`,
  :class:`MeshMapping`, :class:`ButterflyMapping`.
"""

from repro.runtime.api import HypercubeProgram, NodeContext
from repro.runtime.collectives import (
    allgather,
    allreduce,
    alltoall,
    barrier,
    broadcast,
    gather,
    reduce,
)
from repro.runtime.mapping import (
    ButterflyMapping,
    IdentityMapping,
    MeshMapping,
    RingMapping,
)
from repro.runtime.messages import Envelope, HEADER_BYTES
from repro.runtime.transport import HypercubeTransport, ReliableTransport

__all__ = [
    "ButterflyMapping",
    "Envelope",
    "HEADER_BYTES",
    "HypercubeProgram",
    "HypercubeTransport",
    "IdentityMapping",
    "MeshMapping",
    "NodeContext",
    "ReliableTransport",
    "RingMapping",
    "allgather",
    "allreduce",
    "alltoall",
    "barrier",
    "broadcast",
    "gather",
    "reduce",
]
