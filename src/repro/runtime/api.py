"""The SPMD programming interface.

A :class:`HypercubeProgram` runs one user generator per node (the same
function everywhere — SPMD, the dominant style on these machines).
Each instance gets a :class:`NodeContext` carrying its node id, its
hardware (vector unit, memory, gather engine), point-to-point
messaging, and the collectives.

Example::

    program = HypercubeProgram(machine)

    def main(ctx):
        total = yield from ctx.allreduce(ctx.node_id, 8, lambda a, b: a + b)
        return total

    results = program.run(main)     # {node_id: sum of all ids}
"""

from repro.runtime import collectives
from repro.runtime.transport import HypercubeTransport


class NodeContext:
    """Everything one node's program can touch."""

    def __init__(self, program, node_id):
        self.program = program
        self.node_id = node_id
        self.machine = program.machine
        self.node = program.machine.node(node_id)
        self.transport = program.transport
        self.engine = program.machine.engine
        self._collective_seq = 0

    @property
    def size(self) -> int:
        """Number of nodes in the machine."""
        return len(self.machine)

    @property
    def dimension(self) -> int:
        return self.machine.dimension

    def _tag(self, kind: str) -> str:
        # All nodes issue collectives in the same order (SPMD), so a
        # per-node counter stays in step across the machine.
        tag = f"{kind}#{self._collective_seq}"
        self._collective_seq += 1
        return tag

    # -- point-to-point ---------------------------------------------------

    def send(self, dst: int, payload, nbytes: int, tag: str = "msg"):
        """Process: routed send to any node."""
        envelope = yield from self.transport.send(
            self.node_id, dst, payload, nbytes, tag
        )
        return envelope

    def recv(self, tag: str = "msg"):
        """Process: next message addressed to this node under ``tag``."""
        envelope = yield from self.transport.recv(self.node_id, tag)
        return envelope

    # -- collectives ----------------------------------------------------

    def broadcast(self, root: int, value, nbytes: int):
        """Process: binomial broadcast; returns the root's value."""
        result = yield from collectives.broadcast(
            self.transport, self.node_id, root, value, nbytes,
            tag=self._tag("bcast"),
        )
        return result

    def reduce(self, root: int, value, nbytes: int, combine):
        """Process: reduction to root (None elsewhere)."""
        result = yield from collectives.reduce(
            self.transport, self.node_id, root, value, nbytes, combine,
            tag=self._tag("reduce"),
        )
        return result

    def allreduce(self, value, nbytes: int, combine):
        """Process: all-reduce by dimension exchange."""
        result = yield from collectives.allreduce(
            self.transport, self.node_id, value, nbytes, combine,
            tag=self._tag("allreduce"),
        )
        return result

    def gather(self, root: int, value, nbytes: int):
        """Process: gather {node: value} at root (None elsewhere)."""
        result = yield from collectives.gather(
            self.transport, self.node_id, root, value, nbytes,
            tag=self._tag("gather"),
        )
        return result

    def allgather(self, value, nbytes: int):
        """Process: all-gather; {node: value} everywhere."""
        result = yield from collectives.allgather(
            self.transport, self.node_id, value, nbytes,
            tag=self._tag("allgather"),
        )
        return result

    def barrier(self):
        """Process: synchronise all nodes."""
        yield from collectives.barrier(
            self.transport, self.node_id, tag=self._tag("barrier")
        )

    def alltoall(self, values: dict, nbytes_each: int):
        """Process: personalised all-to-all."""
        result = yield from collectives.alltoall(
            self.transport, self.node_id, values, nbytes_each,
            tag=self._tag("alltoall"),
        )
        return result

    def __repr__(self):
        return f"<NodeContext node={self.node_id}>"


class HypercubeProgram:
    """Runs an SPMD generator on every node of a machine."""

    def __init__(self, machine):
        self.machine = machine
        # One transport per machine: its relay daemons own the fabric
        # inboxes, so a second instance would steal messages.
        self.transport = getattr(machine, "_transport", None) \
            or HypercubeTransport(machine)
        self.contexts = [
            NodeContext(self, i) for i in range(len(machine))
        ]

    def run(self, main, nodes=None):
        """Run ``main(ctx)`` on each node (all by default).

        Returns ``(results, elapsed_ns)`` where ``results`` maps
        node_id → the generator's return value and ``elapsed_ns`` is
        the simulated makespan of this program run.
        """
        engine = self.machine.engine
        start = engine.now
        node_ids = list(nodes) if nodes is not None else range(
            len(self.machine)
        )
        procs = {
            i: engine.process(main(self.contexts[i]), name=f"main{i}")
            for i in node_ids
        }
        done = engine.all_of(list(procs.values()))
        engine.run(until=done)
        results = {i: proc.value for i, proc in procs.items()}
        return results, engine.now - start

    def __repr__(self):
        return f"<HypercubeProgram on {self.machine!r}>"
