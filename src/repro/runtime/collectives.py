"""Hypercube collectives by dimension exchange.

The binomial/recursive-doubling family: broadcast, reduce, all-reduce,
gather, all-gather, barrier, and personalised all-to-all.  Every one
completes in n = log₂ N steps of neighbour exchanges — the property
the paper's topology section is selling.

These are SPMD building blocks: every participating node runs the same
generator with its own ``node_id``, and matching relies on all nodes
issuing collectives in the same order with the same ``tag``.
"""


def _relative(node_id: int, root: int) -> int:
    return node_id ^ root


def broadcast(transport, node_id: int, root: int, value, nbytes: int,
              tag: str = "bcast"):
    """Process: binomial-tree broadcast; returns the value everywhere.

    Step d: relative ids below 2**d send to their dimension-d partner.
    """
    n = transport.dimension
    rel = _relative(node_id, root)
    for d in range(n):
        step_tag = f"{tag}.{d}"
        if rel < (1 << d):
            partner = node_id ^ (1 << d)
            yield from transport.send(node_id, partner, value, nbytes,
                                      step_tag)
        elif rel < (1 << (d + 1)):
            envelope = yield from transport.recv(node_id, step_tag)
            value = envelope.payload
    return value


def reduce(transport, node_id: int, root: int, value, nbytes: int,
           combine, tag: str = "reduce"):
    """Process: binomial-tree reduction to ``root``.

    ``combine(a, b)`` must be associative and commutative.  Non-root
    nodes return None.
    """
    n = transport.dimension
    rel = _relative(node_id, root)
    for d in reversed(range(n)):
        step_tag = f"{tag}.{d}"
        if rel < (1 << d):
            envelope = yield from transport.recv(node_id, step_tag)
            value = combine(value, envelope.payload)
        elif rel < (1 << (d + 1)):
            partner = node_id ^ (1 << d)
            yield from transport.send(node_id, partner, value, nbytes,
                                      step_tag)
            return None
    return value if rel == 0 else None


def allreduce(transport, node_id: int, value, nbytes: int, combine,
              tag: str = "allreduce"):
    """Process: dimension-exchange all-reduce (everyone gets the total).

    Each step exchanges partials with the dimension-d neighbour; after
    n steps every node holds the full combination.
    """
    n = transport.dimension
    for d in range(n):
        step_tag = f"{tag}.{d}"
        partner = node_id ^ (1 << d)
        yield from transport.send(node_id, partner, value, nbytes, step_tag)
        envelope = yield from transport.recv(node_id, step_tag)
        value = combine(value, envelope.payload)
    return value


def gather(transport, node_id: int, root: int, value, nbytes: int,
           tag: str = "gather"):
    """Process: gather one value per node to ``root``.

    Returns the dict {node_id: value} at the root, None elsewhere.
    Message sizes double up the tree (the dict grows).
    """
    n = transport.dimension
    rel = _relative(node_id, root)
    collected = {node_id: value}
    for d in range(n):
        step_tag = f"{tag}.{d}"
        if rel & ((1 << d) - 1):
            continue  # already merged into a sender below
        if rel & (1 << d):
            partner = node_id ^ (1 << d)
            yield from transport.send(
                node_id, partner, collected, nbytes * len(collected),
                step_tag,
            )
            return None
        if rel + (1 << d) < (1 << n):
            envelope = yield from transport.recv(node_id, step_tag)
            collected.update(envelope.payload)
    return collected


def allgather(transport, node_id: int, value, nbytes: int,
              tag: str = "allgather"):
    """Process: all-gather by dimension exchange; returns the full
    {node_id: value} dict everywhere.  Exchanged data doubles each
    step (total traffic ~N per node, as in the textbook analysis)."""
    n = transport.dimension
    collected = {node_id: value}
    for d in range(n):
        step_tag = f"{tag}.{d}"
        partner = node_id ^ (1 << d)
        yield from transport.send(
            node_id, partner, dict(collected), nbytes * len(collected),
            step_tag,
        )
        envelope = yield from transport.recv(node_id, step_tag)
        collected.update(envelope.payload)
    return collected


def barrier(transport, node_id: int, tag: str = "barrier"):
    """Process: dimension-exchange barrier (an allreduce of nothing)."""
    result = yield from allreduce(
        transport, node_id, 0, 4, lambda a, b: 0, tag=tag
    )
    return result


def alltoall(transport, node_id: int, values: dict, nbytes_each: int,
             tag: str = "alltoall"):
    """Process: personalised all-to-all.

    ``values`` maps destination → payload for every node.  Each payload
    is e-cube routed independently; returns {source: payload}.
    """
    size = 1 << transport.dimension
    if set(values) != set(range(size)):
        raise ValueError("alltoall needs one payload per node")
    received = {node_id: values[node_id]}
    for dst in range(size):
        if dst == node_id:
            continue
        yield from transport.send(
            node_id, dst, (node_id, values[dst]), nbytes_each, tag
        )
    for _ in range(size - 1):
        envelope = yield from transport.recv(node_id, tag)
        src, payload = envelope.payload
        received[src] = payload
    return received
