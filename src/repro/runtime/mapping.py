"""Process-to-node placement via the Figure 3 embeddings.

Applications think in logical coordinates (ring position, mesh point,
FFT element); a mapping turns those into hypercube node ids so that
logical neighbours are physical neighbours.  The runtime's transport
charges per hop, so a good mapping is *measurably* faster — bench E7
quantifies it against a naive (identity) placement of a ring.
"""

from repro.topology.embeddings import (
    ButterflyEmbedding,
    MeshEmbedding,
    RingEmbedding,
)


class IdentityMapping:
    """Rank r on node r — correct for butterfly work, naive for rings."""

    def __init__(self, size: int):
        if size < 1 or size & (size - 1):
            raise ValueError("size must be a power of two")
        self.size = size

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        return rank

    def rank_of(self, node: int) -> int:
        return self.node_of(node)


class RingMapping:
    """Ring rank → node via Gray code (dilation-1 ring)."""

    def __init__(self, size: int):
        self.embedding = RingEmbedding(size)
        self.size = size

    def node_of(self, rank: int) -> int:
        return self.embedding.node_of(rank)

    def rank_of(self, node: int) -> int:
        return self.embedding.position_of(node)

    def neighbors_of_rank(self, rank: int):
        return self.embedding.logical_neighbors(rank)


class MeshMapping:
    """Mesh/torus coordinates → node via per-axis Gray codes."""

    def __init__(self, shape, torus=False):
        self.embedding = MeshEmbedding(shape, torus=torus)
        self.shape = self.embedding.shape
        self.size = self.embedding.size

    def node_of(self, coords) -> int:
        return self.embedding.node_of(coords)

    def coords_of(self, node: int):
        return self.embedding.coords_of(node)

    def neighbors_of(self, coords):
        return self.embedding.logical_neighbors(coords)


class ButterflyMapping:
    """FFT element i on node i; stage partners are always neighbours."""

    def __init__(self, size: int):
        self.embedding = ButterflyEmbedding(size)
        self.size = size

    def node_of(self, rank: int) -> int:
        return self.embedding.node_of(rank)

    def partner(self, rank: int, stage: int) -> int:
        return self.embedding.partner(rank, stage)

    @property
    def stages(self) -> int:
        return self.embedding.stages
