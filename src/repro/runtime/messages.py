"""Message envelopes for the hypercube runtime.

An :class:`Envelope` is what travels between nodes: payload plus the
routing/matching header.  The header costs
:data:`HEADER_BYTES` of link time per hop — small messages pay
proportionally more, which the overlap experiments account for.
"""

from dataclasses import dataclass, field
from typing import Any

#: Routing header: source, destination, tag, length (two words + tag).
HEADER_BYTES = 16


@dataclass
class Envelope:
    """One routed message."""

    src: int
    dst: int
    tag: str
    payload: Any
    nbytes: int
    #: Hop timestamps (node_id, time_ns) appended en route.
    trace: list = field(default_factory=list)
    #: Transport-assigned sequence number (reliable transport only;
    #: -1 on unreliable sends).  Part of the checksummed header and
    #: the duplicate-suppression key.
    seq: int = -1

    def __post_init__(self):
        if self.nbytes < 0:
            raise ValueError("negative payload size")

    @property
    def wire_bytes(self) -> int:
        """Bytes charged to the link per hop."""
        return self.nbytes + HEADER_BYTES

    @property
    def hops(self) -> int:
        """Hops taken so far."""
        return max(0, len(self.trace) - 1)

    def __repr__(self):
        return (
            f"<Envelope {self.src}->{self.dst} tag={self.tag!r} "
            f"{self.nbytes}B>"
        )
