"""Store-and-forward transport over the hypercube fabric.

Every node runs one relay process per wired hypercube sublink.  A
message from ``src`` to ``dst`` follows the e-cube route (ascending
dimensions); each intermediate node receives the whole message and
retransmits it on the next dimension's sublink — classic 1986-era
store-and-forward, which is why the paper prices long-range traffic at
O(log₂ N) link times.

Delivered messages land in per-(node, tag) mailboxes.
"""

from repro.events import Store
from repro.runtime.messages import Envelope
from repro.topology.routing import route_dimensions


class HypercubeTransport:
    """The machine-wide message-passing layer."""

    def __init__(self, machine):
        if getattr(machine, "_transport", None) is not None:
            raise RuntimeError(
                "machine already has a transport; two would steal each "
                "other's messages (reuse machine._transport instead)"
            )
        machine._transport = self
        self.machine = machine
        self.engine = machine.engine
        self.dimension = machine.dimension
        # mailboxes[node_id][tag] → Store of Envelope
        self._mailboxes = [dict() for _ in machine.nodes]
        #: Delivered message count.
        self.delivered = 0
        #: Total link hops taken by delivered messages.
        self.total_hops = 0
        self._start_relays()

    # -- internals ----------------------------------------------------

    def _mailbox(self, node_id: int, tag: str) -> Store:
        boxes = self._mailboxes[node_id]
        if tag not in boxes:
            boxes[tag] = Store(self.engine, name=f"mbox{node_id}.{tag}")
        return boxes[tag]

    def _next_dimension(self, here: int, dst: int) -> int:
        """Lowest dimension still differing (e-cube order)."""
        return route_dimensions(here, dst)[0]

    def _start_relays(self):
        for node in self.machine.nodes:
            for d in range(self.dimension):
                slot = self.machine.slot_of_dimension(d)
                self.engine.process(
                    self._relay(node, slot),
                    name=f"relay{node.node_id}.{slot}",
                )

    def _relay(self, node, slot):
        """Forever: receive on one sublink; deliver or forward."""
        while True:
            message = yield from node.comm.recv(slot)
            envelope = message.payload
            envelope.trace.append((node.node_id, self.engine.now))
            if envelope.dst == node.node_id:
                self.delivered += 1
                self.total_hops += envelope.hops
                yield self._mailbox(node.node_id, envelope.tag).put(envelope)
            else:
                d = self._next_dimension(node.node_id, envelope.dst)
                next_slot = self.machine.slot_of_dimension(d)
                yield from node.comm.send(
                    next_slot, envelope, envelope.wire_bytes
                )

    # -- public API (process generators) --------------------------------

    def send(self, src: int, dst: int, payload, nbytes: int,
             tag: str = "msg"):
        """Process: send a message; returns once the *first hop* has
        been injected (the network delivers asynchronously)."""
        self.machine.cube.check_node(src)
        self.machine.cube.check_node(dst)
        envelope = Envelope(src, dst, tag, payload, nbytes)
        envelope.trace.append((src, self.engine.now))
        if src == dst:
            self.delivered += 1
            yield self._mailbox(dst, tag).put(envelope)
            return envelope
        d = self._next_dimension(src, dst)
        slot = self.machine.slot_of_dimension(d)
        node = self.machine.node(src)
        yield from node.comm.send(slot, envelope, envelope.wire_bytes)
        return envelope

    def recv(self, node_id: int, tag: str = "msg"):
        """Process: take the next message for (node, tag)."""
        envelope = yield self._mailbox(node_id, tag).get()
        return envelope

    def predicted_transfer_ns(self, src: int, dst: int, nbytes: int) -> int:
        """Uncontended store-and-forward time: hops × (DMA + wire),
        header included."""
        hops = self.machine.cube.distance(src, dst)
        wire_bytes = Envelope(src, dst, "t", None, nbytes).wire_bytes
        per_hop = self.machine.node(src).comm.transfer_ns(wire_bytes)
        return hops * per_hop

    def mean_hops(self) -> float:
        """Average hops over delivered multi-hop messages."""
        if self.delivered == 0:
            return 0.0
        return self.total_hops / self.delivered

    def __repr__(self):
        return f"<HypercubeTransport delivered={self.delivered}>"
