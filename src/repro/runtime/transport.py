"""Store-and-forward transport over the hypercube fabric.

Every node runs one relay process per wired hypercube sublink.  A
message from ``src`` to ``dst`` follows the e-cube route (ascending
dimensions); each intermediate node receives the whole message and
retransmits it on the next dimension's sublink — classic 1986-era
store-and-forward, which is why the paper prices long-range traffic at
O(log₂ N) link times.

Delivered messages land in per-(node, tag) mailboxes.

:class:`ReliableTransport` layers a per-hop ARQ protocol on top:
checksummed frames, positive/negative acknowledgements, timeout +
exponential-backoff retransmission with bounded retries, duplicate
suppression, store-and-forward staging through a parity-checked relay
buffer, and routing that detours around known-dead nodes.  Transient
link faults (corrupted or lost frames, short outages) are absorbed
transparently; unrecoverable hops are reported through the fault log.
"""

import zlib

from repro.events import Store
from repro.memory import ParityError
from repro.runtime.messages import Envelope
from repro.events.faultlog import record_fault
from repro.topology.routing import route_dimensions

import numpy as np

#: Link bytes charged for an ACK/NAK control frame.
ACK_BYTES = 4


def envelope_checksum(envelope) -> int:
    """CRC-32 over the routed header (src, dst, tag, length, seq).

    The model does not serialise payload bits, so the checksum covers
    the header; in-flight mangling is modelled by the frame's
    ``corrupted`` flag, which the receiver folds into verification.
    """
    header = (f"{envelope.src}|{envelope.dst}|{envelope.tag}|"
              f"{envelope.nbytes}|{envelope.seq}")
    return zlib.crc32(header.encode("ascii", "replace"))


class Frame:
    """One reliable-hop link frame: an envelope plus the ARQ header."""

    __slots__ = ("kind", "seq", "attempt", "epoch", "checksum", "envelope")

    def __init__(self, kind, seq, attempt, epoch, checksum, envelope=None):
        self.kind = kind          # "data" | "ack" | "nak"
        self.seq = seq
        self.attempt = attempt
        self.epoch = epoch
        self.checksum = checksum
        self.envelope = envelope

    def __repr__(self):
        return f"<Frame {self.kind} seq={self.seq} try={self.attempt}>"


class HypercubeTransport:
    """The machine-wide message-passing layer."""

    def __init__(self, machine):
        if getattr(machine, "_transport", None) is not None:
            raise RuntimeError(
                "machine already has a transport; two would steal each "
                "other's messages (reuse machine._transport instead)"
            )
        machine._transport = self
        self.machine = machine
        self.engine = machine.engine
        self.dimension = machine.dimension
        # mailboxes[node_id][tag] → Store of Envelope
        self._mailboxes = [dict() for _ in machine.nodes]
        #: Delivered message count.
        self.delivered = 0
        #: Total link hops taken by delivered messages.
        self.total_hops = 0
        self._start_relays()

    # -- internals ----------------------------------------------------

    def _mailbox(self, node_id: int, tag: str) -> Store:
        boxes = self._mailboxes[node_id]
        if tag not in boxes:
            boxes[tag] = Store(self.engine, name=f"mbox{node_id}.{tag}")
        return boxes[tag]

    def _next_dimension(self, here: int, dst: int) -> int:
        """Lowest dimension still differing (e-cube order)."""
        return route_dimensions(here, dst)[0]

    def _start_relays(self):
        for node in self.machine.nodes:
            for d in range(self.dimension):
                slot = self.machine.slot_of_dimension(d)
                self.engine.process(
                    self._relay(node, slot),
                    name=f"relay{node.node_id}.{slot}",
                )

    def _relay(self, node, slot):
        """Forever: receive on one sublink; deliver or forward."""
        while True:
            message = yield from node.comm.recv(slot)
            envelope = message.payload
            envelope.trace.append((node.node_id, self.engine.now))
            if envelope.dst == node.node_id:
                self.delivered += 1
                self.total_hops += envelope.hops
                yield self._mailbox(node.node_id, envelope.tag).put(envelope)
            else:
                d = self._next_dimension(node.node_id, envelope.dst)
                next_slot = self.machine.slot_of_dimension(d)
                yield from node.comm.send(
                    next_slot, envelope, envelope.wire_bytes
                )

    # -- public API (process generators) --------------------------------

    def send(self, src: int, dst: int, payload, nbytes: int,
             tag: str = "msg"):
        """Process: send a message; returns once the *first hop* has
        been injected (the network delivers asynchronously)."""
        self.machine.cube.check_node(src)
        self.machine.cube.check_node(dst)
        envelope = Envelope(src, dst, tag, payload, nbytes)
        envelope.trace.append((src, self.engine.now))
        if src == dst:
            self.delivered += 1
            yield self._mailbox(dst, tag).put(envelope)
            return envelope
        d = self._next_dimension(src, dst)
        slot = self.machine.slot_of_dimension(d)
        node = self.machine.node(src)
        yield from node.comm.send(slot, envelope, envelope.wire_bytes)
        return envelope

    def recv(self, node_id: int, tag: str = "msg"):
        """Process: take the next message for (node, tag)."""
        envelope = yield self._mailbox(node_id, tag).get()
        return envelope

    def predicted_transfer_ns(self, src: int, dst: int, nbytes: int) -> int:
        """Uncontended store-and-forward time: hops × (DMA + wire),
        header included."""
        hops = self.machine.cube.distance(src, dst)
        wire_bytes = Envelope(src, dst, "t", None, nbytes).wire_bytes
        per_hop = self.machine.node(src).comm.transfer_ns(wire_bytes)
        return hops * per_hop

    def mean_hops(self) -> float:
        """Average hops over delivered multi-hop messages."""
        if self.delivered == 0:
            return 0.0
        return self.total_hops / self.delivered

    def __repr__(self):
        return f"<HypercubeTransport delivered={self.delivered}>"


class ReliableTransport(HypercubeTransport):
    """Hypercube transport with per-hop ACK/retry and fault detours.

    Protocol, per hop (stop-and-wait ARQ):

    * every envelope gets a transport-wide sequence number at
      :meth:`send`; the hop sender transmits a checksummed ``data``
      :class:`Frame` and waits for an ``ack``;
    * the receiver NAKs frames that fail verification (in-flight
      corruption, checksum mismatch, a parity trap in its relay
      staging buffer) and ACKs everything else — including duplicates,
      which it suppresses by sequence number;
    * on NAK or timeout the sender retransmits after an exponential
      backoff (``backoff_ns`` doubling per attempt), up to
      ``max_retries`` retransmissions, then gives up and reports
      ``link_give_up`` through the fault log;
    * halted nodes neither ACK nor forward (their relays drop frames),
      and routing prefers dimensions whose next hop is not in
      :attr:`avoid` — the coordinator's set of known-dead nodes;
    * :meth:`bump_epoch` + :meth:`flush_mailboxes` quiesce the
      network during recovery: in-flight frames from the old epoch are
      dropped on receipt and pending hop senders abandon their
      retries.

    Store-and-forward staging is modelled against real node memory: a
    relay stages each forwarded frame through a reserved buffer at the
    top of memory, reading it back through the parity-checked port —
    so a latent parity fault planted in the staging region surfaces as
    a NAK + retry, not a crash (the satellite-2 contract).
    """

    def __init__(self, machine, ack_timeout_ns=None, max_retries=8,
                 backoff_ns=20_000, relay_buffer_bytes=None):
        self.epoch = 0
        #: Known-dead nodes; routing detours around them where the
        #: e-cube dimension set allows.
        self.avoid = set()
        self.ack_timeout_ns = ack_timeout_ns
        self.max_retries = max_retries
        self.backoff_ns = backoff_ns
        specs = machine.nodes[0].specs
        self.relay_buffer_bytes = relay_buffer_bytes or specs.row_bytes
        self._relay_base = specs.memory_bytes - self.relay_buffer_bytes
        self._next_seq = 0
        self._ack_waiters = {}    # (node_id, slot, seq) -> Event
        self._accepted = {}       # (node_id, slot) -> set of seq
        #: Reliability counters (see analysis.reliability_stats).
        self.retries = 0
        self.redeliveries = 0
        self.checksum_failures = 0
        self.acks_sent = 0
        self.naks_sent = 0
        self.stale_drops = 0
        self.halted_drops = 0
        self.sends_failed = 0
        self.relay_parity_faults = 0
        self.mailbox_flushes = 0
        super().__init__(machine)

    # -- recovery hooks -----------------------------------------------

    def bump_epoch(self) -> int:
        """Invalidate every in-flight frame and pending hop retry."""
        self.epoch += 1
        self._ack_waiters = {}
        return self.epoch

    def flush_mailboxes(self) -> int:
        """Drop all undelivered mailbox contents (post-restore flush).

        Only call after the processes waiting on those mailboxes have
        been interrupted; their abandoned getters are discarded too.
        """
        dropped = 0
        for boxes in self._mailboxes:
            for store in boxes.values():
                dropped += store.clear()
        self.mailbox_flushes += 1
        return dropped

    # -- protocol internals -------------------------------------------

    def _next_dimension(self, here: int, dst: int) -> int:
        """Lowest differing dimension whose next hop is believed
        alive; plain e-cube when every candidate is dead (the send
        then fails over to the retry/give-up path)."""
        dims = route_dimensions(here, dst)
        if self.avoid:
            for d in dims:
                if here ^ (1 << d) not in self.avoid:
                    return d
        return dims[0]

    def _ack_timeout_for(self, node, wire_bytes: int) -> int:
        if self.ack_timeout_ns is not None:
            return self.ack_timeout_ns
        data_ns = node.comm.transfer_ns(wire_bytes)
        ctrl_ns = node.comm.transfer_ns(ACK_BYTES)
        # 2x margin for sublink/wire contention plus fixed slack, so a
        # fault-free run sees essentially zero spurious retries.
        return 2 * (data_ns + ctrl_ns) + 50_000

    def _control(self, node, slot, kind, frame):
        """Process: return an ACK/NAK for ``frame`` on ``slot``."""
        reply = Frame(kind, frame.seq, frame.attempt, frame.epoch, 0)
        if kind == "ack":
            self.acks_sent += 1
        else:
            self.naks_sent += 1
        yield from node.comm.send(slot, reply, ACK_BYTES)

    def _check_staging(self, node) -> bool:
        """Parity-verified store-and-forward staging read.

        Returns True when the staging buffer read back clean; on a
        latent parity fault it records the fault, rewrites the buffer
        (which corrects the stored parity) and returns False so the
        caller NAKs the frame.
        """
        try:
            node.memory.peek_bytes(self._relay_base,
                                   self.relay_buffer_bytes)
            return True
        except ParityError as exc:
            self.relay_parity_faults += 1
            record_fault(self.engine, "relay_parity",
                         node=node.node_id, address=int(exc.address))
            node.memory.poke_bytes(
                self._relay_base,
                np.zeros(self.relay_buffer_bytes, dtype=np.uint8),
            )
            return False

    def _stage(self, node, envelope):
        """Write the forwarded frame into the staging buffer."""
        size = min(envelope.wire_bytes, self.relay_buffer_bytes)
        fill = (envelope.seq ^ node.node_id) & 0xFF
        node.memory.poke_bytes(
            self._relay_base, np.full(size, fill, dtype=np.uint8)
        )

    def _hop(self, node, slot, envelope):
        """Process: move ``envelope`` one hop with ACK/retry.

        Returns True once the next node acknowledged the frame, False
        if retries were exhausted or a recovery epoch invalidated the
        attempt.
        """
        seq = envelope.seq
        checksum = envelope_checksum(envelope)
        key = (node.node_id, slot, seq)
        timeout_ns = self._ack_timeout_for(node, envelope.wire_bytes)
        epoch = self.epoch
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.retries += 1
                yield self.engine.timeout(
                    self.backoff_ns << (attempt - 1)
                )
            if self.epoch != epoch:
                return False
            frame = Frame("data", seq, attempt, epoch, checksum, envelope)
            yield from node.comm.send(slot, frame, envelope.wire_bytes)
            waiter = self.engine.event()
            self._ack_waiters[key] = waiter
            yield self.engine.any_of(
                [waiter, self.engine.timeout(timeout_ns)]
            )
            if self._ack_waiters.get(key) is waiter:
                del self._ack_waiters[key]
            if waiter.triggered and waiter.value == "ack":
                return True
            # NAK or timeout: fall through to the next attempt.
        self.sends_failed += 1
        record_fault(self.engine, "link_give_up", node=node.node_id,
                     slot=slot, seq=seq, dst=envelope.dst)
        return False

    def _relay(self, node, slot):
        """Forever: receive frames on one sublink; verify, ack,
        deliver or forward."""
        accepted = self._accepted.setdefault((node.node_id, slot), set())
        while True:
            message = yield from node.comm.recv(slot)
            frame = message.payload
            if node.halted:
                self.halted_drops += 1
                continue
            if frame.kind in ("ack", "nak"):
                if message.corrupted:
                    # A mangled control frame is just a lost one: the
                    # data sender times out and retransmits.
                    self.checksum_failures += 1
                    record_fault(self.engine, "frame_corrupt",
                                 node=node.node_id, slot=slot,
                                 seq=frame.seq, control=True)
                    continue
                waiter = self._ack_waiters.pop(
                    (node.node_id, slot, frame.seq), None
                )
                if waiter is not None and not waiter.triggered:
                    waiter.succeed(frame.kind)
                continue
            envelope = frame.envelope
            if frame.epoch != self.epoch:
                self.stale_drops += 1
                continue
            if message.corrupted or \
                    frame.checksum != envelope_checksum(envelope):
                self.checksum_failures += 1
                record_fault(self.engine, "frame_corrupt",
                             node=node.node_id, slot=slot,
                             seq=frame.seq, control=False)
                yield from self._control(node, slot, "nak", frame)
                continue
            if frame.seq in accepted:
                self.redeliveries += 1
                yield from self._control(node, slot, "ack", frame)
                continue
            forwarding = envelope.dst != node.node_id
            if forwarding:
                if not self._check_staging(node):
                    yield from self._control(node, slot, "nak", frame)
                    continue
                self._stage(node, envelope)
            accepted.add(frame.seq)
            yield from self._control(node, slot, "ack", frame)
            envelope.trace.append((node.node_id, self.engine.now))
            if not forwarding:
                self.delivered += 1
                self.total_hops += envelope.hops
                yield self._mailbox(node.node_id, envelope.tag).put(
                    envelope
                )
            else:
                d = self._next_dimension(node.node_id, envelope.dst)
                next_slot = self.machine.slot_of_dimension(d)
                yield from self._hop(node, next_slot, envelope)
                # A failed onward hop after our ACK is an end-to-end
                # loss; _hop recorded it, the coordinator's restart
                # semantics own redelivery.

    # -- public API ----------------------------------------------------

    def send(self, src: int, dst: int, payload, nbytes: int,
             tag: str = "msg"):
        """Process: send with per-hop reliability.

        Returns the envelope once the *first* hop was acknowledged, or
        ``None`` when retries were exhausted / recovery aborted it.
        """
        self.machine.cube.check_node(src)
        self.machine.cube.check_node(dst)
        envelope = Envelope(src, dst, tag, payload, nbytes)
        envelope.seq = self._next_seq
        self._next_seq += 1
        envelope.trace.append((src, self.engine.now))
        if src == dst:
            self.delivered += 1
            yield self._mailbox(dst, tag).put(envelope)
            return envelope
        d = self._next_dimension(src, dst)
        slot = self.machine.slot_of_dimension(d)
        node = self.machine.node(src)
        ok = yield from self._hop(node, slot, envelope)
        return envelope if ok else None

    def __repr__(self):
        return (f"<ReliableTransport delivered={self.delivered} "
                f"retries={self.retries} epoch={self.epoch}>")
