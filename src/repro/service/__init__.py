"""Simulation-as-a-service: the machine-room layer over the simulator.

The paper's T Series was operated as a shared facility — many users
submitting vector jobs to one hypercube.  This package reproduces
that operating model for the *simulator*: jobs (workload spec ×
machine config × kernel tier × seed) are content-addressed
(:mod:`~repro.service.jobkey`), deduplicated and queued
(:mod:`~repro.service.scheduler`), served from a two-tier result
cache when an identical job already ran
(:mod:`~repro.service.cache`), and executed over the
:mod:`repro.parallel` fork pool otherwise.  ``python -m
repro.service`` is the command-line front door; batch files express
whole bench cell lists as one submission
(:mod:`~repro.service.api`), and the whole service fronts the
network through :mod:`~repro.service.net` (``python -m repro.service
serve``): a framed socket protocol plus an HTTP/1.1 adapter with
streaming job status.

The cache-correctness contract: a hit returns a payload
byte-identical (canonical JSON) to what a fresh simulation on the
addressed kernel tier would produce.  Keys fold in a schema version,
the golden-trace semantics fingerprint, and the runner's source
digest, so behavioural changes invalidate rather than alias.
"""

from repro.service.api import load_batch, run_batch
from repro.service.cache import ResultCache, default_cache_dir
from repro.service.jobkey import (
    JOB_KEY_SCHEMA_VERSION,
    JobSpec,
    canonical_json,
    job_key,
    payload_digest,
    semantics_fingerprint,
)
from repro.service.journal import JobJournal, default_journal_dir
from repro.service.net import (
    AsyncServiceClient,
    RemoteJobError,
    ServerThread,
    ServiceClient,
    ServiceServer,
    StatusBus,
    run_server,
)
from repro.service.scheduler import (
    AdmissionError,
    JobError,
    JobFuture,
    JobTimeout,
    QuotaError,
    SimulationService,
)
from repro.service.tenants import TenantTable
from repro.service.workloads import (
    UnknownWorkloadError,
    execute_job,
    register as register_workload,
    registered_kinds,
    unregister as unregister_workload,
)

__all__ = [
    "AdmissionError",
    "AsyncServiceClient",
    "JOB_KEY_SCHEMA_VERSION",
    "JobError",
    "JobFuture",
    "JobJournal",
    "JobSpec",
    "JobTimeout",
    "QuotaError",
    "RemoteJobError",
    "ResultCache",
    "ServerThread",
    "ServiceClient",
    "ServiceServer",
    "SimulationService",
    "StatusBus",
    "TenantTable",
    "UnknownWorkloadError",
    "canonical_json",
    "default_cache_dir",
    "default_journal_dir",
    "execute_job",
    "job_key",
    "load_batch",
    "payload_digest",
    "register_workload",
    "registered_kinds",
    "run_batch",
    "run_server",
    "semantics_fingerprint",
    "unregister_workload",
]
