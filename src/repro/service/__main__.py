"""``python -m repro.service`` — the machine-room front door.

Subcommands::

    submit  one job from the command line; prints its summary record
    batch   a batch file of jobs; prints the per-job summary + stats
    key     print a job's content address (no execution)
    stats   inspect the on-disk cache store
    serve   run the network front-end (framed socket + HTTP)

Examples::

    python -m repro.service submit --kind golden \\
        --spec '{"name": "vector_forms"}'
    python -m repro.service batch examples/service_batch.json --json
    python -m repro.service batch jobs.json --no-cache --jobs 4
    python -m repro.service key --kind vector --spec "$(cat op.json)"
    python -m repro.service serve --socket /tmp/repro.sock \\
        --journal-dir .repro-journal
    python -m repro.service submit --remote unix:/tmp/repro.sock \\
        --kind golden --spec '{"name": "vector_forms"}' --stream

``--remote ADDR`` (on ``submit``, ``batch``, ``stats``) talks to a
running ``serve`` instance over its framed socket protocol instead of
simulating in-process; ``--stream`` prints each status transition as
the server pushes it.  ``serve`` drains gracefully on SIGTERM and,
with ``--journal-dir``, resumes journaled work after a hard kill.

``--no-cache`` bypasses the result cache entirely (every job
simulates); ``--cache-dir`` points the store somewhere other than
``.repro-cache/``; ``--jobs N`` fans execution over N fork-pool
workers.  ``--journal-dir DIR`` write-ahead-journals every job
transition so a killed run can be resumed by re-running with the same
directory; ``--timeout S`` bounds the wait per run (unfinished jobs
are reported, exit status 1).  ``--tenant NAME`` attributes the
submission for per-tenant metering.  ``--json`` emits the
machine-readable summary (what the CI smoke stage diffs) instead of
the human table.
"""

import argparse
import json
import sys

from repro.analysis import service_stats, service_stats_table
from repro.service.api import load_batch, run_batch
from repro.service.cache import ResultCache
from repro.service.jobkey import JobSpec, job_key
from repro.service.scheduler import JobError, JobTimeout, \
    SimulationService


def _build_service(args) -> SimulationService:
    use_cache = not args.no_cache
    cache = ResultCache(root=args.cache_dir) if use_cache else None
    return SimulationService(cache=cache, use_cache=use_cache,
                             pool_jobs=args.jobs,
                             journal_dir=args.journal_dir)


def _job_from_args(args) -> JobSpec:
    spec = json.loads(args.spec) if args.spec is not None else None
    return JobSpec(kind=args.kind, spec=spec, tier=args.tier,
                   config=(json.loads(args.config)
                           if args.config is not None else None),
                   seed=args.seed,
                   tenant=getattr(args, "tenant", None))


def _emit(summary: dict, args, out=None):
    out = out if out is not None else sys.stdout
    if args.json:
        json.dump(summary, out, indent=2, sort_keys=True)
        out.write("\n")
        return
    from repro.analysis import Table
    table = Table(
        "Service batch summary",
        ["#", "kind", "status", "submits", "key", "digest",
         "queued s", "run s"],
    )
    for record in summary["jobs"]:
        table.add(record["index"], record["kind"], record["status"],
                  record["submits"], record["key"][:12],
                  (record["digest"] or "-")[:12],
                  round(record["queued_s"], 4),
                  round(record["run_s"], 4))
    out.write(table.render() + "\n\n")
    stats = summary["stats"]
    out.write(service_stats_table(stats).render() + "\n")


def _remote_client(args):
    from repro.service.net import ServiceClient
    return ServiceClient(args.remote,
                         auth=getattr(args, "auth", None))


def _remote_submit(args) -> int:
    job = _job_from_args(args)
    from repro.service.net import job_document
    document = job_document(job)
    document.pop("tenant", None)
    with _remote_client(args) as client:
        if args.stream:
            record = None
            for tag, payload in client.stream(job=document,
                                              priority=args.priority):
                if tag == "event":
                    print(f"{payload['state']:<9} "
                          f"{payload['key'][:12]}… "
                          f"({payload['op']})")
                elif tag == "end":
                    record = payload
        else:
            record = client.submit(document,
                                   priority=args.priority,
                                   wait=args.timeout or 60.0)
    record["index"] = 0
    summary = {"jobs": [record], "stats": None,
               "all_ok": record.get("status") in ("done", "cached")}
    if args.json:
        json.dump(summary, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        status = record.get("status")
        digest = record.get("digest") or "-"
        print(f"{record['key'][:12]}… {status} digest {digest[:12]}")
    return 0 if summary["all_ok"] else 1


def _cmd_submit(args) -> int:
    if args.remote:
        return _remote_submit(args)
    service = _build_service(args)
    job = _job_from_args(args)
    future = service.submit(job, priority=args.priority)
    if args.timeout is not None:
        try:
            future.result(timeout=args.timeout)
        except JobTimeout:
            pass  # non-terminal status reported below
        except JobError:
            pass  # terminal failure: status reported below
    else:
        service.drain()
    record = future.as_json()
    record["index"] = 0
    summary = {
        "jobs": [record],
        "stats": service_stats(service),
        "all_ok": future.status in ("done", "cached"),
    }
    _emit(summary, args)
    return 0 if summary["all_ok"] else 1


def _remote_batch(args) -> int:
    from repro.service.net import job_document
    jobs = load_batch(args.path, tenant=args.tenant)
    with _remote_client(args) as client:
        records = []
        for index, job in enumerate(jobs):
            document = job_document(job)
            record = client.submit(document,
                                   wait=args.timeout or 60.0)
            record["index"] = index
            records.append(record)
        stats = client.stats()
    summary = {
        "jobs": records,
        "stats": stats,
        "all_ok": all(r.get("status") in ("done", "cached")
                      for r in records),
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    else:
        _emit(summary, args)
    return 0 if summary["all_ok"] else 1


def _cmd_batch(args) -> int:
    if args.remote:
        return _remote_batch(args)
    service = _build_service(args)
    jobs = load_batch(args.path, tenant=args.tenant)
    summary = run_batch(service, jobs, timeout=args.timeout)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    else:
        _emit(summary, args)
    return 0 if summary["all_ok"] else 1


def _cmd_key(args) -> int:
    print(job_key(_job_from_args(args)))
    return 0


def _cmd_serve(args) -> int:
    from repro.service.net import run_server
    service = _build_service(args)
    auth_tokens = None
    if args.auth_token:
        auth_tokens = {}
        for pair in args.auth_token:
            token, _, tenant = pair.partition("=")
            auth_tokens[token] = tenant or token
    host = args.host
    if args.socket is None and host is None:
        host = "127.0.0.1"
    run_server(
        service,
        unix_path=args.socket,
        host=host,
        port=args.port,
        auth_tokens=auth_tokens,
        require_auth=args.require_auth,
        max_connections=args.max_connections,
        idle_timeout_s=args.idle_timeout,
    )
    return 0


def _cmd_stats(args) -> int:
    if args.remote:
        with _remote_client(args) as client:
            print(json.dumps(client.stats(), indent=2,
                             sort_keys=True))
        return 0
    cache = ResultCache(root=args.cache_dir)
    usage = cache.disk_usage()
    usage["root"] = cache.root
    if args.journal_dir:
        from repro.service.journal import JobJournal
        journal = JobJournal(args.journal_dir, fsync=False)
        replay = journal.replay()
        usage["journal"] = {
            **journal.stats(),
            "pending": len(replay.pending()),
            "done": len(replay.done),
            "replay": replay.stats,
        }
    print(json.dumps(usage, indent=2, sort_keys=True))
    return 0


def _add_job_arguments(parser):
    parser.add_argument("--kind", required=True,
                        help="registered workload kind (cp, events, "
                        "occam, vector, faults, golden, bench.*)")
    parser.add_argument("--spec", help="workload spec as JSON")
    parser.add_argument("--tier", choices=("reference", "fast",
                                           "turbo"),
                        help="kernel tier (default: ambient)")
    parser.add_argument("--config", help="machine config as JSON "
                        "(key-affecting; handed to takes='job' "
                        "runners)")
    parser.add_argument("--seed", type=int,
                        help="seed (key-affecting)")
    parser.add_argument("--tenant", default=None,
                        help="submitting tenant id (metering only — "
                        "never part of the job key)")


def _add_service_arguments(parser):
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                        "(default .repro-cache or REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the result cache entirely")
    parser.add_argument("--jobs", default=None,
                        help="fork-pool workers per drain "
                        "(default: REPRO_SWEEP_JOBS, i.e. inline)")
    parser.add_argument("--journal-dir", default=None,
                        help="write-ahead job journal directory; a "
                        "killed run resumes when re-run with the "
                        "same directory")
    parser.add_argument("--timeout", type=float, default=None,
                        help="bound the wait in seconds; unfinished "
                        "jobs are reported instead of blocking")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable summary")
    parser.add_argument("--remote", default=None,
                        help="submit to a running serve instance "
                        "(unix:/path or host:port) instead of "
                        "simulating in-process")
    parser.add_argument("--auth", default=None,
                        help="auth token sent with --remote submits")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser(
        "submit", help="run one job through the service")
    _add_job_arguments(submit)
    _add_service_arguments(submit)
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--stream", action="store_true",
                        help="with --remote: print status events as "
                        "the server pushes them")
    submit.set_defaults(handler=_cmd_submit)

    batch = commands.add_parser(
        "batch", help="run a batch file of jobs")
    batch.add_argument("path", help="batch JSON file")
    _add_service_arguments(batch)
    batch.add_argument("--tenant", default=None,
                       help="tenant for jobs that name none "
                       "(metering only — never part of the job key)")
    batch.add_argument("--out", help="write the JSON summary here")
    batch.set_defaults(handler=_cmd_batch)

    key = commands.add_parser(
        "key", help="print a job's content address")
    _add_job_arguments(key)
    key.set_defaults(handler=_cmd_key)

    stats = commands.add_parser(
        "stats", help="inspect the on-disk cache store and journal")
    stats.add_argument("--cache-dir", default=None)
    stats.add_argument("--journal-dir", default=None)
    stats.add_argument("--remote", default=None,
                       help="query a running serve instance instead")
    stats.add_argument("--auth", default=None)
    stats.set_defaults(handler=_cmd_stats)

    serve = commands.add_parser(
        "serve", help="run the network front-end until SIGTERM")
    _add_service_arguments(serve)
    serve.add_argument("--socket", default=None,
                       help="bind a unix socket at this path")
    serve.add_argument("--host", default=None,
                       help="bind TCP on this host (default "
                       "127.0.0.1 when no --socket is given)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default: ephemeral)")
    serve.add_argument("--auth-token", action="append", default=[],
                       metavar="TOKEN=TENANT",
                       help="accept TOKEN as TENANT (repeatable); "
                       "with any --auth-token, unknown tokens are "
                       "rejected")
    serve.add_argument("--require-auth", action="store_true",
                       help="reject submissions without a token")
    serve.add_argument("--max-connections", type=int, default=256)
    serve.add_argument("--idle-timeout", type=float, default=30.0,
                       help="drop connections idle this many seconds")
    serve.set_defaults(handler=_cmd_serve)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
