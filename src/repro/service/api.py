"""Client-side helpers: batch files and run summaries.

A batch file is the machine-room submission format — one JSON
document describing many jobs::

    {"defaults": {"tier": "turbo"},
     "jobs": [
       {"kind": "vector", "spec": {...}},
       {"kind": "cp", "spec": {...}, "priority": 5},
       {"kind": "golden", "spec": {"name": "events_mixed"}}
     ]}

``defaults`` (optional) fills in missing ``tier``/``config``/``seed``
per job.  The bench cell lists (E8 configurations, A2 link factors,
E13b fault campaign) are expressible this way: one job per cell under
a registered ``bench.*`` kind.

:func:`run_batch` is what both the CLI and the CI smoke stage drive:
submit everything, drain once, and report per-job status plus the
service-stats rollup as one JSON-able summary.
"""

import json

from repro.service.jobkey import JobSpec


def load_batch(path: str) -> list:
    """Parse a batch file into ``(JobSpec, priority)`` pairs."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "jobs" not in document:
        raise ValueError(f"{path}: batch file needs a 'jobs' array")
    defaults = document.get("defaults", {})
    pairs = []
    for index, entry in enumerate(document["jobs"]):
        if "kind" not in entry:
            raise ValueError(f"{path}: job {index} has no 'kind'")
        pairs.append((
            JobSpec(
                kind=entry["kind"],
                spec=entry.get("spec"),
                tier=entry.get("tier", defaults.get("tier")),
                config=entry.get("config", defaults.get("config")),
                seed=entry.get("seed", defaults.get("seed")),
            ),
            int(entry.get("priority", defaults.get("priority", 0))),
        ))
    return pairs


def run_batch(service, jobs) -> dict:
    """Submit ``(job, priority)`` pairs, drain, summarise.

    The summary is JSON-able: per-job records in submission order
    (status, key, payload digest, latencies) plus the service-stats
    rollup, with ``all_ok`` true only when every job ended ``done``
    or ``cached``.
    """
    from repro.analysis import service_stats
    futures = service.submit_batch(jobs)
    service.drain()
    records = []
    for index, future in enumerate(futures):
        record = future.as_json()
        record["index"] = index
        records.append(record)
    return {
        "jobs": records,
        "stats": service_stats(service),
        "all_ok": all(
            f.status in ("done", "cached") for f in futures
        ),
    }
