"""Client-side helpers: batch files and run summaries.

A batch file is the machine-room submission format — one JSON
document describing many jobs::

    {"defaults": {"tier": "turbo"},
     "jobs": [
       {"kind": "vector", "spec": {...}},
       {"kind": "cp", "spec": {...}, "priority": 5},
       {"kind": "golden", "spec": {"name": "events_mixed"}}
     ]}

``defaults`` (optional) fills in missing ``tier``/``config``/``seed``
per job.  The bench cell lists (E8 configurations, A2 link factors,
E13b fault campaign) are expressible this way: one job per cell under
a registered ``bench.*`` kind.

:func:`run_batch` is what both the CLI and the CI smoke stage drive:
submit everything, drain once, and report per-job status plus the
service-stats rollup as one JSON-able summary.
"""

import json

from repro.service.jobkey import JobSpec


def load_batch(path: str, tenant=None) -> list:
    """Parse a batch file into ``(JobSpec, priority)`` pairs.

    ``tenant`` is the submitting tenant when neither the job entry
    nor the file's ``defaults`` name one (metering only — tenant is
    never part of the job key).
    """
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "jobs" not in document:
        raise ValueError(f"{path}: batch file needs a 'jobs' array")
    defaults = document.get("defaults", {})
    if tenant is not None:
        defaults = {**defaults, "tenant": defaults.get("tenant", tenant)}
    pairs = []
    for index, entry in enumerate(document["jobs"]):
        if "kind" not in entry:
            raise ValueError(f"{path}: job {index} has no 'kind'")
        pairs.append((
            JobSpec(
                kind=entry["kind"],
                spec=entry.get("spec"),
                tier=entry.get("tier", defaults.get("tier")),
                config=entry.get("config", defaults.get("config")),
                seed=entry.get("seed", defaults.get("seed")),
                tenant=entry.get("tenant", defaults.get("tenant")),
            ),
            int(entry.get("priority", defaults.get("priority", 0))),
        ))
    return pairs


def run_batch(service, jobs, timeout=None) -> dict:
    """Submit ``(job, priority)`` pairs, drain, summarise.

    The summary is JSON-able: per-job records in submission order
    (status, key, payload digest, latencies) plus the service-stats
    rollup, with ``all_ok`` true only when every job ended ``done``
    or ``cached``.

    ``timeout`` (seconds) bounds the whole batch: the drain runs on a
    background thread and any job still unfinished at the deadline is
    reported with its non-terminal status (``all_ok`` false) instead
    of blocking forever.
    """
    import time as _time

    from repro.analysis import service_stats
    from repro.service.scheduler import JobError, JobTimeout
    futures = service.submit_batch(jobs)
    if timeout is None:
        service.drain()
    else:
        deadline = _time.monotonic() + float(timeout)
        for future in futures:
            remaining = max(0.001, deadline - _time.monotonic())
            try:
                future.result(timeout=remaining)
            except JobTimeout:
                pass  # reported via the future's status below
            except JobError:
                pass  # failed/cancelled/rejected: status is terminal
    records = []
    for index, future in enumerate(futures):
        record = future.as_json()
        record["index"] = index
        records.append(record)
    return {
        "jobs": records,
        "stats": service_stats(service),
        "all_ok": all(
            f.status in ("done", "cached") for f in futures
        ),
    }
