"""The content-addressed result cache: memory LRU over a disk store.

A cache entry maps a job key (see :mod:`repro.service.jobkey`) to the
JSON-normalised result payload of one simulation.  Because the key
already folds in the schema version, the golden-set semantics
fingerprint, and the runner source digest, the store never needs
explicit invalidation — stale entries simply stop being addressed and
age out under the size bound.

Two tiers:

* **Memory** — an ``OrderedDict`` LRU holding the most recently
  touched payloads (bounded by entry count).  Hits cost a dict lookup.
* **Disk** — one JSON envelope per entry under ``.repro-cache/`` (or
  ``REPRO_CACHE_DIR``), fanned out by key prefix.  Writes are atomic
  (temp file + ``os.replace`` in the same directory) so a crashed or
  concurrent writer can never leave a half-entry where a reader finds
  it.  Every envelope embeds a checksum of the payload's canonical
  JSON; a read that fails to parse, fails the checksum, or holds the
  wrong key is treated as corruption — the file is deleted, the miss
  is reported, and the job simply re-simulates.

Disk usage is bounded: after each store, entries are evicted oldest
first until the store fits ``disk_bytes``.  Eviction order is fully
deterministic — (mtime, then key) — so two stores that reach the
bound with the same entry set evict the same victims regardless of
filesystem timestamp resolution or directory-scan order.
"""

import json
import os
import tempfile
from collections import OrderedDict

from repro.service.jobkey import canonical_json, payload_digest

#: Envelope format marker; entries with a different format are
#: treated as corrupt (deleted and re-simulated).
CACHE_FORMAT = 1

DEFAULT_DIR = ".repro-cache"
DEFAULT_MEMORY_ENTRIES = 256
DEFAULT_DISK_BYTES = 256 * 1024 * 1024


def default_cache_dir() -> str:
    """``REPRO_CACHE_DIR`` if set, else ``.repro-cache`` in the cwd."""
    return os.environ.get("REPRO_CACHE_DIR") or DEFAULT_DIR


class ResultCache:
    """Two-tier content-addressed store for job result payloads."""

    def __init__(self, root=None, memory_entries=DEFAULT_MEMORY_ENTRIES,
                 disk_bytes=DEFAULT_DISK_BYTES):
        self.root = os.path.abspath(root or default_cache_dir())
        self.memory_entries = max(0, int(memory_entries))
        self.disk_bytes = max(0, int(disk_bytes))
        self._memory = OrderedDict()
        # Counters (surfaced through repro.analysis.service_stats).
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_evictions = 0
        self.size_evictions = 0

    # -- addressing ---------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- memory tier --------------------------------------------------

    def _remember(self, key: str, value):
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # -- public api ---------------------------------------------------

    def get(self, key: str):
        """The cached payload for ``key``, or ``None`` on a miss.

        Never raises on a bad disk entry: corruption is counted, the
        entry evicted, and the miss reported so the scheduler
        re-simulates.
        """
        if key in self._memory:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return self._memory[key]
        path = self._path(key)
        try:
            with open(path, "r") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self._evict_corrupt(path)
            self.misses += 1
            return None
        if not self._sound(envelope, key):
            self._evict_corrupt(path)
            self.misses += 1
            return None
        value = envelope["value"]
        self._remember(key, value)
        self.disk_hits += 1
        return value

    def put(self, key: str, value, job=None):
        """Store one result payload (atomically) and enforce bounds.

        ``value`` must be JSON-normalised (the scheduler's payloads
        come off :func:`repro.parallel.run_cells`, which guarantees
        it); the embedded checksum is over its canonical JSON, so a
        later read can prove byte-identity before serving it.
        """
        envelope = {
            "format": CACHE_FORMAT,
            "key": key,
            "checksum": payload_digest(value),
            "value": value,
            "job": job,
        }
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(canonical_json(envelope))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._remember(key, value)
        self.stores += 1
        self._enforce_size_bound()

    def clear(self):
        """Drop both tiers (the on-disk store too)."""
        self._memory.clear()
        for path, _size, _mtime in self._disk_entries():
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- integrity ----------------------------------------------------

    @staticmethod
    def _sound(envelope, key: str) -> bool:
        if not isinstance(envelope, dict):
            return False
        if envelope.get("format") != CACHE_FORMAT:
            return False
        if envelope.get("key") != key:
            return False
        if "value" not in envelope:
            return False
        return envelope.get("checksum") == payload_digest(
            envelope["value"]
        )

    def _evict_corrupt(self, path: str):
        self.corrupt_evictions += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- size bound ---------------------------------------------------

    def _disk_entries(self):
        """Every on-disk entry as ``(path, size, mtime)``."""
        entries = []
        try:
            shards = os.scandir(self.root)
        except OSError:
            return entries
        with shards:
            for shard in shards:
                if not shard.is_dir():
                    continue
                try:
                    files = os.scandir(shard.path)
                except OSError:
                    continue
                with files:
                    for item in files:
                        if not item.name.endswith(".json"):
                            continue
                        try:
                            stat = item.stat()
                        except OSError:
                            continue
                        entries.append(
                            (item.path, stat.st_size, stat.st_mtime_ns)
                        )
        return entries

    def disk_usage(self) -> dict:
        """Entry count and byte total of the disk tier."""
        entries = self._disk_entries()
        return {
            "entries": len(entries),
            "bytes": sum(size for _p, size, _m in entries),
            "bound_bytes": self.disk_bytes,
        }

    @staticmethod
    def _entry_key(path: str) -> str:
        """The job key an entry file stores (its basename sans
        ``.json``) — the deterministic eviction tie-break."""
        return os.path.basename(path)[:-len(".json")]

    def _enforce_size_bound(self):
        entries = self._disk_entries()
        total = sum(size for _p, size, _m in entries)
        if total <= self.disk_bytes:
            return
        # Oldest mtime first; the entry's key breaks mtime ties, so
        # eviction order is a pure function of (entry set, mtimes) —
        # never of scan order or timestamp granularity.
        entries.sort(key=lambda e: (e[2], self._entry_key(e[0])))
        for path, size, _mtime in entries:
            if total <= self.disk_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.size_evictions += 1

    # -- stats --------------------------------------------------------

    def stats(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt_evictions": self.corrupt_evictions,
            "size_evictions": self.size_evictions,
            "memory_entries": len(self._memory),
            "root": self.root,
        }
