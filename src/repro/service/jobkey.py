"""Canonical job keys: content addresses for simulation work.

A *job* is one unit of servable simulation: a workload spec run under
one machine configuration, one kernel tier, and one seed.  Two jobs
with the same key are guaranteed to produce byte-identical result
payloads, so the key is usable as a cache address and as a dedup
handle for in-flight coalescing.

The key is the SHA-256 of a canonical JSON document::

    {"schema":   <JOB_KEY_SCHEMA_VERSION>,
     "semantics": <digest of the golden-trace set>,
     "runner":    <digest of the registered runner's source>,
     "kind":      ..., "spec": ..., "config": ..., "seed": ...,
     "tier":      ..., "opt": ...}

Canonical means sorted keys, compact separators, and ``allow_nan``
off — the byte stream is a pure function of the job's value, never of
dict build order or float spelling accidents.

Invalidation is layered, cheapest first:

* **Schema version.**  ``JOB_KEY_SCHEMA_VERSION`` names the shape of
  the key document itself.  Bumping it orphans every existing cache
  entry at once.
* **Semantics fingerprint.**  The golden-trace files under
  ``tests/golden/`` pin the simulator's observable behaviour (the
  conformance suite diffs every kernel tier against them).  Their
  digest is folded into every key, so any intentional behaviour
  change — which must regenerate the goldens — silently invalidates
  the whole cache.  ``scripts/check_cache_version.py`` enforces the
  pairing: golden digests may not change without a schema bump.
* **Runner fingerprint.**  The source digest of the registered
  workload runner (see :mod:`repro.service.workloads`), so editing a
  bench cell function invalidates that kind's entries only.
"""

import dataclasses
import hashlib
import json
import os

#: Version of the job-key document shape.  Bump whenever the key
#: schema, the runner calling convention, or simulator semantics
#: change in a way the semantics fingerprint cannot see.  The pinned
#: pairing with the golden digest lives in
#: ``tests/golden/jobkey_schema.json`` and is enforced by
#: ``scripts/check_cache_version.py``.
#: v2: the key document gained the ``opt`` field (the Occam
#: optimization level — optimized and unoptimized compiles of the same
#: spec are different jobs), and the golden set gained the
#: ``occam_optimized`` workload.
JOB_KEY_SCHEMA_VERSION = 2


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """Identity of one servable simulation.

    ``kind`` names a registered workload runner; ``spec`` is the
    JSON-able workload document it consumes.  ``tier`` picks the
    kernel tier (``None`` = resolve the ambient tier at submit time).
    ``config`` and ``seed`` are optional identity fields for runners
    whose spec does not embed them (the generator specs embed their
    own seeds; a bench cell might not) — they are folded into the key
    and handed to runners registered with ``takes="job"``.  ``opt`` is
    the Occam optimization level for runners that compile programs:
    ``-O0`` and ``-O2`` builds of the same spec reach the same
    variables but different instruction/cycle counters, so cached
    results are only sound when the level joins the key.  (Specs that
    embed their own ``"opt"`` field are already distinct; this field
    covers runners whose spec does not.)

    ``tenant`` names the submitting tenant for quota accounting and
    metering (:mod:`repro.service.tenants`).  It is *identity-safe*:
    deliberately excluded from both :meth:`payload` and
    :func:`job_key`, so identical work submitted by different tenants
    coalesces in flight and shares one cache entry.
    """

    kind: str
    spec: object = None
    tier: str = None
    config: object = None
    seed: object = None
    opt: object = None
    tenant: object = None

    def resolved(self) -> "JobSpec":
        """A copy with ``tier`` pinned to a concrete kernel tier."""
        if self.tier is not None:
            return self
        from repro.events.engine import kernel_tier
        return dataclasses.replace(self, tier=kernel_tier())

    def payload(self) -> dict:
        """The JSON document workers receive (tier must be resolved)."""
        return {
            "kind": self.kind,
            "spec": self.spec,
            "tier": self.tier,
            "config": self.config,
            "seed": self.seed,
            "opt": self.opt,
        }


def canonical_json(value) -> str:
    """The one true serialisation used for keys, checksums, and
    byte-identity comparisons: sorted keys, compact separators, NaN
    rejected (NaN breaks round-trip equality)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def payload_digest(value) -> str:
    """SHA-256 of a result payload's canonical JSON form."""
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


#: Cache of golden-set digests, keyed by directory (the directory is
#: stable within a process; tests pass explicit directories).
_FINGERPRINTS = {}


def semantics_fingerprint(golden_dir=None) -> str:
    """SHA-256 over the golden-trace digest set.

    Hashes the name and content of every golden workload file (the
    registry in :mod:`repro.testing.golden` names them — the pinned
    behavioural surface of the simulator).  A missing file is hashed
    as such rather than skipped, so a half-regenerated tree does not
    alias a complete one.
    """
    from repro.testing import golden as _golden
    directory = golden_dir or _golden.default_golden_dir()
    directory = os.path.abspath(directory)
    cached = _FINGERPRINTS.get(directory)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for name in sorted(_golden.WORKLOADS):
        path = _golden.golden_path(directory, name)
        digest.update(name.encode())
        digest.update(b"\x00")
        try:
            with open(path, "rb") as handle:
                digest.update(handle.read())
        except OSError:
            digest.update(b"<missing>")
        digest.update(b"\x00")
    fingerprint = digest.hexdigest()
    _FINGERPRINTS[directory] = fingerprint
    return fingerprint


def job_key(job: JobSpec, semantics=None) -> str:
    """The content address of one job (a SHA-256 hex digest).

    ``semantics`` overrides the golden-set fingerprint (tests); the
    runner fingerprint is looked up from the workload registry, so the
    kind must be registered before its jobs can be addressed.
    """
    from repro.service import workloads
    job = job.resolved()
    document = {
        "schema": JOB_KEY_SCHEMA_VERSION,
        "semantics": semantics or semantics_fingerprint(),
        "runner": workloads.runner_fingerprint(job.kind),
        "kind": job.kind,
        "spec": job.spec,
        "config": job.config,
        "seed": job.seed,
        "tier": job.tier,
        "opt": job.opt,
    }
    return hashlib.sha256(canonical_json(document).encode()).hexdigest()


def schema_pin_path() -> str:
    """Where the schema-version ↔ golden-digest pairing is pinned."""
    from repro.testing import golden as _golden
    return os.path.join(_golden.default_golden_dir(),
                        "jobkey_schema.json")


def current_schema_pin() -> dict:
    """The pairing the current tree would pin."""
    return {
        "job_key_schema_version": JOB_KEY_SCHEMA_VERSION,
        "golden_fingerprint": semantics_fingerprint(),
    }
