"""The write-ahead job journal: crash-durable queue state.

QCDSP and the Columbia machines were operated as always-on shared
facilities where node failures and restarts were routine; the
machine-room layer gets the same discipline here.  Every job-state
transition the scheduler makes is appended to an on-disk log *before*
the transition is observable, so a service process that dies at any
byte — ``kill -9`` mid-drain included — can be restarted on the same
``journal_dir`` and resume exactly where it stopped: unfinished jobs
re-enter the queue in their original (priority, submission) order,
and already-completed jobs are served from the result cache.

Format
------
The journal is a directory (default ``.repro-journal/``, or
``REPRO_JOURNAL_DIR``) of numbered JSONL segments
(``seg-00000001.jsonl``, …).  One record per line::

    {"crc": <crc32 of the rest>, "key": ..., "op": "SUBMIT", ...}

Records are canonical JSON (sorted keys, compact separators) with an
embedded CRC-32 over the record-without-crc, so any torn or corrupted
line is detected on replay.  Appends are flushed and ``fsync``-ed
(one fsync per batch via :meth:`JobJournal.append_many`) before the
scheduler proceeds — the write-ahead property.

Ops: ``SUBMIT`` (carries the full job payload, priority, sequence
number, and tenant), ``START``, ``DONE`` (carries the payload
digest), ``FAIL``, ``CANCEL``, and ``COMPACT`` (a barrier record:
replay state resets, making every earlier segment dead).

Replay
------
:meth:`JobJournal.replay` scans all segments in order and rebuilds
per-key state.  Damage tolerance is per-line: a line that fails to
parse or fails its CRC is dropped and counted (``torn_records`` when
it is the final line of the final segment — the classic torn write —
``corrupt_records`` otherwise) and replay continues.  A ``DONE`` for
an unknown key (its ``SUBMIT`` was corrupted away) is an orphan; a
second ``DONE`` for the same key (a retried worker whose first
completion raced a crash) is counted ``duplicate_done`` and ignored —
first completion wins.

Rotation and compaction
-----------------------
The active segment rotates at ``segment_bytes``.  Compaction writes a
fresh segment — a ``COMPACT`` barrier followed by ``SUBMIT`` records
for the still-live jobs — via temp-file + ``os.replace`` (atomic),
then best-effort unlinks the older segments.  A crash between the
replace and the unlinks is safe: replay resets at the barrier, so the
stale segments are dead weight, not state.
"""

import json
import os
import tempfile
import zlib

from repro.service.jobkey import canonical_json

#: Journal line-format marker (folded into every record's CRC via the
#: record body; bump when the record shape changes incompatibly).
JOURNAL_FORMAT = 1

DEFAULT_DIR = ".repro-journal"
DEFAULT_SEGMENT_BYTES = 1 << 20

#: The record operations, in lifecycle order.
OPS = ("SUBMIT", "START", "DONE", "FAIL", "CANCEL", "COMPACT")

#: Replay states that still need execution.
_LIVE = ("submitted", "started")


def default_journal_dir() -> str:
    """``REPRO_JOURNAL_DIR`` if set, else ``.repro-journal`` in cwd."""
    return os.environ.get("REPRO_JOURNAL_DIR") or DEFAULT_DIR


def _frame(record: dict) -> str:
    """One journal line: the record plus its CRC-32, canonical JSON."""
    body = canonical_json(record)
    crc = zlib.crc32(body.encode())
    return canonical_json({**record, "crc": crc}) + "\n"


def _parse(line: str):
    """Decode one line; ``None`` if torn/corrupt (bad JSON or CRC)."""
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict) or "crc" not in record:
        return None
    crc = record.pop("crc")
    body = canonical_json(record)
    if zlib.crc32(body.encode()) != crc:
        return None
    if record.get("op") not in OPS:
        return None
    return record


class JournalReplay:
    """Rebuilt state of one journal: what survived, what is owed.

    ``entries`` maps key → ``{"status", "job", "priority", "seq",
    "tenant", "digest", "error"}`` in first-SUBMIT order; ``pending()``
    lists the entries still owed execution, sorted by the scheduler's
    (priority, seq) contract; ``done`` maps key → payload digest.
    """

    def __init__(self):
        self.entries = {}
        self.max_seq = 0
        self.stats = {
            "records": 0,
            "segments": 0,
            "torn_records": 0,
            "corrupt_records": 0,
            "orphan_records": 0,
            "duplicate_done": 0,
            "compact_barriers": 0,
        }

    def _apply(self, record: dict):
        op = record["op"]
        self.stats["records"] += 1
        if op == "COMPACT":
            self.stats["compact_barriers"] += 1
            self.entries = {}
            return
        key = record.get("key")
        entry = self.entries.get(key)
        if op == "SUBMIT":
            seq = int(record.get("seq", 0))
            self.max_seq = max(self.max_seq, seq)
            # A re-submit of a terminal key re-opens it: the log is
            # ordered, so the newest intent wins.
            self.entries[key] = {
                "key": key,
                "status": "submitted",
                "job": record.get("job"),
                "priority": int(record.get("priority", 0)),
                "seq": seq,
                "tenant": record.get("tenant"),
                "digest": None,
                "error": None,
            }
            return
        if entry is None:
            self.stats["orphan_records"] += 1
            return
        if op == "START":
            if entry["status"] in _LIVE:
                entry["status"] = "started"
        elif op == "DONE":
            if entry["status"] == "done":
                self.stats["duplicate_done"] += 1
                return  # first completion wins
            entry["status"] = "done"
            entry["digest"] = record.get("digest")
        elif op == "FAIL":
            if entry["status"] in _LIVE:
                entry["status"] = "failed"
                entry["error"] = record.get("error")
        elif op == "CANCEL":
            if entry["status"] in _LIVE:
                entry["status"] = "cancelled"
                entry["error"] = record.get("reason", "cancelled")

    def pending(self) -> list:
        """Entries owed execution, in drain order — most urgent
        (lowest priority value) first, FIFO (submission seq) within
        a priority, matching the scheduler's heap."""
        live = [e for e in self.entries.values()
                if e["status"] in _LIVE and e["job"] is not None]
        return sorted(live, key=lambda e: (e["priority"], e["seq"]))

    @property
    def done(self) -> dict:
        return {k: e["digest"] for k, e in self.entries.items()
                if e["status"] == "done"}


class JobJournal:
    """Append-only, fsynced, checksummed job-transition log."""

    def __init__(self, root=None, fsync=True,
                 segment_bytes=DEFAULT_SEGMENT_BYTES):
        self.root = os.path.abspath(root or default_journal_dir())
        self.fsync = bool(fsync)
        self.segment_bytes = max(1, int(segment_bytes))
        os.makedirs(self.root, exist_ok=True)
        self._handle = None
        numbers = self._segment_numbers()
        self._active = numbers[-1] if numbers else 1
        # Counters (surfaced through service_stats).
        self.appends = 0
        self.fsyncs = 0
        self.rotations = 0
        self.compactions = 0

    # -- segments -----------------------------------------------------

    def _segment_path(self, number: int) -> str:
        return os.path.join(self.root, f"seg-{number:08d}.jsonl")

    def _segment_numbers(self) -> list:
        numbers = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return numbers
        for name in names:
            if name.startswith("seg-") and name.endswith(".jsonl"):
                try:
                    numbers.append(int(name[4:-6]))
                except ValueError:
                    continue
        return sorted(numbers)

    def _sync_dir(self):
        """fsync the journal directory (rename/create durability)."""
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _open_active(self):
        if self._handle is None:
            self._handle = open(self._segment_path(self._active), "a")
        return self._handle

    def rotate(self):
        """Close the active segment and start the next one."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._active += 1
        self.rotations += 1
        # Touch the new segment so replay sees it even before the
        # first append lands.
        with open(self._segment_path(self._active), "a"):
            pass
        self._sync_dir()

    # -- appends ------------------------------------------------------

    def append(self, op: str, key=None, **fields):
        """Append one record (flushed and fsynced before returning)."""
        record = {"op": op}
        if key is not None:
            record["key"] = key
        record.update(fields)
        self.append_many([record])

    def append_many(self, records, sync=True):
        """Append a batch of records with a single flush + fsync.

        The write-ahead contract: when this returns, every record is
        durable (to the extent ``fsync=True`` and the filesystem
        honour it) — the caller may then act on the transitions.

        ``sync=False`` flushes but skips the fsync — for advisory
        records (START) whose loss does not change recovery: a torn
        START replays as "submitted", which re-enqueues identically.
        The next synced append makes them durable anyway.
        """
        records = list(records)
        if not records:
            return
        handle = self._open_active()
        for record in records:
            handle.write(_frame(record))
            self.appends += 1
        handle.flush()
        if self.fsync and sync:
            os.fsync(handle.fileno())
            self.fsyncs += 1
        if handle.tell() >= self.segment_bytes:
            self.rotate()

    # -- replay -------------------------------------------------------

    def replay(self) -> JournalReplay:
        """Rebuild state from every segment on disk.

        Damage-tolerant per line: unparseable or CRC-failing lines are
        dropped and counted (torn when final, corrupt otherwise) and
        replay continues with the next line.
        """
        replay = JournalReplay()
        numbers = self._segment_numbers()
        replay.stats["segments"] = len(numbers)
        lines = []  # (segment_number, line)
        for number in numbers:
            try:
                with open(self._segment_path(number), "r") as handle:
                    for line in handle:
                        if line.strip():
                            lines.append(line)
            except OSError:
                continue
        for position, line in enumerate(lines):
            record = _parse(line)
            if record is None:
                if position == len(lines) - 1:
                    replay.stats["torn_records"] += 1
                else:
                    replay.stats["corrupt_records"] += 1
                continue
            replay._apply(record)
        return replay

    # -- compaction ---------------------------------------------------

    def size_bytes(self) -> int:
        total = 0
        for number in self._segment_numbers():
            try:
                total += os.path.getsize(self._segment_path(number))
            except OSError:
                continue
        return total

    def compact(self, submit_records):
        """Rewrite the journal to a barrier plus the live jobs.

        ``submit_records`` are the SUBMIT-shaped dicts for every job
        still owed execution (the scheduler knows).  The new segment
        is written whole and published atomically; older segments are
        then unlinked best-effort (replay resets at the barrier, so a
        crash mid-unlink leaves garbage, not state).
        """
        submit_records = list(submit_records)
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        old_numbers = self._segment_numbers()
        number = (old_numbers[-1] + 1) if old_numbers else 1
        path = self._segment_path(number)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(_frame({"op": "COMPACT",
                                     "live": len(submit_records)}))
                for record in submit_records:
                    handle.write(_frame({"op": "SUBMIT", **record}))
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._sync_dir()
        for old in old_numbers:
            if old == number:
                continue
            try:
                os.unlink(self._segment_path(old))
            except OSError:
                pass
        self._active = number
        self.compactions += 1
        self.appends += 1 + len(submit_records)

    # -- lifecycle ----------------------------------------------------

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def stats(self) -> dict:
        return {
            "root": self.root,
            "segments": len(self._segment_numbers()),
            "size_bytes": self.size_bytes(),
            "appends": self.appends,
            "fsyncs": self.fsyncs,
            "rotations": self.rotations,
            "compactions": self.compactions,
        }
