"""Network serving front-end for the machine-room service.

Layers, bottom up: :mod:`~repro.service.net.protocol` (CRC-checked
length-prefixed JSON frames, protocol versioning, structured wire
errors), :mod:`~repro.service.net.bus` (in-process status event bus
fed by the scheduler's lifecycle hooks), :mod:`~repro.service.net.server`
(the asyncio runtime serving the framed protocol and a minimal
HTTP/1.1 adapter on the same listeners, with auth, backpressure, and
graceful drain), and :mod:`~repro.service.net.client` (sync + async
clients behind the CLI's ``--remote`` flag).
"""

from repro.service.net.bus import StatusBus, Subscription, \
    is_terminal
from repro.service.net.client import AsyncServiceClient, \
    ServiceClient, job_document, parse_address
from repro.service.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    RemoteJobError,
    encode_frame,
)
from repro.service.net.server import (
    AuthError,
    NetCounters,
    ServerThread,
    ServiceServer,
    UnknownKeyError,
    run_server,
)

__all__ = [
    "AsyncServiceClient",
    "AuthError",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "NetCounters",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteJobError",
    "ServerThread",
    "ServiceClient",
    "ServiceServer",
    "StatusBus",
    "Subscription",
    "UnknownKeyError",
    "encode_frame",
    "is_terminal",
    "job_document",
    "parse_address",
    "run_server",
]
