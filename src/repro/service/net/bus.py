"""In-process status event bus: scheduler transitions → subscribers.

The scheduler emits one structured event per journal record type
(:meth:`~repro.service.scheduler.SimulationService.add_status_listener`);
this bus fans them out to any number of subscribers — the streaming
socket/HTTP handlers — with the guarantees a streaming client needs:

* **Per-key ordering.**  Events for one job key are delivered in
  emission order (SUBMIT → START → DONE/FAIL); publish and subscribe
  serialize on one lock.
* **Exactly-once.**  Each subscription dedups on ``(key, op, run)``:
  even if a defensive re-emission ever reached the bus, a subscriber
  sees each lifecycle transition once.  A *new* lifecycle for the
  same key (the job re-submitted after completion, e.g. post-restart)
  bumps the run counter, so its events flow again.
* **Late-subscriber replay.**  The bus retains each key's event
  history (an LRU over ``history_keys`` keys); subscribing to a key
  that already progressed first replays what was missed, atomically
  with registration, so there is no gap between "replayed history"
  and "live events".

Subscribers provide a callback (``deliver(event)``); the server-side
wraps an ``asyncio`` queue behind it via ``call_soon_threadsafe``.
Callbacks run on the publishing thread (a scheduler thread holding
the service lock) and must enqueue and return — never block.
"""

import threading
from collections import OrderedDict

#: Ops that end a job's lifecycle (a subscription can stop after one).
TERMINAL_OPS = ("DONE", "FAIL", "CANCEL", "CACHED")


def is_terminal(event: dict) -> bool:
    return event.get("op") in TERMINAL_OPS


class Subscription:
    """One subscriber's view: filtered, deduplicated, ordered."""

    def __init__(self, bus, callback, key=None):
        self._bus = bus
        self._callback = callback
        self.key = key            # None = firehose (every key)
        self._seen = set()        # (key, op, run) already delivered
        self.delivered = 0
        self.active = True

    def _deliver(self, event: dict, run: int):
        if not self.active:
            return
        mark = (event.get("key"), event.get("op"), run)
        if mark in self._seen:
            return
        self._seen.add(mark)
        self.delivered += 1
        self._callback(event)

    def close(self):
        self.active = False
        self._bus._drop(self)


class StatusBus:
    """Thread-safe fan-out of job lifecycle events."""

    def __init__(self, history_keys=4096):
        self._lock = threading.Lock()
        self._subs = []
        #: key → {"run": n, "events": [event, ...]} — one lifecycle's
        #: history; a fresh SUBMIT/CACHED after a terminal op starts
        #: run n+1 with a clean history.
        self._history = OrderedDict()
        self.history_keys = int(history_keys)
        self.published = 0
        self.dropped_callbacks = 0

    def attach(self, service) -> "StatusBus":
        """Register this bus as the service's status listener."""
        service.add_status_listener(self.publish)
        return self

    def _entry(self, key):
        entry = self._history.get(key)
        if entry is not None:
            self._history.move_to_end(key)
            return entry
        entry = {"run": 0, "events": [], "terminal": False}
        self._history[key] = entry
        while len(self._history) > self.history_keys:
            self._history.popitem(last=False)
        return entry

    def publish(self, event: dict):
        """Fan one scheduler event out to every matching subscriber."""
        key = event.get("key")
        with self._lock:
            self.published += 1
            entry = self._entry(key)
            if entry["terminal"]:
                # A new lifecycle for a finished key (re-submission
                # after completion/cancel): new run, fresh history.
                entry["run"] += 1
                entry["events"] = []
                entry["terminal"] = False
            entry["events"].append(dict(event))
            if is_terminal(event):
                entry["terminal"] = True
            run = entry["run"]
            for sub in list(self._subs):
                if sub.key is not None and sub.key != key:
                    continue
                try:
                    sub._deliver(event, run)
                except Exception:
                    self.dropped_callbacks += 1

    def subscribe(self, callback, key=None,
                  replay=True) -> Subscription:
        """Register a subscriber; atomically replay missed history.

        With ``replay`` (the default) the current lifecycle's events
        for ``key`` are delivered through the same dedup path before
        the lock is released — a publish racing the subscribe can
        only ever duplicate, and the dedup set absorbs that.
        """
        sub = Subscription(self, callback, key=key)
        with self._lock:
            self._subs.append(sub)
            if replay and key is not None:
                entry = self._history.get(key)
                if entry is not None:
                    for event in entry["events"]:
                        try:
                            sub._deliver(event, entry["run"])
                        except Exception:
                            self.dropped_callbacks += 1
        return sub

    def _drop(self, sub: Subscription):
        with self._lock:
            try:
                self._subs.remove(sub)
            except ValueError:
                pass

    def last_event(self, key):
        """The most recent event for ``key`` (None if unseen)."""
        with self._lock:
            entry = self._history.get(key)
            if entry is None or not entry["events"]:
                return None
            return dict(entry["events"][-1])

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subs)
