"""Client library for the serving front-end (sync and async).

The sync :class:`ServiceClient` is a plain blocking socket speaking
the framed protocol — what the CLI's ``--remote`` flag, the benches,
and the chaos fuzzer use.  :class:`AsyncServiceClient` is the same
surface on ``asyncio`` streams for callers already inside a loop.
Both are single-request-at-a-time: responses are matched to requests
by arrival order, and a stream is consumed to its ``end`` frame
before the next call.

Addresses are strings: ``unix:/path/to.sock`` (or any bare path with
a ``/``) for Unix sockets, ``host:port`` or ``tcp:host:port`` for
TCP.  Structured server-side rejections (quota, admission, timeout,
protocol, auth) surface as :class:`RemoteJobError` with the error
document on ``.error``.
"""

import asyncio
import socket

from repro.service.jobkey import JobSpec
from repro.service.net.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    RemoteJobError,
    encode_frame,
    request,
)


def parse_address(address):
    """``unix:/path`` | ``/path`` → ("unix", path);
    ``tcp:host:port`` | ``host:port`` → ("tcp", host, port)."""
    if isinstance(address, (tuple, list)):
        return tuple(address)
    if address.startswith("unix:"):
        return ("unix", address[len("unix:"):])
    if address.startswith("tcp:"):
        address = address[len("tcp:"):]
    if "/" in address or address.startswith("."):
        return ("unix", address)
    host, sep, port = address.rpartition(":")
    if not sep:
        raise ValueError(
            f"address {address!r} is neither unix:<path> nor "
            f"<host>:<port>")
    return ("tcp", host or "127.0.0.1", int(port))


def job_document(job) -> dict:
    """A :class:`JobSpec` (or already-shaped dict) as a wire job
    document — identity fields only, Nones elided."""
    if isinstance(job, JobSpec):
        document = {"kind": job.kind}
        for field in ("spec", "tier", "config", "seed", "opt"):
            value = getattr(job, field)
            if value is not None:
                document[field] = value
        return document
    if isinstance(job, dict):
        return job
    raise TypeError(f"job must be a JobSpec or dict, "
                    f"not {type(job).__name__}")


class _MessageMixin:
    """Request shaping + response checking shared by both clients."""

    def _next_request(self, method, params) -> tuple:
        self._request_id += 1
        clean = {k: v for k, v in params.items() if v is not None}
        if self.auth is not None and method == "submit":
            clean.setdefault("auth", self.auth)
        return self._request_id, encode_frame(
            request(self._request_id, method, **clean))

    @staticmethod
    def _check(message) -> dict:
        if not isinstance(message, dict):
            raise ProtocolError("request",
                               "server sent a non-object message")
        if message.get("ok") is False:
            raise RemoteJobError(message.get("error"))
        return message


class ServiceClient(_MessageMixin):
    """Blocking framed-protocol client."""

    def __init__(self, address, auth=None, timeout=30.0,
                 max_frame_bytes=MAX_FRAME_BYTES):
        self.address = parse_address(address)
        self.auth = auth
        self.timeout = float(timeout)
        self._decoder = FrameDecoder(max_frame_bytes)
        self._inbox = []
        self._sock = None
        self._request_id = 0

    # -- connection ---------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        if self.address[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.address[1])
        else:
            sock = socket.create_connection(
                (self.address[1], self.address[2]),
                timeout=self.timeout)
        self._sock = sock
        return self

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, *exc):
        self.close()
        return False

    # -- plumbing -----------------------------------------------------

    def _send(self, data: bytes):
        self.connect()
        self._sock.sendall(data)

    def _recv_message(self) -> dict:
        while not self._inbox:
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError(
                    "server closed the connection")
            self._inbox.extend(self._decoder.feed(data))
        return self._inbox.pop(0)

    def _call(self, method, **params):
        _, frame = self._next_request(method, params)
        self._send(frame)
        return self._check(self._recv_message())

    # -- API ----------------------------------------------------------

    def ping(self) -> dict:
        return self._call("ping")["result"]

    def submit(self, job, priority=0, wait=None,
               with_result=True) -> dict:
        """Submit one job; returns its record.  ``wait=<seconds>``
        blocks server-side until terminal (or the deadline) and the
        record then carries the result payload."""
        return self._call(
            "submit", job=job_document(job), priority=priority,
            wait=wait, result=with_result)["result"]

    def submit_batch(self, jobs, priority=0, wait=None) -> list:
        return [self.submit(job, priority=priority, wait=wait)
                for job in jobs]

    def status(self, key, with_result=False) -> dict:
        return self._call("status", key=key,
                          result=with_result)["result"]

    def result(self, key, timeout=60.0) -> dict:
        """Wait server-side for ``key`` and return its full record
        (``record["result"]`` is the payload once done)."""
        return self._call("result", key=key,
                          timeout=timeout)["result"]

    def cancel(self, key) -> dict:
        return self._call("cancel", key=key)["result"]

    def stats(self) -> dict:
        return self._call("stats")["result"]

    def stream(self, key=None, job=None, priority=0):
        """Generator over one job's status events.

        Yields ``("submitted", record)`` (only when submitting via
        ``job=``), then ``("event", event)`` per lifecycle transition,
        and finally ``("end", record)`` with the result payload.
        """
        if (key is None) == (job is None):
            raise ValueError("stream() takes exactly one of key= "
                             "or job=")
        if job is not None:
            _, frame = self._next_request("submit", {
                "job": job_document(job), "priority": priority,
                "stream": True})
        else:
            _, frame = self._next_request("subscribe", {"key": key})
        self._send(frame)
        first = job is not None
        while True:
            message = self._check(self._recv_message())
            if "event" in message:
                yield ("event", message["event"])
            elif message.get("end"):
                yield ("end", message["result"])
                return
            elif first:
                first = False
                yield ("submitted", message["result"])
            else:
                raise ProtocolError(
                    "request", "unexpected message mid-stream")

    def watch(self, key) -> tuple:
        """Convenience: ``(events, final_record)`` for one key."""
        events = []
        record = None
        for tag, payload in self.stream(key=key):
            if tag == "event":
                events.append(payload)
            elif tag == "end":
                record = payload
        return events, record


class AsyncServiceClient(_MessageMixin):
    """The same surface on ``asyncio`` streams."""

    def __init__(self, address, auth=None, timeout=30.0,
                 max_frame_bytes=MAX_FRAME_BYTES):
        self.address = parse_address(address)
        self.auth = auth
        self.timeout = float(timeout)
        self._decoder = FrameDecoder(max_frame_bytes)
        self._inbox = []
        self._reader = None
        self._writer = None
        self._request_id = 0

    async def connect(self) -> "AsyncServiceClient":
        if self._writer is not None:
            return self
        if self.address[0] == "unix":
            opened = asyncio.open_unix_connection(self.address[1])
        else:
            opened = asyncio.open_connection(self.address[1],
                                             self.address[2])
        self._reader, self._writer = await asyncio.wait_for(
            opened, self.timeout)
        return self

    async def close(self):
        if self._writer is not None:
            try:
                self._writer.close()
            finally:
                self._reader = None
                self._writer = None

    async def __aenter__(self):
        return await self.connect()

    async def __aexit__(self, *exc):
        await self.close()
        return False

    async def _send(self, data: bytes):
        await self.connect()
        self._writer.write(data)
        await self._writer.drain()

    async def _recv_message(self) -> dict:
        while not self._inbox:
            data = await asyncio.wait_for(
                self._reader.read(65536), self.timeout)
            if not data:
                raise ConnectionError(
                    "server closed the connection")
            self._inbox.extend(self._decoder.feed(data))
        return self._inbox.pop(0)

    async def _call(self, method, **params):
        _, frame = self._next_request(method, params)
        await self._send(frame)
        return self._check(await self._recv_message())

    async def ping(self) -> dict:
        return (await self._call("ping"))["result"]

    async def submit(self, job, priority=0, wait=None,
                     with_result=True) -> dict:
        return (await self._call(
            "submit", job=job_document(job), priority=priority,
            wait=wait, result=with_result))["result"]

    async def status(self, key, with_result=False) -> dict:
        return (await self._call("status", key=key,
                                 result=with_result))["result"]

    async def result(self, key, timeout=60.0) -> dict:
        return (await self._call("result", key=key,
                                 timeout=timeout))["result"]

    async def cancel(self, key) -> dict:
        return (await self._call("cancel", key=key))["result"]

    async def stats(self) -> dict:
        return (await self._call("stats"))["result"]

    async def stream(self, key=None, job=None, priority=0):
        """Async generator mirroring :meth:`ServiceClient.stream`."""
        if (key is None) == (job is None):
            raise ValueError("stream() takes exactly one of key= "
                             "or job=")
        if job is not None:
            _, frame = self._next_request("submit", {
                "job": job_document(job), "priority": priority,
                "stream": True})
        else:
            _, frame = self._next_request("subscribe", {"key": key})
        await self._send(frame)
        first = job is not None
        while True:
            message = self._check(await self._recv_message())
            if "event" in message:
                yield ("event", message["event"])
            elif message.get("end"):
                yield ("end", message["result"])
                return
            elif first:
                first = False
                yield ("submitted", message["result"])
            else:
                raise ProtocolError(
                    "request", "unexpected message mid-stream")
