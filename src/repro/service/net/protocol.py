"""The wire protocol: length-prefixed, CRC-checked JSON frames.

The machine-room's durability layer already settled the framing
question once — the write-ahead journal stores canonical JSON with an
embedded CRC-32 so any torn or flipped byte is *detected*, never
silently consumed.  The socket protocol reuses that discipline on the
wire, with a fixed binary header in front (a stream has no line
boundaries to lean on):

======  ====  ====================================================
offset  size  field
======  ====  ====================================================
0       2     magic ``RN`` (0x52 0x4E)
2       1     protocol version (:data:`PROTOCOL_VERSION`)
3       1     frame type (0 = JSON message; others reserved)
4       4     payload length ``N``, big-endian
8       4     CRC-32 of the payload bytes, big-endian
12      N     payload: canonical JSON, UTF-8
======  ====  ====================================================

Every violation is a *structured* :class:`ProtocolError` carrying a
machine-readable ``code`` (``magic``, ``version``, ``type``,
``oversize``, ``crc``, ``json``) — the server answers with an error
frame naming its own version before closing, so a client three
versions behind learns *why* instead of staring at a dead socket.

Messages on top of the frames:

* request — ``{"id": n, "method": "...", "params": {...}}``
* response — ``{"id": n, "ok": true, "result": ...}`` or
  ``{"id": n, "ok": false, "error": {<structured error>}}``
* stream event — ``{"id": n, "event": {<status event>}}``; the
  subscription ends with a normal response frame carrying
  ``"end": true`` and the result payload.

Structured errors are the scheduler's own ``as_json()`` dicts
(:class:`~repro.service.scheduler.QuotaError`,
:class:`~repro.service.scheduler.AdmissionError`,
:class:`~repro.service.scheduler.JobTimeout`) plus the protocol- and
serving-level codes defined here, so a remote client sees exactly the
rejection an in-process submitter would.
"""

import json
import struct
import zlib

from repro.service.jobkey import canonical_json

#: Version of the frame header + message schema.  A frame whose
#: header names another version is rejected with a structured
#: ``version`` error (carrying this value) before any payload parse.
PROTOCOL_VERSION = 1

MAGIC = b"RN"
FRAME_TYPE_JSON = 0
HEADER = struct.Struct(">2sBBII")  # magic, version, type, length, crc
HEADER_BYTES = HEADER.size

#: Default ceiling on one frame's payload (and one HTTP body).  Big
#: enough for any result payload the benches produce, small enough
#: that a hostile length header cannot balloon the parse buffer.
MAX_FRAME_BYTES = 8 << 20


class ProtocolError(ValueError):
    """A wire-level violation, with a structured JSON form."""

    def __init__(self, code, message, **fields):
        super().__init__(message)
        self.code = code
        self.fields = fields

    def as_json(self) -> dict:
        return {"error": "protocol", "code": self.code,
                "message": str(self), **self.fields}


def encode_frame(message, version=PROTOCOL_VERSION,
                 frame_type=FRAME_TYPE_JSON) -> bytes:
    """One message as header + canonical-JSON payload bytes."""
    payload = canonical_json(message).encode()
    return HEADER.pack(MAGIC, version, frame_type, len(payload),
                       zlib.crc32(payload)) + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    ``feed(data)`` buffers and returns every complete message; a
    partial frame stays buffered for the next read (the slow-loris
    case: one frame may arrive a byte at a time).  Any header or
    payload violation raises :class:`ProtocolError` — after that the
    stream is unsynchronised and the connection must be dropped.
    """

    def __init__(self, max_frame_bytes=MAX_FRAME_BYTES):
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()

    def pending_bytes(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> list:
        self._buffer.extend(data)
        messages = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return messages
            magic, version, frame_type, length, crc = HEADER.unpack(
                bytes(self._buffer[:HEADER_BYTES])
            )
            if magic != MAGIC:
                raise ProtocolError(
                    "magic", f"bad frame magic {bytes(magic)!r}"
                )
            if version != PROTOCOL_VERSION:
                raise ProtocolError(
                    "version",
                    f"protocol version {version} unsupported",
                    server_version=PROTOCOL_VERSION,
                    client_version=version,
                )
            if frame_type != FRAME_TYPE_JSON:
                raise ProtocolError(
                    "type", f"unknown frame type {frame_type}"
                )
            if length > self.max_frame_bytes:
                raise ProtocolError(
                    "oversize",
                    f"frame of {length} bytes exceeds limit "
                    f"{self.max_frame_bytes}",
                    limit=self.max_frame_bytes, length=length,
                )
            if len(self._buffer) < HEADER_BYTES + length:
                return messages
            payload = bytes(
                self._buffer[HEADER_BYTES:HEADER_BYTES + length]
            )
            del self._buffer[:HEADER_BYTES + length]
            if zlib.crc32(payload) != crc:
                raise ProtocolError(
                    "crc", "frame payload failed its CRC-32"
                )
            try:
                messages.append(json.loads(payload))
            except ValueError as exc:
                raise ProtocolError(
                    "json", f"frame payload is not JSON: {exc}"
                ) from None


# -- message shaping --------------------------------------------------

def request(request_id, method, **params) -> dict:
    return {"id": request_id, "method": method, "params": params}


def response(request_id, result, end=False) -> dict:
    message = {"id": request_id, "ok": True, "result": result}
    if end:
        message["end"] = True
    return message


def error_response(request_id, error) -> dict:
    return {"id": request_id, "ok": False,
            "error": error_payload(error)}


def stream_event(request_id, event) -> dict:
    return {"id": request_id, "event": event}


def error_payload(error) -> dict:
    """The structured JSON form of any serving-path error.

    Scheduler errors and :class:`ProtocolError` bring their own
    ``as_json``; anything else is wrapped as an ``internal`` error so
    a client always receives the same envelope shape.
    """
    if isinstance(error, dict):
        return error
    as_json = getattr(error, "as_json", None)
    if callable(as_json):
        return as_json()
    return {"error": "internal",
            "message": f"{type(error).__name__}: {error}"}


class RemoteJobError(RuntimeError):
    """Client-side: the server answered with a structured error."""

    def __init__(self, error: dict):
        self.error = dict(error or {})
        code = self.error.get("error", "unknown")
        message = self.error.get("message") or canonical_json(
            self.error
        )
        super().__init__(f"remote {code} error: {message}")

    @property
    def code(self) -> str:
        return self.error.get("error", "unknown")
