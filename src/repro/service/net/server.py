"""The asyncio serving runtime: sockets + HTTP over one core.

QCDSP's node machine was operated as a shared facility behind a
front-end host; this module is that host for the machine room.  One
``asyncio`` event loop accepts connections on a Unix socket and/or a
TCP port, sniffs the first two bytes of each connection, and serves
either wire dialect on the same core:

* the framed protocol (:mod:`repro.service.net.protocol`) — magic
  ``RN``, version byte, CRC-checked length-prefixed JSON;
* a minimal HTTP/1.1 adapter — ``POST /jobs``, ``GET /jobs/<key>``,
  ``GET /jobs/<key>/stream`` (chunked status events), ``GET /stats``,
  ``GET /healthz`` — so ``curl`` against the same port just works.

The event loop never simulates.  Submissions run
``SimulationService.submit`` on the default executor (journal fsyncs
off the loop), execution happens on a dedicated *drain thread* that
the loop wakes after each admission, and job status flows back
through the :class:`~repro.service.net.bus.StatusBus` fed by the
scheduler's lifecycle hooks — each streaming subscriber owns a
bounded ``asyncio.Queue`` bridged with ``call_soon_threadsafe``.

Backpressure and protection, outermost first: a connection beyond
``max_connections`` (or arriving during drain) is shed with a
structured error; per-request auth resolves an ``X-Repro-Token`` /
``Authorization: Bearer`` header (or the framed ``auth`` param)
through an optional token table into a
:class:`~repro.service.tenants.TenantTable` tenant, so quotas meter
*people*, not sockets; frames and HTTP bodies beyond
``max_frame_bytes`` are rejected before buffering
(413 / ``oversize``); a connection idle past ``idle_timeout_s`` is
dropped; a streaming subscriber that cannot keep up has its queue
reset to a single overflow marker and the stream is closed with a
``slow_consumer`` error instead of buffering without bound.  The
scheduler's own rejections (:class:`QuotaError` → 429,
:class:`AdmissionError` → 503, :class:`JobTimeout`) cross the wire as
their structured ``as_json`` forms.

Graceful drain: ``SIGTERM``/``SIGINT`` (via :func:`run_server`) stops
accepting, lets the drain thread finish every queued job —
subscribers receive their terminal events — flushes and closes the
journal, then closes remaining connections.  A ``kill -9`` instead
loses nothing durable: the write-ahead journal replays on the next
start, the server adopts the recovered futures, and wakes the drain
thread to finish them.
"""

import asyncio
import json
import threading
import time
import urllib.parse
from collections import OrderedDict

from repro.service.jobkey import JobSpec, canonical_json, \
    payload_digest
from repro.service.net.bus import StatusBus, is_terminal
from repro.service.net.protocol import (
    MAGIC,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    error_response,
    response,
    stream_event,
)
from repro.service.scheduler import (
    EVENT_STATES,
    AdmissionError,
    JobError,
    JobTimeout,
    QuotaError,
)
from repro.service.workloads import UnknownWorkloadError

_REASONS = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized",
    404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 413: "Payload Too Large",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}

#: HTTP methods we recognise when sniffing a connection's dialect.
_HTTP_HEADS = {b"GE", b"PO", b"PU", b"DE", b"HE", b"OP", b"PA"}

#: Map a terminal future status back to the event op announcing it.
_TERMINAL_OPS = {"done": "DONE", "cached": "CACHED",
                 "failed": "FAIL", "cancelled": "CANCEL",
                 "shed": "CANCEL", "rejected": "CANCEL"}


class AuthError(RuntimeError):
    """Structured rejection: the auth token did not resolve."""

    def __init__(self, message):
        super().__init__(message)

    def as_json(self) -> dict:
        return {"error": "auth", "message": str(self)}


class UnknownKeyError(KeyError):
    """Structured rejection: nobody knows this job key."""

    def __init__(self, key):
        super().__init__(key)
        self.key = key

    def as_json(self) -> dict:
        return {"error": "unknown_key", "key": self.key}


class HttpError(Exception):
    """An HTTP-level rejection with a status and structured body."""

    def __init__(self, status, payload):
        super().__init__(f"HTTP {status}")
        self.status = status
        self.payload = payload


class NetCounters:
    """Wire-level counters, attached to ``service.net`` while a
    server runs and surfaced through ``service_stats``."""

    _FIELDS = (
        "connections", "active_connections", "frames_in",
        "frames_out", "http_requests", "rejected_auth", "shed",
        "protocol_errors", "idle_timeouts", "streaming_subscribers",
        "stream_events", "submits", "drain_errors",
    )

    def __init__(self):
        for field in self._FIELDS:
            setattr(self, field, 0)

    def snapshot(self) -> dict:
        return {field: getattr(self, field)
                for field in self._FIELDS}


class ServiceServer:
    """One serving front-end over one :class:`SimulationService`."""

    def __init__(self, service, unix_path=None, host=None, port=0,
                 auth_tokens=None, require_auth=False,
                 max_connections=256,
                 max_frame_bytes=MAX_FRAME_BYTES,
                 idle_timeout_s=30.0, stream_timeout_s=600.0,
                 stream_queue=256, max_futures=16384):
        if unix_path is None and host is None:
            raise ValueError("need a unix_path and/or a host to bind")
        self.service = service
        self.unix_path = unix_path
        self.host = host
        self.port = port
        #: token → tenant; ``None`` means "the token *is* the tenant"
        #: (no table to check against).
        self.auth_tokens = (dict(auth_tokens)
                            if auth_tokens is not None else None)
        self.require_auth = bool(require_auth)
        self.max_connections = int(max_connections)
        self.max_frame_bytes = int(max_frame_bytes)
        self.idle_timeout_s = float(idle_timeout_s)
        self.stream_timeout_s = float(stream_timeout_s)
        self.stream_queue = int(stream_queue)
        self.max_futures = int(max_futures)
        self.counters = NetCounters()
        service.net = self.counters
        #: Attached before the listener sockets exist, so no event of
        #: a served job can precede the bus's view of it.
        self.bus = StatusBus().attach(service)
        self._futures = OrderedDict()   # key -> JobFuture (bounded)
        self._writers = set()
        self._servers = []
        self._loop = None
        self._draining = False
        self._shutdown_started = False
        self._drain_wake = threading.Event()
        self._drain_stop = False
        self._drain_busy = False
        self._drain_thread = None

    # -- lifecycle ----------------------------------------------------

    async def start(self):
        """Bind the listeners and start the drain thread."""
        self._loop = asyncio.get_running_loop()
        self._drain_thread = threading.Thread(
            target=self._drain_loop, daemon=True,
            name="repro-net-drain",
        )
        self._drain_thread.start()
        if self.unix_path is not None:
            self._servers.append(await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path,
            ))
        if self.host is not None:
            server = await asyncio.start_server(
                self._handle_connection, host=self.host,
                port=self.port,
            )
            self.port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        # Adopt journal-recovered jobs: they are servable by key and
        # the drain thread finishes them without waiting for traffic.
        for future in self.service.recovered:
            self._remember(future)
        if self.service.queue_depth():
            self._drain_wake.set()
        return self

    async def shutdown(self, drain=True, timeout=30.0):
        """Graceful stop: no new connections, finish in-flight work,
        flush the journal, close what remains."""
        if self._shutdown_started:
            return
        self._shutdown_started = True
        self._draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        if drain:
            deadline = time.monotonic() + float(timeout)
            while ((self.service.queue_depth() or self._drain_busy)
                   and time.monotonic() < deadline):
                self._drain_wake.set()
                await asyncio.sleep(0.02)
        self._drain_stop = True
        self._drain_wake.set()
        if self._drain_thread is not None:
            await self._loop.run_in_executor(
                None, self._drain_thread.join, 5.0)
        if self.service.journal is not None:
            self.service.journal.close()
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        self.service.remove_status_listener(self.bus.publish)

    def addresses(self) -> list:
        """Bound endpoints, e.g. ``["unix:/tmp/s.sock",
        "tcp:127.0.0.1:40123"]``."""
        out = []
        if self.unix_path is not None:
            out.append(f"unix:{self.unix_path}")
        if self.host is not None:
            out.append(f"tcp:{self.host}:{self.port}")
        return out

    # -- the drain thread ---------------------------------------------

    def _drain_loop(self):
        """Execute queued jobs off the event loop, on demand."""
        while True:
            self._drain_wake.wait()
            self._drain_wake.clear()
            try:
                while self.service.queue_depth():
                    self.service.drain()
            except Exception:
                self.counters.drain_errors += 1
                time.sleep(0.05)
            finally:
                self._drain_busy = False
            if self._drain_stop:
                return

    def _wake_drain(self):
        self._drain_busy = True
        self._drain_wake.set()

    # -- connection handling ------------------------------------------

    async def _handle_connection(self, reader, writer):
        counters = self.counters
        counters.connections += 1
        counters.active_connections += 1
        self._writers.add(writer)
        try:
            shed = (self._draining or counters.active_connections
                    > self.max_connections)
            try:
                head = await asyncio.wait_for(
                    reader.readexactly(2), self.idle_timeout_s)
            except asyncio.TimeoutError:
                counters.idle_timeouts += 1
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if shed:
                counters.shed += 1
                await self._reject_connection(writer, head)
                return
            if head == MAGIC:
                await self._serve_frames(reader, writer, head)
            elif head in _HTTP_HEADS:
                await self._serve_http(reader, writer, head)
            else:
                counters.protocol_errors += 1
                await self._send_frame(writer, error_response(
                    None, ProtocolError(
                        "magic", f"unrecognised preamble {head!r}")))
        except (ConnectionError, BrokenPipeError):
            pass
        except Exception:
            # A handler bug must not take the accept loop down.
            counters.drain_errors += 0  # placeholder: keep counters
        finally:
            counters.active_connections -= 1
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _reject_connection(self, writer, head):
        error = {"error": "shed",
                 "message": ("draining" if self._draining
                             else "connection limit reached"),
                 "limit": self.max_connections}
        if head == MAGIC:
            await self._send_frame(writer,
                                   error_response(None, error))
        else:
            await self._write_http(writer, 503, error)

    # -- framed protocol ----------------------------------------------

    async def _send_frame(self, writer, message):
        writer.write(encode_frame(message))
        self.counters.frames_out += 1
        await writer.drain()

    async def _serve_frames(self, reader, writer, data):
        decoder = FrameDecoder(self.max_frame_bytes)
        while True:
            try:
                messages = decoder.feed(data)
            except ProtocolError as exc:
                self.counters.protocol_errors += 1
                await self._send_frame(writer,
                                       error_response(None, exc))
                return
            for message in messages:
                self.counters.frames_in += 1
                if not await self._dispatch_frame(message, writer):
                    return
            try:
                data = await asyncio.wait_for(
                    reader.read(65536), self.idle_timeout_s)
            except asyncio.TimeoutError:
                self.counters.idle_timeouts += 1
                return
            except ConnectionError:
                return
            if not data:
                return

    async def _dispatch_frame(self, message, writer) -> bool:
        """Handle one framed request; False closes the connection."""
        if not isinstance(message, dict):
            self.counters.protocol_errors += 1
            await self._send_frame(writer, error_response(
                None, ProtocolError("request",
                                    "message must be an object")))
            return False
        request_id = message.get("id")
        method = message.get("method")
        params = message.get("params") or {}
        try:
            if method == "ping":
                await self._send_frame(writer, response(request_id, {
                    "pong": True, "version": PROTOCOL_VERSION,
                    "draining": self._draining,
                }))
            elif method == "submit":
                await self._frame_submit(request_id, params, writer)
            elif method == "status":
                record = self._lookup(
                    params.get("key"),
                    include_result=params.get("result", True))
                await self._send_frame(writer,
                                       response(request_id, record))
            elif method == "result":
                await self._frame_result(request_id, params, writer)
            elif method == "subscribe":
                await self._stream_frames(request_id,
                                          params.get("key"), writer)
            elif method == "cancel":
                await self._frame_cancel(request_id, params, writer)
            elif method == "stats":
                from repro.analysis import service_stats
                await self._send_frame(writer, response(
                    request_id, service_stats(self.service)))
            else:
                await self._send_frame(writer, error_response(
                    request_id, ProtocolError(
                        "request", f"unknown method {method!r}")))
        except UnknownWorkloadError as exc:
            await self._send_frame(writer, error_response(
                request_id, {"error": "unknown_kind",
                             "message": str(exc)}))
        except (AuthError, AdmissionError, JobTimeout,
                UnknownKeyError, ProtocolError) as exc:
            await self._send_frame(writer,
                                   error_response(request_id, exc))
        except (ValueError, TypeError, KeyError) as exc:
            await self._send_frame(writer, error_response(
                request_id, ProtocolError(
                    "request", f"bad request: {exc}")))
        return True

    async def _frame_submit(self, request_id, params, writer):
        job = params.get("job")
        tenant = self._resolve_tenant(params.get("auth"))
        future = await self._submit(job, params.get("priority", 0),
                                    tenant)
        if params.get("stream"):
            await self._send_frame(writer, response(
                request_id, self._record(future, False)))
            await self._stream_frames(request_id, future.key, writer)
            return
        wait = params.get("wait")
        if wait is not None:
            record = await self._wait_record(
                future, float(wait),
                include_result=params.get("result", True))
        else:
            record = self._record(
                future, params.get("result", True))
        await self._send_frame(writer, response(request_id, record))

    async def _frame_result(self, request_id, params, writer):
        key = params.get("key")
        future = self._find_future(key)
        if future is None:
            record = self._lookup(key, include_result=True)
            await self._send_frame(writer,
                                   response(request_id, record))
            return
        timeout = float(params.get("timeout", 60.0))
        record = await self._wait_record(future, timeout,
                                         include_result=True)
        await self._send_frame(writer, response(request_id, record))

    async def _frame_cancel(self, request_id, params, writer):
        key = params.get("key")
        future = self._find_future(key)
        if future is None:
            raise UnknownKeyError(key)
        cancelled = await self._loop.run_in_executor(
            None, future.cancel)
        await self._send_frame(writer, response(request_id, {
            "key": key, "cancelled": cancelled,
            "status": future.status,
        }))

    async def _stream_frames(self, request_id, key, writer):
        async def send_event(event):
            await self._send_frame(writer,
                                   stream_event(request_id, event))

        async def send_end(record):
            await self._send_frame(writer,
                                   response(request_id, record,
                                            end=True))

        async def send_error(error):
            await self._send_frame(writer,
                                   error_response(request_id, error))

        await self._stream_to(key, send_event, send_end, send_error)

    # -- HTTP adapter -------------------------------------------------

    async def _write_http(self, writer, status, payload):
        body = (canonical_json(payload) + "\n").encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()

    async def _read_http(self, reader, head):
        buffer = bytearray(head)
        while b"\r\n\r\n" not in buffer:
            if len(buffer) > 32768:
                raise HttpError(431, {
                    "error": "oversize",
                    "message": "request head exceeds 32768 bytes"})
            data = await asyncio.wait_for(reader.read(8192),
                                          self.idle_timeout_s)
            if not data:
                raise HttpError(400, {
                    "error": "bad_request",
                    "message": "truncated request head"})
            buffer.extend(data)
        header_block, _, rest = bytes(buffer).partition(b"\r\n\r\n")
        lines = header_block.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HttpError(400, {
                "error": "bad_request",
                "message": f"malformed request line {lines[0]!r}"})
        method, target = parts[0].upper(), parts[1]
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            raise HttpError(400, {
                "error": "bad_request",
                "message": "unparseable Content-Length"}) from None
        if length > self.max_frame_bytes:
            raise HttpError(413, {
                "error": "oversize", "length": length,
                "limit": self.max_frame_bytes,
                "message": "request body exceeds the frame limit"})
        body = bytearray(rest)
        while len(body) < length:
            data = await asyncio.wait_for(reader.read(65536),
                                          self.idle_timeout_s)
            if not data:
                raise HttpError(400, {
                    "error": "bad_request",
                    "message": "truncated request body"})
            body.extend(data)
        return method, target, headers, bytes(body[:length])

    async def _serve_http(self, reader, writer, head):
        self.counters.http_requests += 1
        try:
            method, target, headers, body = await self._read_http(
                reader, head)
        except HttpError as exc:
            await self._write_http(writer, exc.status, exc.payload)
            return
        except asyncio.TimeoutError:
            self.counters.idle_timeouts += 1
            return
        try:
            await self._route_http(method, target, headers, body,
                                   writer)
        except HttpError as exc:
            await self._write_http(writer, exc.status, exc.payload)
        except AuthError as exc:
            await self._write_http(writer, 401, exc.as_json())
        except QuotaError as exc:
            await self._write_http(writer, 429, exc.as_json())
        except AdmissionError as exc:
            await self._write_http(writer, 503, exc.as_json())
        except UnknownWorkloadError as exc:
            await self._write_http(writer, 400, {
                "error": "unknown_kind", "message": str(exc)})
        except UnknownKeyError as exc:
            await self._write_http(writer, 404, exc.as_json())
        except (ValueError, TypeError, KeyError) as exc:
            await self._write_http(writer, 400, {
                "error": "bad_request",
                "message": f"{type(exc).__name__}: {exc}"})

    def _http_token(self, headers):
        token = headers.get("x-repro-token")
        if token:
            return token
        auth = headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip()
        return None

    async def _route_http(self, method, target, headers, body,
                          writer):
        path, _, query = target.partition("?")
        params = dict(urllib.parse.parse_qsl(query))
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, {"error": "method_not_allowed",
                                      "method": method})
            await self._write_http(writer, 200, {
                "ok": True, "version": PROTOCOL_VERSION,
                "draining": self._draining,
                "queue_depth": self.service.queue_depth(),
            })
            return
        if path == "/stats":
            if method != "GET":
                raise HttpError(405, {"error": "method_not_allowed",
                                      "method": method})
            from repro.analysis import service_stats
            await self._write_http(writer, 200,
                                   service_stats(self.service))
            return
        if path == "/jobs":
            if method != "POST":
                raise HttpError(405, {"error": "method_not_allowed",
                                      "method": method})
            await self._http_submit(params, headers, body, writer)
            return
        if path.startswith("/jobs/"):
            if method != "GET":
                raise HttpError(405, {"error": "method_not_allowed",
                                      "method": method})
            rest = path[len("/jobs/"):]
            if rest.endswith("/stream"):
                key = rest[:-len("/stream")]
                await self._http_stream(key, writer)
                return
            record = self._lookup(
                rest, include_result=params.get("result") != "0")
            await self._write_http(writer, 200, record)
            return
        raise HttpError(404, {"error": "not_found", "path": path})

    async def _http_submit(self, params, headers, body, writer):
        try:
            document = json.loads(body or b"{}")
        except ValueError as exc:
            raise HttpError(400, {
                "error": "bad_request",
                "message": f"body is not JSON: {exc}"}) from None
        if not isinstance(document, dict):
            raise HttpError(400, {"error": "bad_request",
                                  "message": "body must be an object"})
        tenant = self._resolve_tenant(self._http_token(headers))
        wait = float(params["wait"]) if "wait" in params else None
        if "jobs" in document:
            jobs = document["jobs"]
            batch = True
        else:
            jobs = [document.get("job", document)]
            batch = False
        default_priority = document.get("priority", 0)
        records = []
        deadline = (time.monotonic() + wait
                    if wait is not None else None)
        for entry in jobs:
            try:
                future = await self._submit(
                    entry, entry.get("priority", default_priority)
                    if isinstance(entry, dict) else default_priority,
                    tenant)
            except (AdmissionError, UnknownWorkloadError,
                    ProtocolError) as exc:
                if not batch:
                    raise
                if isinstance(exc, UnknownWorkloadError):
                    error = {"error": "unknown_kind",
                             "message": str(exc)}
                else:
                    error = exc.as_json()
                records.append({"status": "rejected",
                                "error": error})
                continue
            if deadline is not None:
                remaining = max(0.001, deadline - time.monotonic())
                records.append(await self._wait_record(
                    future, remaining, include_result=True))
            else:
                records.append(self._record(future, False))
        payload = {"jobs": records} if batch else records[0]
        await self._write_http(writer, 200, payload)

    async def _http_stream(self, key, writer):
        if not self._known_key(key):
            raise UnknownKeyError(key)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode())
        await writer.drain()

        async def chunk(payload):
            data = (canonical_json(payload) + "\n").encode()
            writer.write(f"{len(data):x}\r\n".encode() + data
                         + b"\r\n")
            await writer.drain()

        async def send_event(event):
            await chunk({"event": event})

        async def send_end(record):
            await chunk({"end": True, "result": record})
            writer.write(b"0\r\n\r\n")
            await writer.drain()

        async def send_error(error):
            from repro.service.net.protocol import error_payload
            await chunk({"error": error_payload(error)})
            writer.write(b"0\r\n\r\n")
            await writer.drain()

        await self._stream_to(key, send_event, send_end, send_error)

    # -- shared serving core ------------------------------------------

    def _resolve_tenant(self, token):
        """Auth token → tenant.  With a token table, unknown or
        missing tokens are rejected; without one, the token itself is
        the tenant id (``None`` stays anonymous unless
        ``require_auth``)."""
        if token is not None and not isinstance(token, str):
            raise ProtocolError("request", "auth token must be a "
                                "string")
        if self.auth_tokens is not None:
            if token is None:
                if self.require_auth:
                    self.counters.rejected_auth += 1
                    raise AuthError("missing auth token")
                return None
            tenant = self.auth_tokens.get(token)
            if tenant is None:
                self.counters.rejected_auth += 1
                raise AuthError("unknown auth token")
            return tenant
        if token is None and self.require_auth:
            self.counters.rejected_auth += 1
            raise AuthError("missing auth token")
        return token

    def _job_from_document(self, document) -> JobSpec:
        if not isinstance(document, dict) or "kind" not in document:
            raise ProtocolError(
                "request", "a job document needs at least a 'kind'")
        return JobSpec(
            kind=document["kind"], spec=document.get("spec"),
            tier=document.get("tier"),
            config=document.get("config"),
            seed=document.get("seed"), opt=document.get("opt"),
        )

    def _remember(self, future):
        self._futures[future.key] = future
        self._futures.move_to_end(future.key)
        while len(self._futures) > self.max_futures:
            self._futures.popitem(last=False)

    def _submit_sync(self, document, priority, tenant):
        job = self._job_from_document(document)
        future = self.service.submit(job, priority=int(priority or 0),
                                     tenant=tenant)
        self._remember(future)
        self.counters.submits += 1
        if not future.done():
            self._wake_drain()
        return future

    async def _submit(self, document, priority, tenant):
        # The submit path can fsync the journal — keep it off the
        # event loop.
        return await self._loop.run_in_executor(
            None, self._submit_sync, document, priority, tenant)

    def _record(self, future, include_result) -> dict:
        record = future.as_json()
        if include_result and future.status in ("done", "cached"):
            record["result"] = future.value
        return record

    async def _wait_record(self, future, timeout, include_result):
        def wait():
            try:
                future.result(timeout=max(0.0, timeout))
            except (JobTimeout, JobError):
                pass  # the record carries the status either way
            return self._record(future, include_result)
        return await self._loop.run_in_executor(None, wait)

    def _find_future(self, key):
        future = self._futures.get(key)
        if future is not None:
            return future
        return self.service._inflight.get(key)

    def _known_key(self, key) -> bool:
        if not isinstance(key, str) or not key:
            return False
        if self._find_future(key) is not None:
            return True
        if self.bus.last_event(key) is not None:
            return True
        return (self.service.cache is not None
                and self.service.cache.get(key) is not None)

    def _lookup(self, key, include_result=True) -> dict:
        if not isinstance(key, str) or not key:
            raise UnknownKeyError(key)
        future = self._find_future(key)
        if future is not None:
            return self._record(future, include_result)
        if self.service.cache is not None:
            value = self.service.cache.get(key)
            if value is not None:
                record = {"key": key, "status": "cached",
                          "digest": payload_digest(value)}
                if include_result:
                    record["result"] = value
                return record
        raise UnknownKeyError(key)

    def _synthesize_terminal(self, key):
        """A terminal event for a job that finished before anyone
        could observe it live (pre-restart completions served from
        cache, or futures that resolved before the bus existed)."""
        future = self._futures.get(key)
        if future is not None and future.done():
            op = _TERMINAL_OPS.get(future.status, "CANCEL")
            event = {"op": op, "state": EVENT_STATES[op],
                     "key": key, "kind": future.job.kind,
                     "priority": future.priority,
                     "tenant": future.tenant}
            digest = future.digest()
            if digest is not None:
                event["digest"] = digest
            if future.error is not None:
                event["error"] = str(future.error)
            return event
        if self.service.cache is not None:
            value = self.service.cache.get(key)
            if value is not None:
                return {"op": "CACHED", "state": "DONE", "key": key,
                        "digest": payload_digest(value)}
        return None

    def _terminal_record(self, key, event) -> dict:
        future = self._futures.get(key)
        if future is not None and future.done():
            return self._record(future, include_result=True)
        record = {"key": key, "status": "cached",
                  "digest": event.get("digest")}
        if self.service.cache is not None:
            value = self.service.cache.get(key)
            if value is not None:
                record["result"] = value
        return record

    async def _stream_to(self, key, send_event, send_end,
                         send_error):
        """The streaming core: bus events for ``key`` until terminal,
        then the completion record with its result payload."""
        if not self._known_key(key):
            await send_error(UnknownKeyError(key))
            return
        queue = asyncio.Queue(maxsize=self.stream_queue)

        def offer(event):
            try:
                queue.put_nowait(event)
            except asyncio.QueueFull:
                # A subscriber that cannot keep up does not get an
                # unbounded buffer: reset to one overflow marker and
                # let the consumer shut the stream down.
                while True:
                    try:
                        queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                queue.put_nowait({"op": "__overflow__"})

        loop = self._loop

        def callback(event):
            loop.call_soon_threadsafe(offer, event)

        subscription = self.bus.subscribe(callback, key=key)
        self.counters.streaming_subscribers += 1
        try:
            if self.bus.last_event(key) is None:
                terminal = self._synthesize_terminal(key)
                if terminal is not None:
                    offer(terminal)
            if self.service.queue_depth():
                self._wake_drain()
            while True:
                try:
                    event = await asyncio.wait_for(
                        queue.get(), self.stream_timeout_s)
                except asyncio.TimeoutError:
                    await send_error(JobTimeout(
                        key, self.stream_timeout_s, "streaming"))
                    return
                if event.get("op") == "__overflow__":
                    self.counters.shed += 1
                    await send_error({
                        "error": "slow_consumer", "key": key,
                        "message": "subscriber queue overflowed"})
                    return
                self.counters.stream_events += 1
                await send_event(event)
                if is_terminal(event):
                    await send_end(self._terminal_record(key, event))
                    return
        finally:
            subscription.close()
            self.counters.streaming_subscribers -= 1


class ServerThread:
    """A :class:`ServiceServer` on its own event-loop thread.

    The synchronous harnesses — tests, benches, the chaos fuzzer —
    need a live server next to blocking client code.  ``start()``
    returns once the listeners are bound; ``stop()`` runs the graceful
    shutdown and joins the thread.  Usable as a context manager.
    """

    def __init__(self, service, **kwargs):
        self.service = service
        self._kwargs = kwargs
        self.server = None
        self._thread = None
        self._loop = None
        self._stop_event = None
        self._started = threading.Event()
        self._error = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        daemon=True,
                                        name="repro-net-server")
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server thread failed to start")
        if self._error is not None:
            raise self._error
        return self

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        try:
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            self.server = ServiceServer(self.service, **self._kwargs)
            await self.server.start()
        except Exception as exc:
            self._error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop_event.wait()
        await self.server.shutdown()

    def stop(self, timeout=30.0):
        if (self._loop is not None and self._loop.is_running()
                and self._stop_event is not None):
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()
        return False


async def _serve_until_signal(service, **kwargs):
    import signal

    server = ServiceServer(service, **kwargs)
    await server.start()
    for address in server.addresses():
        print(f"serving on {address}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass
    await stop.wait()
    print("draining...", flush=True)
    await server.shutdown()
    print("drained; bye", flush=True)


def run_server(service, **kwargs):
    """Serve until SIGTERM/SIGINT, then drain gracefully (the CLI
    ``serve`` entry point)."""
    asyncio.run(_serve_until_signal(service, **kwargs))
