"""The job scheduler: priority queue, coalescing, admission, futures,
durability.

The machine-room model: many clients submit jobs against one
simulator backend.  The scheduler's contract —

* **Priority queue, FIFO tie-break.**  Lower ``priority`` runs
  earlier; equal priorities run in submission order (a monotonic
  sequence number breaks ties, so the heap is deterministic).
* **In-flight dedup.**  Submitting a job whose key is already queued
  returns the *same* :class:`JobFuture`; the simulation runs once and
  every submitter observes the one result.  The coalescing counter is
  the proof the acceptance test asserts on.
* **Admission control.**  The queue is depth-bounded; a submit beyond
  the bound fails with a structured :class:`AdmissionError` — unless
  graceful degradation (``shed_on_full=True``) finds a queued job
  from a lower-precedence tenant to shed first.
* **Per-tenant quotas.**  A :class:`~repro.service.tenants.TenantTable`
  meters every tenant and token-buckets admission; over-quota submits
  fail with a structured :class:`QuotaError`.  The tenant id never
  joins the job key, so identical work from different tenants still
  coalesces.
* **Durability.**  With ``journal_dir=`` set, every transition is
  written ahead to a :class:`~repro.service.journal.JobJournal`.  A
  restarted service replays the log: unfinished jobs re-enter the
  queue in original (priority, seq) order (exposed as
  ``service.recovered``), completed jobs are served from the result
  cache, and a completed job whose cache entry was lost is re-enqueued
  so it is still delivered.  Drains are chunked when journaled so a
  ``kill -9`` mid-drain loses at most the chunk in flight.
* **Bounded retry.**  A pool worker that dies mid-job is retried up
  to ``max_retries`` times with exponential backoff (the ARQ
  discipline from ``repro.runtime.transport``); only then does the
  future fail.  Deterministic runner exceptions fail immediately.
* **Cancellation.**  A queued future can be cancelled; the heap entry
  is lazily skipped at drain time.  Replayed (recovered) futures
  cancel the same way.
* **Crash isolation.**  Execution goes through
  :func:`repro.parallel.run_cells`; a worker that dies mid-job fails
  *that job's* future with a structured error — the service, the
  queue, and the other jobs in the batch are unaffected.

Results flow through the :class:`~repro.service.cache.ResultCache`
when one is attached: submits are answered from cache without
queueing, and completed simulations are stored for the next client.

The service is synchronous-by-default (``drain`` runs the queue on
the caller's thread, fanning out over the fork pool when
``pool_jobs > 1``) and thread-safe: concurrent submitters coalesce
under the service lock, execution happens *outside* it (so waiters
can time out), and ``JobFuture.result()`` from any thread drains or
waits as appropriate — ``result(timeout=…)`` raises a structured
:class:`JobTimeout` instead of blocking forever.
"""

import heapq
import threading
import time

from repro.parallel import CellResult, resolve_jobs, run_cells
from repro.service.cache import ResultCache
from repro.service.jobkey import JobSpec, job_key, payload_digest
from repro.service.journal import JobJournal
from repro.service.tenants import TenantTable
from repro.service.workloads import execute_job

#: Terminal future states.
_DONE_STATES = ("done", "cached", "failed", "cancelled", "rejected",
                "shed")

#: Lifecycle-event ops (one per journal record type, plus CACHED for
#: cache-hit answers, which are terminal but never journaled) and the
#: client-facing state each one announces.
EVENT_STATES = {
    "SUBMIT": "QUEUED",
    "START": "RUNNING",
    "DONE": "DONE",
    "FAIL": "FAILED",
    "CANCEL": "CANCELLED",
    "CACHED": "DONE",
}


class AdmissionError(RuntimeError):
    """Structured rejection: the queue is at its depth bound."""

    def __init__(self, key, queue_depth, limit):
        super().__init__(
            f"queue full: {queue_depth} pending >= limit {limit} "
            f"(job {key[:12]}…)"
        )
        self.key = key
        self.queue_depth = queue_depth
        self.limit = limit

    def as_json(self) -> dict:
        return {
            "error": "admission",
            "key": self.key,
            "queue_depth": self.queue_depth,
            "limit": self.limit,
        }


class QuotaError(AdmissionError):
    """Structured rejection: the submitting tenant is over quota."""

    def __init__(self, key, tenant, tokens):
        RuntimeError.__init__(
            self,
            f"tenant {tenant!r} over quota "
            f"({tokens:.2f} tokens; job {key[:12]}…)"
        )
        self.key = key
        self.tenant = tenant
        self.tokens = tokens

    def as_json(self) -> dict:
        return {
            "error": "quota",
            "key": self.key,
            "tenant": (str(self.tenant)
                       if self.tenant is not None else None),
            "tokens": self.tokens,
        }


class JobError(RuntimeError):
    """Raised by :meth:`JobFuture.result` when the job failed."""


class JobTimeout(JobError):
    """Raised by :meth:`JobFuture.result` when ``timeout=`` elapses
    before the job reaches a terminal state.  The job itself is
    unaffected — it stays queued/running and a later ``result()``
    can still deliver it."""

    def __init__(self, key, timeout_s, status):
        super().__init__(
            f"job {key[:12]}… not done after {timeout_s}s "
            f"(status {status!r})"
        )
        self.key = key
        self.timeout_s = timeout_s
        self.status = status

    def as_json(self) -> dict:
        return {
            "error": "timeout",
            "key": self.key,
            "timeout_s": self.timeout_s,
            "status": self.status,
        }


class JobFuture:
    """Handle on one submitted job (shared by coalesced submitters)."""

    def __init__(self, service, job: JobSpec, key: str, priority: int,
                 status: str, tenant=None):
        self._service = service
        self.job = job
        self.key = key
        self.priority = priority
        self.status = status
        self.tenant = tenant
        self.value = None
        self.error = None
        #: How many submissions this future absorbed (1 = no dedup).
        self.submits = 1
        #: Seconds spent queued (submit → drain start) and running
        #: (the pool's per-cell wall clock); cache hits keep both 0.
        self.queued_s = 0.0
        self.run_s = 0.0
        self._submitted = time.perf_counter()
        self._seq_hint = 0   # submission sequence (shed tie-break)

    def done(self) -> bool:
        return self.status in _DONE_STATES

    def cancel(self) -> bool:
        """Cancel if still queued.  Cancelling a coalesced future
        cancels the job for every submitter that shares it."""
        return self._service._cancel(self)

    def result(self, wait=True, timeout=None):
        """The job's result payload.

        ``wait=True`` drains the service queue if the job is still
        pending; ``wait=False`` raises ``JobError`` when not done yet
        (poll with :meth:`done`).  ``timeout=`` (seconds) bounds the
        wait: the drain runs on a background thread and a job that
        has not reached a terminal state by the deadline raises a
        structured :class:`JobTimeout` — never blocks forever.
        Failed, cancelled, shed, and rejected jobs raise ``JobError``
        with the structured reason.
        """
        if not self.done():
            if not wait:
                raise JobError(f"job {self.key[:12]}… not done "
                               f"(status {self.status!r})")
            if timeout is None:
                self._service.drain()
            else:
                self._service._wait_for(self, timeout)
        if self.status in ("done", "cached"):
            return self.value
        raise JobError(
            f"job {self.key[:12]}… {self.status}: {self.error}"
        )

    def digest(self):
        """SHA-256 of the result payload (None until done)."""
        if self.status not in ("done", "cached"):
            return None
        return payload_digest(self.value)

    def as_json(self) -> dict:
        record = {
            "kind": self.job.kind,
            "key": self.key,
            "status": self.status,
            "priority": self.priority,
            "submits": self.submits,
            "digest": self.digest(),
            "queued_s": self.queued_s,
            "run_s": self.run_s,
        }
        if self.tenant is not None:
            record["tenant"] = self.tenant
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self):
        return (f"<JobFuture {self.job.kind} {self.key[:12]}… "
                f"{self.status}>")


class SimulationService:
    """Simulation-as-a-service over the simulator's kernel tiers."""

    def __init__(self, cache=None, use_cache=True, max_pending=1024,
                 pool_jobs=None, journal_dir=None, journal=None,
                 journal_fsync=True, journal_compact_bytes=None,
                 tenants=None, shed_on_full=False, max_retries=2,
                 retry_backoff_s=0.05):
        #: ``cache=None`` with ``use_cache=True`` builds the default
        #: store; pass ``use_cache=False`` for a pure scheduler.
        self.cache = (cache or ResultCache()) if use_cache else None
        self.max_pending = int(max_pending)
        #: Worker count handed to the fork pool on each drain
        #: (``None`` = the ``REPRO_SWEEP_JOBS`` default, i.e. inline).
        self.pool_jobs = pool_jobs
        self.tenants = tenants if tenants is not None else TenantTable()
        self.shed_on_full = bool(shed_on_full)
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff_s = float(retry_backoff_s)
        self._lock = threading.RLock()
        self._resolved = threading.Condition(self._lock)
        self._drain_lock = threading.Lock()
        self._drain_thread = None
        self._heap = []          # (priority, seq, future)
        self._seq = 0
        self._inflight = {}      # key -> queued/running future
        self.last_sweep = None   # SweepResult of the latest drain
        # Counters (rolled up by repro.analysis.service_stats).
        self.submissions = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.executed = 0
        self.failed = 0
        self.cancelled = 0
        self.rejected = 0
        self.quota_rejected = 0
        self.shed = 0
        self.worker_retries = 0
        self.retried_ok = 0
        self.queue_depth_hwm = 0
        self.queued_s = []       # per executed job, submit → drain
        self.run_s = []          # per executed job, pool cell wall
        # Lifecycle listeners (the net layer's event bus registers
        # here); a listener that raises is counted, never fatal.
        self._listeners = []
        self.listener_errors = 0
        #: Network front-end counters; a running
        #: :class:`repro.service.net.server.ServiceServer` attaches
        #: its counter block here so ``stats()`` (and the
        #: ``service_stats`` rollup) can surface the wire-level story.
        self.net = None
        # Durability: the write-ahead journal and its replay.
        self.journal = None
        self.journal_replay = None
        #: Futures re-enqueued from the journal on construction.
        self.recovered = []
        if journal is not None or journal_dir is not None:
            self.journal = journal or JobJournal(journal_dir,
                                                 fsync=journal_fsync)
            self.journal_compact_bytes = (
                int(journal_compact_bytes)
                if journal_compact_bytes is not None
                else 4 * self.journal.segment_bytes
            )
            self._replay_journal()
        else:
            self.journal_compact_bytes = None

    # -- lifecycle events ---------------------------------------------

    def add_status_listener(self, fn):
        """Register ``fn(event)`` for every job lifecycle transition.

        Events are structured dicts — one per journal record type
        (``SUBMIT``/``START``/``DONE``/``FAIL``/``CANCEL``) plus
        ``CACHED`` for submissions answered from the result cache —
        carrying ``op``, the client-facing ``state``
        (QUEUED/RUNNING/DONE/FAILED/CANCELLED), ``key``, ``kind``,
        ``priority``, ``tenant``, and op-specific fields (``digest``,
        ``error``, ``reason``).  Delivery is exactly-once per
        transition: every emission sits on a status change that the
        scheduler guards under its lock, so a coalesced duplicate
        submit or a retried worker never re-fires an event.

        Listeners run on the emitting thread (submitters, the drain
        thread) and may hold the service lock — they must enqueue and
        return, never block or call back into the service.  A raising
        listener is counted in ``listener_errors`` and skipped, not
        propagated.
        """
        self._listeners.append(fn)
        return fn

    def remove_status_listener(self, fn):
        try:
            self._listeners.remove(fn)
        except ValueError:
            pass

    def _emit(self, op, future, **fields):
        if not self._listeners:
            return
        event = {
            "op": op,
            "state": EVENT_STATES[op],
            "key": future.key,
            "kind": future.job.kind,
            "priority": future.priority,
            "tenant": future.tenant,
        }
        event.update(fields)
        for fn in list(self._listeners):
            try:
                fn(event)
            except Exception:
                self.listener_errors += 1

    # -- durability ---------------------------------------------------

    def _replay_journal(self):
        """Rebuild the queue from the write-ahead log.

        Unfinished jobs re-enter the heap with their original
        (priority, seq) so drain order is what it would have been;
        completed jobs whose cache entry is gone are re-enqueued too
        (counted ``done_cache_missing``) so every journaled job is
        still delivered after a restart.
        """
        replay = self.journal.replay()
        stats = dict(replay.stats)
        stats["recovered_pending"] = 0
        stats["done_in_cache"] = 0
        stats["done_cache_missing"] = 0
        entries = list(replay.pending())
        for key, entry in replay.entries.items():
            if entry["status"] != "done":
                continue
            if (self.cache is not None
                    and self.cache.get(key) is not None):
                stats["done_in_cache"] += 1
            elif entry["job"] is not None:
                stats["done_cache_missing"] += 1
                entries.append(entry)
        entries.sort(key=lambda e: (e["priority"], e["seq"]))
        with self._lock:
            self._seq = max(self._seq, replay.max_seq)
            for entry in entries:
                payload = entry["job"]
                job = JobSpec(
                    kind=payload["kind"], spec=payload.get("spec"),
                    tier=payload.get("tier"),
                    config=payload.get("config"),
                    seed=payload.get("seed"), opt=payload.get("opt"),
                    tenant=entry.get("tenant"),
                )
                key = job_key(job)
                if key in self._inflight:
                    continue
                future = JobFuture(self, job, key, entry["priority"],
                                   "queued", tenant=entry.get("tenant"))
                future._seq_hint = entry["seq"]
                heapq.heappush(self._heap,
                               (entry["priority"], entry["seq"], future))
                self._inflight[key] = future
                self.recovered.append(future)
                stats["recovered_pending"] += 1
            self.queue_depth_hwm = max(self.queue_depth_hwm,
                                       len(self._inflight))
        self.journal_replay = stats

    def _journal_submit(self, future: JobFuture, seq: int):
        if self.journal is None:
            return
        self.journal.append(
            "SUBMIT", key=future.key, job=future.job.payload(),
            priority=future.priority, seq=seq, tenant=future.tenant,
        )

    def compact_journal(self):
        """Rewrite the journal down to the still-live jobs."""
        if self.journal is None:
            return
        with self._lock:
            live = [entry for entry in self._heap
                    if entry[2].status == "queued"]
            live.sort(key=lambda e: (e[0], e[1]))
            records = [
                {"key": future.key, "job": future.job.payload(),
                 "priority": priority, "seq": seq,
                 "tenant": future.tenant}
                for priority, seq, future in live
            ]
            self.journal.compact(records)

    def _maybe_compact(self):
        if (self.journal is not None
                and self.journal_compact_bytes is not None
                and self.journal.size_bytes()
                > self.journal_compact_bytes):
            self.compact_journal()

    # -- submission ---------------------------------------------------

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._inflight)

    def _shed_victim(self, tenant):
        """The queued future graceful degradation would shed to admit
        a submission from ``tenant`` — the lowest-precedence tenant's
        least-urgent, most-recent job — or ``None`` when every queued
        job outranks the newcomer."""
        queued = [(self.tenants.precedence(f.tenant), -f.priority, f)
                  for f in self._inflight.values()
                  if f.status == "queued"]
        if not queued:
            return None
        precedence, neg_priority, victim = min(
            queued, key=lambda item: (item[0], item[1],
                                      -item[2]._seq_hint))
        if precedence >= self.tenants.precedence(tenant):
            return None
        return victim

    def _shed(self, victim: JobFuture, tenant):
        victim.status = "shed"
        victim.error = (f"shed under queue pressure by tenant "
                        f"{tenant!r}")
        self._inflight.pop(victim.key, None)
        self.shed += 1
        self.tenants.note(victim.tenant, "shed")
        if self.journal is not None:
            self.journal.append("CANCEL", key=victim.key,
                                reason="shed")
        self._emit("CANCEL", victim, reason="shed")
        self._resolved.notify_all()

    def submit(self, job: JobSpec, priority: int = 0,
               tenant=None) -> JobFuture:
        """Queue one job; returns its (possibly shared) future.

        ``tenant`` (or ``job.tenant``) names the submitting tenant for
        quota and metering; it never affects the job key.  Resolution
        order: coalesce onto an in-flight duplicate, then answer from
        cache, then token-bucket the tenant (:class:`QuotaError`),
        then admit into the queue — shedding a lower-precedence
        tenant's queued job when ``shed_on_full`` is set, raising
        :class:`AdmissionError` at the depth bound otherwise.
        """
        job = job.resolved()
        if tenant is None:
            tenant = job.tenant
        key = job_key(job)
        with self._lock:
            self.submissions += 1
            self.tenants.note(tenant, "submitted")
            existing = self._inflight.get(key)
            if existing is not None:
                existing.submits += 1
                self.coalesced += 1
                self.tenants.note(tenant, "coalesced")
                return existing
            if self.cache is not None:
                value = self.cache.get(key)
                if value is not None:
                    self.cache_hits += 1
                    self.tenants.note(tenant, "cache_hits")
                    future = JobFuture(self, job, key, priority,
                                       "cached", tenant=tenant)
                    future.value = value
                    self._emit("CACHED", future,
                               digest=payload_digest(value))
                    return future
            if not self.tenants.admit(tenant):
                self.quota_rejected += 1
                self.tenants.note(tenant, "quota_rejected")
                raise QuotaError(
                    key, tenant, self.tenants.remaining_tokens(tenant)
                )
            if len(self._inflight) >= self.max_pending:
                victim = (self._shed_victim(tenant)
                          if self.shed_on_full else None)
                if victim is None:
                    self.rejected += 1
                    self.tenants.note(tenant, "rejected")
                    raise AdmissionError(key, len(self._inflight),
                                         self.max_pending)
                self._shed(victim, tenant)
            future = JobFuture(self, job, key, priority, "queued",
                               tenant=tenant)
            self._seq += 1
            future._seq_hint = self._seq
            self.tenants.note(tenant, "admitted")
            heapq.heappush(self._heap, (priority, self._seq, future))
            self._inflight[key] = future
            self.queue_depth_hwm = max(self.queue_depth_hwm,
                                       len(self._inflight))
            self._journal_submit(future, self._seq)
            self._emit("SUBMIT", future, seq=self._seq)
            return future

    def submit_batch(self, jobs) -> list:
        """Submit many ``(job, priority)`` pairs (or bare JobSpecs).

        Admission and quota failures become futures in the
        ``rejected`` state rather than raising, so one oversized batch
        still yields a per-job status report.
        """
        futures = []
        for entry in jobs:
            job, priority = (
                entry if isinstance(entry, tuple) else (entry, 0)
            )
            try:
                futures.append(self.submit(job, priority))
            except AdmissionError as exc:  # QuotaError included
                future = JobFuture(self, job.resolved(), exc.key,
                                   priority, "rejected",
                                   tenant=job.tenant)
                future.error = str(exc)
                futures.append(future)
        return futures

    def _cancel(self, future: JobFuture) -> bool:
        with self._lock:
            if future.status != "queued":
                return False
            future.status = "cancelled"
            future.error = "cancelled before execution"
            self._inflight.pop(future.key, None)
            self.cancelled += 1
            if self.journal is not None:
                self.journal.append("CANCEL", key=future.key,
                                    reason="cancelled")
            self._emit("CANCEL", future, reason="cancelled")
            self._resolved.notify_all()
            return True

    # -- execution ----------------------------------------------------

    def _pop_batch(self) -> list:
        """Pop every runnable future (cancelled entries skipped)."""
        batch = []
        while self._heap:
            _prio, _seq, future = heapq.heappop(self._heap)
            if future.status != "queued":
                continue  # lazily-deleted (cancelled / shed)
            future.status = "running"
            batch.append(future)
        if batch:
            start = time.perf_counter()
            for future in batch:
                future.queued_s = start - future._submitted
        return batch

    def _run_chunk(self, chunk, pool_jobs):
        """Execute one chunk through the fork pool and resolve it.

        Crashed workers (hard process deaths) are retried up to
        ``max_retries`` times with exponential backoff before their
        futures fail; deterministic runner exceptions fail
        immediately.  DONE/FAIL records are journaled with one fsync
        per chunk, *after* successful payloads enter the cache — so a
        journaled DONE always has a servable cache entry behind it
        (modulo later eviction).
        """
        payloads = [future.job.payload() for future in chunk]
        if self.journal is not None:
            # Advisory, flush-only: a lost START replays as
            # "submitted" — same re-enqueue — so it is not worth an
            # fsync of its own; the chunk's DONE/FAIL batch is synced.
            self.journal.append_many(
                [{"op": "START", "key": f.key} for f in chunk],
                sync=False,
            )
        for future in chunk:
            self._emit("START", future)
        # Pool mode (>1 worker) always forks, even for a single-cell
        # chunk — crash isolation is a property of the pool, not of
        # the chunk size, and the retry path depends on a dead worker
        # reporting as a crashed cell rather than taking us down.
        isolate = resolve_jobs(pool_jobs) > 1
        sweep = run_cells(execute_job, payloads, jobs=pool_jobs,
                          isolate=isolate)
        for attempt in range(1, self.max_retries + 1):
            crashed = [i for i, cell in enumerate(sweep.results)
                       if not cell.ok and cell.crashed]
            if not crashed:
                break
            self.worker_retries += len(crashed)
            time.sleep(self.retry_backoff_s * (1 << (attempt - 1)))
            retry = run_cells(execute_job,
                              [payloads[i] for i in crashed],
                              jobs=pool_jobs, isolate=True)
            for original, cell in zip(crashed, retry.results):
                if cell.ok:
                    self.retried_ok += 1
                sweep.results[original] = CellResult(
                    original, cell.ok, cell.value, cell.error,
                    cell.wall_s, cell.worker, crashed=cell.crashed,
                )
        self.last_sweep = sweep
        with self._lock:
            records = []
            for future, cell in zip(chunk, sweep.results):
                future.run_s = cell.wall_s
                self.queued_s.append(future.queued_s)
                self.run_s.append(cell.wall_s)
                if cell.ok:
                    if self.cache is not None:
                        self.cache.put(future.key, cell.value,
                                       job=future.job.payload())
                    future.value = cell.value
                    future.status = "done"
                    self.executed += 1
                    self.tenants.note(future.tenant, "executed")
                    records.append({
                        "op": "DONE", "key": future.key,
                        "digest": payload_digest(cell.value),
                    })
                else:
                    future.error = cell.error
                    future.status = "failed"
                    self.failed += 1
                    self.tenants.note(future.tenant, "failed")
                    records.append({"op": "FAIL", "key": future.key,
                                    "error": cell.error})
                self._inflight.pop(future.key, None)
            if self.journal is not None:
                self.journal.append_many(records)
            # Events fire after the journal batch is durable (the
            # same write-ahead discipline a subscriber observes).
            for future in chunk:
                if future.status == "done":
                    self._emit("DONE", future,
                               digest=payload_digest(future.value))
                else:
                    self._emit("FAIL", future, error=future.error)
            self._resolved.notify_all()

    def drain(self, pool_jobs=None) -> list:
        """Run every queued job; returns the executed futures.

        The batch executes through the fork pool in strict
        (priority, submission) order; cancelled entries are skipped.
        Successful payloads are stored in the cache before their
        futures resolve.  Execution happens outside the service lock
        (submitters and timed waiters stay live); concurrent ``drain``
        calls serialize on a dedicated drain lock.  With a journal
        attached, the batch is executed in chunks so completions
        become durable incrementally — a process kill mid-drain loses
        at most the chunk in flight.
        """
        jobs = pool_jobs if pool_jobs is not None else self.pool_jobs
        executed = []
        with self._drain_lock:
            while True:
                with self._lock:
                    batch = self._pop_batch()
                if not batch:
                    break
                if self.journal is None:
                    chunk_size = len(batch)
                else:
                    chunk_size = max(1, resolve_jobs(jobs))
                for start in range(0, len(batch), chunk_size):
                    chunk = batch[start:start + chunk_size]
                    self._run_chunk(chunk, jobs)
                    executed.extend(chunk)
            self._maybe_compact()
        return executed

    def _drain_for_waiters(self):
        try:
            self.drain()
        finally:
            with self._resolved:
                self._resolved.notify_all()

    def _ensure_drain_thread(self):
        with self._lock:
            thread = self._drain_thread
            if thread is not None and thread.is_alive():
                return
            thread = threading.Thread(target=self._drain_for_waiters,
                                      daemon=True)
            self._drain_thread = thread
        thread.start()

    def _wait_for(self, future: JobFuture, timeout):
        """Bounded wait for one future; drains on a background thread.

        A pure condition-variable wait: every terminal transition
        (resolve, cancel, shed) notifies ``_resolved``, so the waiter
        sleeps the full remaining window instead of polling — the
        remote serving path parks hundreds of waiters here and a
        0.1 s poll loop per waiter would be a busy-wait in aggregate.
        A 0 (or elapsed) timeout still raises immediately without
        ever entering the wait.

        Raises :class:`JobTimeout` when the deadline passes first; the
        drain keeps running, so the job may still complete later.
        """
        deadline = time.monotonic() + float(timeout)
        self._ensure_drain_thread()
        with self._resolved:
            while not future.done():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise JobTimeout(future.key, timeout,
                                     future.status)
                self._resolved.wait(remaining)

    # -- stats --------------------------------------------------------

    def stats(self) -> dict:
        """Raw service counters (see
        :func:`repro.analysis.service_stats` for the rollup)."""
        with self._lock:
            journal = None
            if self.journal is not None:
                journal = self.journal.stats()
                journal["replay"] = self.journal_replay
            return {
                "submissions": self.submissions,
                "cache_hits": self.cache_hits,
                "coalesced": self.coalesced,
                "executed": self.executed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "quota_rejected": self.quota_rejected,
                "shed": self.shed,
                "worker_retries": self.worker_retries,
                "retried_ok": self.retried_ok,
                "queue_depth": len(self._inflight),
                "queue_depth_hwm": self.queue_depth_hwm,
                "queued_s": list(self.queued_s),
                "run_s": list(self.run_s),
                "cache": (self.cache.stats()
                          if self.cache is not None else None),
                "tenants": self.tenants.stats(),
                "journal": journal,
                "listener_errors": self.listener_errors,
                "net": (self.net.snapshot()
                        if self.net is not None else None),
            }
