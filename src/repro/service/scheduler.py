"""The job scheduler: priority queue, coalescing, admission, futures.

The machine-room model: many clients submit jobs against one
simulator backend.  The scheduler's contract —

* **Priority queue, FIFO tie-break.**  Lower ``priority`` runs
  earlier; equal priorities run in submission order (a monotonic
  sequence number breaks ties, so the heap is deterministic).
* **In-flight dedup.**  Submitting a job whose key is already queued
  returns the *same* :class:`JobFuture`; the simulation runs once and
  every submitter observes the one result.  The coalescing counter is
  the proof the acceptance test asserts on.
* **Admission control.**  The queue is depth-bounded; a submit beyond
  the bound fails with a structured :class:`AdmissionError` (carrying
  key, depth, and limit) instead of growing without bound.
* **Cancellation.**  A queued future can be cancelled; the heap entry
  is lazily skipped at drain time.
* **Crash isolation.**  Execution goes through
  :func:`repro.parallel.run_cells`; a worker that dies mid-job fails
  *that job's* future with a structured error — the service, the
  queue, and the other jobs in the batch are unaffected.

Results flow through the :class:`~repro.service.cache.ResultCache`
when one is attached: submits are answered from cache without
queueing, and completed simulations are stored for the next client.

The service is synchronous-by-default (``drain`` runs the queue on
the caller's thread, fanning out over the fork pool when
``pool_jobs > 1``) and thread-safe: concurrent submitters coalesce
under the service lock, and ``JobFuture.result()`` from any thread
drains or waits as appropriate.
"""

import heapq
import threading
import time

from repro.parallel import run_cells
from repro.service.cache import ResultCache
from repro.service.jobkey import JobSpec, job_key, payload_digest
from repro.service.workloads import execute_job

#: Terminal future states.
_DONE_STATES = ("done", "cached", "failed", "cancelled", "rejected")


class AdmissionError(RuntimeError):
    """Structured rejection: the queue is at its depth bound."""

    def __init__(self, key, queue_depth, limit):
        super().__init__(
            f"queue full: {queue_depth} pending >= limit {limit} "
            f"(job {key[:12]}…)"
        )
        self.key = key
        self.queue_depth = queue_depth
        self.limit = limit

    def as_json(self) -> dict:
        return {
            "error": "admission",
            "key": self.key,
            "queue_depth": self.queue_depth,
            "limit": self.limit,
        }


class JobError(RuntimeError):
    """Raised by :meth:`JobFuture.result` when the job failed."""


class JobFuture:
    """Handle on one submitted job (shared by coalesced submitters)."""

    def __init__(self, service, job: JobSpec, key: str, priority: int,
                 status: str):
        self._service = service
        self.job = job
        self.key = key
        self.priority = priority
        self.status = status
        self.value = None
        self.error = None
        #: How many submissions this future absorbed (1 = no dedup).
        self.submits = 1
        #: Seconds spent queued (submit → drain start) and running
        #: (the pool's per-cell wall clock); cache hits keep both 0.
        self.queued_s = 0.0
        self.run_s = 0.0
        self._submitted = time.perf_counter()

    def done(self) -> bool:
        return self.status in _DONE_STATES

    def cancel(self) -> bool:
        """Cancel if still queued.  Cancelling a coalesced future
        cancels the job for every submitter that shares it."""
        return self._service._cancel(self)

    def result(self, wait=True):
        """The job's result payload.

        ``wait=True`` drains the service queue if the job is still
        pending; ``wait=False`` raises ``JobError`` when not done yet
        (poll with :meth:`done`).  Failed, cancelled, and rejected
        jobs raise ``JobError`` with the structured reason.
        """
        if not self.done():
            if not wait:
                raise JobError(f"job {self.key[:12]}… not done "
                               f"(status {self.status!r})")
            self._service.drain()
        if self.status in ("done", "cached"):
            return self.value
        raise JobError(
            f"job {self.key[:12]}… {self.status}: {self.error}"
        )

    def digest(self):
        """SHA-256 of the result payload (None until done)."""
        if self.status not in ("done", "cached"):
            return None
        return payload_digest(self.value)

    def as_json(self) -> dict:
        record = {
            "kind": self.job.kind,
            "key": self.key,
            "status": self.status,
            "priority": self.priority,
            "submits": self.submits,
            "digest": self.digest(),
            "queued_s": self.queued_s,
            "run_s": self.run_s,
        }
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self):
        return (f"<JobFuture {self.job.kind} {self.key[:12]}… "
                f"{self.status}>")


class SimulationService:
    """Simulation-as-a-service over the simulator's kernel tiers."""

    def __init__(self, cache=None, use_cache=True, max_pending=1024,
                 pool_jobs=None):
        #: ``cache=None`` with ``use_cache=True`` builds the default
        #: store; pass ``use_cache=False`` for a pure scheduler.
        self.cache = (cache or ResultCache()) if use_cache else None
        self.max_pending = int(max_pending)
        #: Worker count handed to the fork pool on each drain
        #: (``None`` = the ``REPRO_SWEEP_JOBS`` default, i.e. inline).
        self.pool_jobs = pool_jobs
        self._lock = threading.RLock()
        self._heap = []          # (priority, seq, future)
        self._seq = 0
        self._inflight = {}      # key -> queued/running future
        self.last_sweep = None   # SweepResult of the latest drain
        # Counters (rolled up by repro.analysis.service_stats).
        self.submissions = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.executed = 0
        self.failed = 0
        self.cancelled = 0
        self.rejected = 0
        self.queue_depth_hwm = 0
        self.queued_s = []       # per executed job, submit → drain
        self.run_s = []          # per executed job, pool cell wall

    # -- submission ---------------------------------------------------

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._inflight)

    def submit(self, job: JobSpec, priority: int = 0) -> JobFuture:
        """Queue one job; returns its (possibly shared) future.

        Resolution order: coalesce onto an in-flight duplicate, then
        answer from cache, then admit into the queue — raising
        :class:`AdmissionError` at the depth bound.
        """
        job = job.resolved()
        key = job_key(job)
        with self._lock:
            self.submissions += 1
            existing = self._inflight.get(key)
            if existing is not None:
                existing.submits += 1
                self.coalesced += 1
                return existing
            if self.cache is not None:
                value = self.cache.get(key)
                if value is not None:
                    self.cache_hits += 1
                    future = JobFuture(self, job, key, priority,
                                       "cached")
                    future.value = value
                    return future
            if len(self._inflight) >= self.max_pending:
                self.rejected += 1
                raise AdmissionError(key, len(self._inflight),
                                     self.max_pending)
            future = JobFuture(self, job, key, priority, "queued")
            self._seq += 1
            heapq.heappush(self._heap, (priority, self._seq, future))
            self._inflight[key] = future
            self.queue_depth_hwm = max(self.queue_depth_hwm,
                                       len(self._inflight))
            return future

    def submit_batch(self, jobs) -> list:
        """Submit many ``(job, priority)`` pairs (or bare JobSpecs).

        Admission failures become futures in the ``rejected`` state
        rather than raising, so one oversized batch still yields a
        per-job status report.
        """
        futures = []
        for entry in jobs:
            job, priority = (
                entry if isinstance(entry, tuple) else (entry, 0)
            )
            try:
                futures.append(self.submit(job, priority))
            except AdmissionError as exc:
                future = JobFuture(self, job.resolved(), exc.key,
                                   priority, "rejected")
                future.error = str(exc)
                futures.append(future)
        return futures

    def _cancel(self, future: JobFuture) -> bool:
        with self._lock:
            if future.status != "queued":
                return False
            future.status = "cancelled"
            future.error = "cancelled before execution"
            self._inflight.pop(future.key, None)
            self.cancelled += 1
            return True

    # -- execution ----------------------------------------------------

    def drain(self, pool_jobs=None) -> list:
        """Run every queued job; returns the executed futures.

        The batch executes through the fork pool in strict
        (priority, submission) order; cancelled entries are skipped.
        Successful payloads are stored in the cache before their
        futures resolve.
        """
        with self._lock:
            batch = []
            while self._heap:
                _prio, _seq, future = heapq.heappop(self._heap)
                if future.status != "queued":
                    continue  # lazily-deleted (cancelled)
                future.status = "running"
                batch.append(future)
            if not batch:
                return []
            start = time.perf_counter()
            for future in batch:
                future.queued_s = start - future._submitted
            sweep = run_cells(
                execute_job,
                [future.job.payload() for future in batch],
                jobs=pool_jobs if pool_jobs is not None
                else self.pool_jobs,
            )
            self.last_sweep = sweep
            for future, cell in zip(batch, sweep.results):
                future.run_s = cell.wall_s
                self.queued_s.append(future.queued_s)
                self.run_s.append(cell.wall_s)
                if cell.ok:
                    if self.cache is not None:
                        self.cache.put(future.key, cell.value,
                                       job=future.job.payload())
                    future.value = cell.value
                    future.status = "done"
                    self.executed += 1
                else:
                    future.error = cell.error
                    future.status = "failed"
                    self.failed += 1
                self._inflight.pop(future.key, None)
            return batch

    # -- stats --------------------------------------------------------

    def stats(self) -> dict:
        """Raw service counters (see
        :func:`repro.analysis.service_stats` for the rollup)."""
        with self._lock:
            return {
                "submissions": self.submissions,
                "cache_hits": self.cache_hits,
                "coalesced": self.coalesced,
                "executed": self.executed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "queue_depth": len(self._inflight),
                "queue_depth_hwm": self.queue_depth_hwm,
                "queued_s": list(self.queued_s),
                "run_s": list(self.run_s),
                "cache": (self.cache.stats()
                          if self.cache is not None else None),
            }
